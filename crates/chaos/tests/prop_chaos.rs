//! Chaos harness properties.
//!
//! 1. A **single-site** chaos scenario must reproduce the same
//!    degradation contract `gtpin faults-matrix` pins for that site:
//!    the trial's oracles (conservation, replay identity, resume
//!    identity, bounded restarts) all hold.
//! 2. Trials are deterministic: the same scenario judged twice
//!    yields the identical summary line and digest.
//! 3. The chaos run's own journal gives kill/resume identity: a run
//!    killed after some scenarios and resumed folds the same final
//!    digest as an uninterrupted run.

use std::path::PathBuf;
use std::sync::Mutex;

use gtpin_chaos::{
    run_chaos, run_trial, ChaosConfig, OracleKind, Scenario, POOL_LOSSY, POOL_RESUME_SAFE,
};
use gtpin_faults::site;
use proptest::prelude::*;

/// The faults registry is process-global; serialize every trial so
/// concurrently running tests cannot see each other's plans.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gtpin-chaos-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A hand-built single-site scenario: resume-safe sites get the
/// strict resume-identity oracle, lossy sites the replay oracle —
/// the same split the faults matrix applies.
fn single_site(site: &'static str, rate: f64, seed: u64) -> Scenario {
    let oracle = if POOL_RESUME_SAFE.contains(&site) {
        OracleKind::ResumeIdentity
    } else {
        OracleKind::ReplayIdentity
    };
    let rate = if site == site::JOURNAL_CRASH {
        rate.min(0.7)
    } else {
        rate
    };
    Scenario {
        seed,
        sites: vec![(site, rate)],
        threads: 1 + (seed as usize % 4),
        kill_point: 1 + (seed as usize % 5),
        oracle,
        explore: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Every registered fault site, armed alone, honors its
    /// faults-matrix contract under the chaos oracles.
    #[test]
    fn single_site_scenarios_reproduce_the_matrix_contract(
        index in 0usize..10,
        rate in prop::sample::select(vec![0.4f64, 1.0]),
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let site = POOL_RESUME_SAFE
            .iter()
            .chain(POOL_LOSSY.iter())
            .copied()
            .nth(index)
            .unwrap();
        let sc = single_site(site, rate, seed);
        let dir = scratch("single");
        let report = run_trial(&sc, 200, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(
            report.passed(),
            "site {site} violated its contract: {:?}",
            report.violations
        );
    }
}

/// Judging the same scenario twice yields identical lines and
/// digests — the property the check.sh pinned-digest gate rests on.
#[test]
fn trials_are_deterministic() {
    let _guard = lock();
    let dir = scratch("det");
    let sc = Scenario::derive(7);
    let first = run_trial(&sc, 200, &dir);
    let second = run_trial(&sc, 200, &dir);
    assert_eq!(first.line, second.line);
    assert_eq!(first.digest, second.digest);
    assert!(first.passed(), "{:?}", first.violations);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chaos run killed mid-way and resumed from its journal skips the
/// completed scenarios and folds the identical final digest.
#[test]
fn chaos_journal_gives_kill_resume_identity() {
    let _guard = lock();
    let journal = scratch("journal");
    let uninterrupted = ChaosConfig {
        seeds: 2,
        seed_base: 0,
        journal_dir: None,
        resume: false,
        max_restarts: 200,
        scratch: scratch("uninterrupted"),
    };
    let baseline = run_chaos(&uninterrupted).expect("uninterrupted run");

    // "Kill" after the first scenario: run only seed 0 with the
    // journal, then resume the full range from the same journal.
    let partial = ChaosConfig {
        seeds: 1,
        journal_dir: Some(journal.clone()),
        scratch: scratch("partial"),
        ..uninterrupted.clone()
    };
    run_chaos(&partial).expect("partial run");
    let resumed_config = ChaosConfig {
        seeds: 2,
        journal_dir: Some(journal.clone()),
        resume: true,
        scratch: scratch("resumed"),
        ..uninterrupted
    };
    let resumed = run_chaos(&resumed_config).expect("resumed run");

    assert_eq!(resumed.replayed, 1, "seed 0 should replay from the journal");
    assert_eq!(
        resumed.digest, baseline.digest,
        "killed+resumed chaos digest diverged from the uninterrupted run"
    );
    assert_eq!(resumed.render(), baseline.render());
    let _ = std::fs::remove_dir_all(&journal);
}
