//! The chaos trial driver: run one scenario end-to-end through the
//! pipeline and judge it against its oracle.
//!
//! A trial is one or two **passes** over the same three stages:
//!
//! 1. **Profile conservation** — profile one app natively under the
//!    fault plan and check the trace-layer conservation identity
//!    (every appended record is stored, dropped, or quarantined; the
//!    executor surfaces violations as `violation.*` accounting keys).
//! 2. **Sweep kill/resume** — only when `journal.crash` is armed:
//!    drive the journaled exploration sweep through its injected
//!    crash/resume loop until it converges, bounded by the restart
//!    budget, and compare the final report to a fault-free baseline.
//! 3. **Serve pipeline** — a fixed request list through one
//!    `SessionEngine`; resume-identity scenarios kill the engine at
//!    the scheduled request (drop it, reinstall the plan to model
//!    process death clearing in-process fault state, resume from the
//!    session journal) and must reproduce the uninterrupted pass's
//!    responses and supervisor trajectory byte-for-byte.
//!
//! Everything folded into the trial digest is a pure function of the
//! scenario, so `gtpin chaos` prints one digest that is identical at
//! any `GTPIN_THREADS` and across a mid-run kill/resume of the chaos
//! run itself.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use gpu_device::GpuConfig;
use gtpin_durable::JournalError;
use gtpin_faults::site;
use gtpin_serve::wire::Request;
use gtpin_serve::{ServeConfig, SessionEngine};
use ocl_runtime::host::HostProgram;
use subset_select::{profile_app, run_sweep, SweepOptions};
use workloads::{all_specs, build_program, Scale};

use crate::scenario::{OracleKind, Scenario};

/// Default restart budget for the sweep crash/resume loop
/// (`GTPIN_CHAOS_MAX_RESTARTS` overrides).
pub const DEFAULT_MAX_RESTARTS: u64 = 200;

/// FNV-1a fold, matching the digest idiom of the CLI drivers.
pub fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The judged result of one scenario trial.
#[derive(Debug, Clone)]
pub struct TrialReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Deterministic digest of the trial (reference pass only — the
    /// checking pass exists to be compared against, not hashed).
    pub digest: u64,
    /// Oracle violations; empty means the scenario passed.
    pub violations: Vec<String>,
    /// Sweep restarts the crash/resume loop consumed.
    pub restarts: u64,
    /// Deterministic one-line summary (scenario + digest + verdict).
    pub line: String,
}

impl TrialReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One pass over the three stages.
#[derive(Debug)]
struct PassOutcome {
    /// Fold of every stage digest (profile, sweep, serve, resume
    /// accounting) — the replay-identity comparison unit.
    digest: u64,
    /// The serve stage's response digest alone — the resume-identity
    /// comparison unit.
    serve_digest: u64,
    /// Rendered supervisor trajectory of the serve stage.
    supervisor: String,
    /// Accumulated fault accounting across every install/reinstall.
    accounting: Vec<(String, u64)>,
    /// Sweep restarts consumed.
    restarts: u64,
    /// Violations detected inside the pass (conservation, restart
    /// budget, sweep divergence).
    violations: Vec<String>,
}

/// Run one scenario to a judged report. `scratch` must be a
/// directory the trial may create per-seed subdirectories in; they
/// are removed before returning.
pub fn run_trial(sc: &Scenario, max_restarts: u64, scratch: &Path) -> TrialReport {
    let root = scratch.join(format!("seed-{:04x}", sc.seed));
    let _ = std::fs::remove_dir_all(&root);
    let reference = run_pass(sc, &root.join("ref"), None, max_restarts);
    let mut violations = reference.violations.clone();

    match sc.oracle {
        OracleKind::ReplayIdentity => {
            let again = run_pass(sc, &root.join("again"), None, max_restarts);
            if again.digest != reference.digest {
                violations.push(format!(
                    "replay divergence: digest {:#018x} vs {:#018x}",
                    reference.digest, again.digest
                ));
            }
            if again.accounting != reference.accounting {
                violations.push("replay divergence: fault accounting differs".to_string());
            }
            if again.supervisor != reference.supervisor {
                violations.push("replay divergence: supervisor trajectory differs".to_string());
            }
            violations.extend(
                again
                    .violations
                    .iter()
                    .map(|v| format!("second replay: {v}")),
            );
        }
        OracleKind::ResumeIdentity => {
            let resumed = run_pass(sc, &root.join("killed"), Some(sc.kill_point), max_restarts);
            if resumed.serve_digest != reference.serve_digest {
                violations.push(format!(
                    "resume divergence: responses {:#018x} (resumed) vs {:#018x} (uninterrupted)",
                    resumed.serve_digest, reference.serve_digest
                ));
            }
            if resumed.supervisor != reference.supervisor {
                violations.push(
                    "resume divergence: supervisor trajectory differs from uninterrupted run"
                        .to_string(),
                );
            }
            violations.extend(
                resumed
                    .violations
                    .iter()
                    .map(|v| format!("resumed run: {v}")),
            );
        }
    }

    let _ = std::fs::remove_dir_all(&root);
    let mut digest = reference.digest;
    for (key, value) in &reference.accounting {
        digest = fnv_fold(digest, key.as_bytes());
        digest = fnv_fold(digest, &value.to_le_bytes());
    }
    let verdict = if violations.is_empty() { "ok" } else { "FAIL" };
    let line = format!("{} -> digest {digest:#018x} {verdict}", sc.describe());
    TrialReport {
        scenario: sc.clone(),
        digest,
        violations,
        restarts: reference.restarts,
        line,
    }
}

/// Fold freshly-taken fault accounting into the pass accumulator.
/// Accounting accumulates *across* plan reinstalls: a kill clears
/// in-process occurrence state (as a real SIGKILL would) but the
/// trial's books keep every count.
fn fold_accounting(acc: &mut BTreeMap<String, u64>, taken: Vec<(String, u64)>) {
    for (key, value) in taken {
        *acc.entry(key).or_insert(0) += value;
    }
}

fn accounting_value(acc: &BTreeMap<String, u64>, key: &str) -> u64 {
    acc.get(key).copied().unwrap_or(0)
}

fn run_pass(sc: &Scenario, dir: &Path, kill: Option<usize>, max_restarts: u64) -> PassOutcome {
    let mut violations: Vec<String> = Vec::new();
    let mut accounting: BTreeMap<String, u64> = BTreeMap::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let specs = all_specs();
    let programs: Vec<HostProgram> = specs
        .iter()
        .take(2)
        .map(|s| build_program(s, Scale::Test))
        .collect();

    // The scenario's thread count governs every executor the trial
    // spawns — never the ambient GTPIN_THREADS — because which fault
    // seams exist depends on the worker count (the serial loop has
    // no shards to overflow), and the trial digest folds fault
    // accounting.
    let mut gpu = GpuConfig::hd4000();
    gpu.exec.threads = sc.threads;

    // Stage 1: profile conservation under the full plan.
    gtpin_faults::install(sc.plan());
    digest = fnv_fold(digest, b"profile:");
    let (dropped, quarantined) = match profile_app(&programs[0], gpu, 1) {
        Ok(profiled) => {
            let dropped: u64 = profiled
                .data
                .invocations
                .iter()
                .map(|i| i.dropped_records)
                .sum();
            let quarantined: u64 = profiled
                .data
                .invocations
                .iter()
                .map(|i| i.quarantined_records)
                .sum();
            let instructions: u64 = profiled
                .data
                .invocations
                .iter()
                .map(|i| i.instructions)
                .sum();
            digest = fnv_fold(digest, profiled.data.app.as_bytes());
            digest = fnv_fold(
                digest,
                &(profiled.data.invocations.len() as u64).to_le_bytes(),
            );
            digest = fnv_fold(digest, &instructions.to_le_bytes());
            digest = fnv_fold(digest, &dropped.to_le_bytes());
            digest = fnv_fold(digest, &quarantined.to_le_bytes());
            (dropped, quarantined)
        }
        Err(e) => {
            digest = fnv_fold(digest, format!("error: {e}").as_bytes());
            (0, 0)
        }
    };
    let stage = gtpin_faults::take_accounting();
    fold_accounting(&mut accounting, stage);
    if sc.arms(site::RECORD_CORRUPT)
        && accounting_value(&accounting, "injected.trace.record_corrupt") > 0
        && quarantined == 0
    {
        violations.push("conservation: corrupt records injected but none quarantined".into());
    }
    if !sc.arms(site::SHARD_OVERFLOW)
        && !sc.arms(site::RECORD_CORRUPT)
        && (dropped != 0 || quarantined != 0)
    {
        violations.push(format!(
            "conservation: {dropped} dropped / {quarantined} quarantined with no trace faults armed"
        ));
    }

    // Stage 2: journaled sweep through its crash/resume loop.
    let mut restarts = 0u64;
    if sc.arms(site::JOURNAL_CRASH) {
        gtpin_faults::disable();
        let baseline_opts = SweepOptions {
            threads: sc.threads,
            gpu,
            prescreen: false,
            ..SweepOptions::default()
        };
        let baseline = run_sweep(&programs[..1], &baseline_opts)
            .map(|outcome| outcome.report.render())
            .unwrap_or_else(|e| format!("error: {e}"));

        gtpin_faults::install(sc.plan());
        let sweep_dir = dir.join("sweep");
        let mut opts = SweepOptions {
            threads: sc.threads,
            gpu,
            prescreen: false,
            journal_dir: Some(sweep_dir),
            resume: false,
            ..SweepOptions::default()
        };
        digest = fnv_fold(digest, b"sweep:");
        loop {
            match run_sweep(&programs[..1], &opts) {
                Ok(outcome) => {
                    let rendered = outcome.report.render();
                    digest = fnv_fold(digest, rendered.as_bytes());
                    if !sc.arms_lossy() && rendered != baseline {
                        violations.push(
                            "sweep: resumed report diverged from the fault-free baseline".into(),
                        );
                    }
                    break;
                }
                Err(JournalError::InjectedCrash { .. }) => {
                    restarts += 1;
                    opts.resume = true;
                    if restarts > max_restarts {
                        violations.push(format!(
                            "sweep: did not converge within {max_restarts} restart(s)"
                        ));
                        digest = fnv_fold(digest, b"unconverged");
                        break;
                    }
                }
                Err(e) => {
                    digest = fnv_fold(digest, format!("error: {e}").as_bytes());
                    break;
                }
            }
        }
        digest = fnv_fold(digest, &restarts.to_le_bytes());
        fold_accounting(&mut accounting, gtpin_faults::take_accounting());
    }

    // Stage 3: the serve pipeline, optionally killed and resumed.
    gtpin_faults::install(sc.serve_plan());
    let requests = serve_requests(sc, &specs);
    let serve_dir = dir.join("serve");
    let config = ServeConfig {
        journal_dir: Some(serve_dir.clone()),
        resume: false,
        threads: sc.threads,
        ..ServeConfig::default()
    };
    digest = fnv_fold(digest, b"serve:");
    let mut dropped_deliveries = 0u64;
    let (serve_digest, supervisor) = match SessionEngine::new(config.clone()) {
        Err(e) => {
            let rendered = format!("error: {e}");
            digest = fnv_fold(digest, rendered.as_bytes());
            (fnv_fold(0, rendered.as_bytes()), rendered)
        }
        Ok((engine, _)) => {
            let mut engine = engine;
            let kill_at = kill.unwrap_or(requests.len()).min(requests.len());
            for request in &requests[..kill_at] {
                serve_one(&engine, request, &mut dropped_deliveries);
            }
            if kill.is_some() {
                // The kill: drop the engine mid-pipeline, clear the
                // in-process fault occurrence state (a SIGKILL takes
                // that memory with it), and resume from the journal.
                drop(engine);
                fold_accounting(&mut accounting, gtpin_faults::take_accounting());
                gtpin_faults::install(sc.serve_plan());
                match SessionEngine::new(ServeConfig {
                    resume: true,
                    ..config
                }) {
                    Ok((resumed, report)) => {
                        engine = resumed;
                        digest = fnv_fold(
                            digest,
                            format!(
                                "resume replayed {} recomputed {} reaped {}",
                                report.replayed, report.recomputed, report.reaped
                            )
                            .as_bytes(),
                        );
                    }
                    Err(e) => {
                        let rendered = format!("resume error: {e}");
                        violations.push(rendered.clone());
                        digest = fnv_fold(digest, rendered.as_bytes());
                        gtpin_faults::disable();
                        let acc = std::mem::take(&mut accounting);
                        return PassOutcome {
                            digest,
                            serve_digest: 0,
                            supervisor: rendered,
                            accounting: acc.into_iter().collect(),
                            restarts,
                            violations,
                        };
                    }
                }
            }
            for request in &requests[kill_at..] {
                serve_one(&engine, request, &mut dropped_deliveries);
            }
            let serve_digest = engine.response_digest();
            let supervisor = format!("{:?}", engine.supervisor_report());
            (serve_digest, supervisor)
        }
    };
    digest = fnv_fold(digest, &serve_digest.to_le_bytes());
    digest = fnv_fold(digest, supervisor.as_bytes());
    digest = fnv_fold(digest, &dropped_deliveries.to_le_bytes());
    fold_accounting(&mut accounting, gtpin_faults::take_accounting());
    gtpin_faults::disable();

    // Global conservation oracle: the executor's append = stored +
    // dropped + quarantined identity is checked on every shard drain
    // and surfaces breakage as `violation.*` accounting keys.
    for key in accounting.keys() {
        if key.starts_with("violation.") {
            violations.push(format!("conservation: accounting reports {key}"));
        }
    }

    PassOutcome {
        digest,
        serve_digest,
        supervisor,
        accounting: accounting.into_iter().collect(),
        restarts,
        violations,
    }
}

/// The scenario's serve request list: two apps, each profiled,
/// simulated, and linted, plus one exploration of the first app for
/// `explore` scenarios. Keep [`crate::scenario`]'s `request_count`
/// in sync with this shape.
fn serve_requests(sc: &Scenario, specs: &[workloads::WorkloadSpec]) -> Vec<Request> {
    let first = specs[0].name.to_string();
    let second = specs[1].name.to_string();
    let mut requests = vec![Request::Profile {
        app: first.clone(),
        scale: "test".to_string(),
    }];
    if sc.explore {
        requests.push(Request::Explore {
            app: first.clone(),
            scale: "test".to_string(),
            threshold_pct: 5.0,
        });
    }
    requests.push(Request::Sim {
        app: first.clone(),
        launches: 2,
    });
    requests.push(Request::Lint { app: first });
    requests.push(Request::Profile {
        app: second.clone(),
        scale: "test".to_string(),
    });
    requests.push(Request::Sim {
        app: second.clone(),
        launches: 2,
    });
    requests.push(Request::Lint { app: second });
    requests
}

/// Handle one request and deliver its response into a byte sink
/// through the `serve.conn_drop` seam (delivery loss must never
/// perturb the journaled/cached responses).
fn serve_one(engine: &SessionEngine, request: &Request, dropped: &mut u64) {
    let key = request.session_key();
    let result = engine.handle(request);
    let mut sink = Vec::new();
    match engine.deliver(&key, &result, &mut sink) {
        Ok(true) | Err(_) => {}
        Ok(false) => *dropped += 1,
    }
}

/// Scratch root for chaos trials.
pub fn default_scratch() -> PathBuf {
    std::env::temp_dir().join(format!("gtpin-chaos-{}", std::process::id()))
}
