//! Seeded scenario generation: everything a chaos trial does is a
//! pure function of one `u64` seed.
//!
//! A scenario bundles a multi-site fault plan (a random subset of
//! the registered `gtpin_faults` sites at randomly chosen rates), a
//! kill/resume schedule for the serve pipeline, a thread count, and
//! the oracle the trial will be judged against. Deriving all of it
//! from the seed is what makes failures reportable as a single
//! number — and what makes [`crate::shrink`] possible: a shrunk
//! scenario is the same seed with fewer sites or an earlier kill.

use gtpin_faults::{mix64, site, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault sites whose recovery is **lossless**: a run that is killed
/// and resumed under any subset of these must come out byte-identical
/// to an uninterrupted run. `journal.crash` qualifies because the
/// trial confines it to the sweep stage, whose resume loop is exactly
/// the recovery path the site exists to exercise.
pub const POOL_RESUME_SAFE: [&str; 5] = [
    site::WORKER_PANIC,
    site::CACHE_CORRUPT,
    site::SERVE_SESSION_CRASH,
    site::SERVE_CONN_DROP,
    site::JOURNAL_CRASH,
];

/// Fault sites that degrade *visibly* (typed errors, quarantined
/// records, serial fallbacks). Replay of the same seed is still
/// deterministic, but a kill/resume schedule under these is not
/// required to match an uninterrupted run, so resume-identity
/// scenarios never draw from this pool.
pub const POOL_LOSSY: [&str; 5] = [
    site::SHARD_OVERFLOW,
    site::RECORD_CORRUPT,
    site::JIT_FAIL,
    site::LAUNCH_HANG,
    site::SIM_SHARD,
];

/// Injection-rate ladder scenarios draw from. Discrete steps keep
/// summary lines short and make shrunk scenarios easy to re-derive
/// by hand.
pub const RATE_LADDER: [f64; 4] = [0.2, 0.4, 0.7, 1.0];

/// Which invariant the trial asserts for this scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Run the whole pipeline twice under identical seeding; digests,
    /// fault accounting, and supervisor trajectory must agree.
    ReplayIdentity,
    /// Run the serve pipeline once uninterrupted and once killed at
    /// the scheduled point and resumed from its journal; the resumed
    /// responses and policy trajectory must be byte-identical.
    ResumeIdentity,
}

impl OracleKind {
    /// Stable label for summary lines.
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::ReplayIdentity => "replay",
            OracleKind::ResumeIdentity => "resume",
        }
    }
}

/// One derived chaos scenario. Every field is a pure function of
/// [`Scenario::seed`] — except after shrinking, which edits `sites`,
/// `kill_point`, and `explore` directly and is the only sanctioned
/// way to construct a scenario the seed does not reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The generating seed (also the fault plan's seed).
    pub seed: u64,
    /// Armed fault sites with their injection rates, in pool order.
    pub sites: Vec<(&'static str, f64)>,
    /// Worker threads the trial passes *explicitly* to every stage
    /// (never the ambient `GTPIN_THREADS`), so the trial digest is
    /// independent of the environment it runs in.
    pub threads: usize,
    /// Index into the serve request list before which the daemon is
    /// killed (resume-identity scenarios only; `0 < kill_point <
    /// requests`).
    pub kill_point: usize,
    /// The invariant this scenario is judged against.
    pub oracle: OracleKind,
    /// Include an `explore` request (the 30-configuration sweep) in
    /// the serve pipeline — the most expensive request kind, so only
    /// about a quarter of scenarios pay for it.
    pub explore: bool,
}

impl Scenario {
    /// Derive the scenario for `seed`.
    pub fn derive(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0xC4A0_5EED));
        let oracle = if rng.gen_range(0u32..2) == 0 {
            OracleKind::ReplayIdentity
        } else {
            OracleKind::ResumeIdentity
        };
        let pool: Vec<&'static str> = match oracle {
            OracleKind::ResumeIdentity => POOL_RESUME_SAFE.to_vec(),
            OracleKind::ReplayIdentity => POOL_RESUME_SAFE
                .iter()
                .chain(POOL_LOSSY.iter())
                .copied()
                .collect(),
        };
        let count = rng.gen_range(1usize..4).min(pool.len());
        let mut picked: Vec<usize> = Vec::with_capacity(count);
        while picked.len() < count {
            let idx = rng.gen_range(0usize..pool.len());
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        picked.sort_unstable();
        let sites: Vec<(&'static str, f64)> = picked
            .into_iter()
            .map(|idx| {
                let site = pool[idx];
                let mut rate = RATE_LADDER[rng.gen_range(0usize..RATE_LADDER.len())];
                // A certain crash on every journal append can never
                // converge; cap the site so each resume makes
                // progress (the occurrence salt advances per retry).
                if site == site::JOURNAL_CRASH {
                    rate = rate.min(0.7);
                }
                (site, rate)
            })
            .collect();
        let threads = rng.gen_range(1usize..9);
        let explore = rng.gen_range(0u32..4) == 0;
        let requests = request_count(explore);
        let kill_point = rng.gen_range(1usize..requests);
        Scenario {
            seed,
            sites,
            threads,
            kill_point,
            oracle,
            explore,
        }
    }

    /// The full fault plan this scenario installs.
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::quiescent(self.seed);
        for (site, rate) in &self.sites {
            plan = plan.with_rate(site, *rate);
        }
        plan
    }

    /// The plan for the serve stage: identical, except that
    /// `journal.crash` is disarmed. The serve layer journals through
    /// `append_with_recovery`, which *degrades* (session not durable)
    /// instead of crashing — sound for a daemon, but it would poison
    /// the resume-identity oracle, so the trial confines that site to
    /// the sweep stage where crash-and-resume is the contract.
    pub fn serve_plan(&self) -> FaultPlan {
        let mut plan = self.plan();
        plan.rates.remove(site::JOURNAL_CRASH);
        plan
    }

    /// True when `site` is armed at a non-zero rate.
    pub fn arms(&self, site: &str) -> bool {
        self.sites.iter().any(|(s, r)| *s == site && *r > 0.0)
    }

    /// True when any site of the lossy pool is armed — the killed
    /// run's profile digests may then legitimately differ from a
    /// fault-free baseline.
    pub fn arms_lossy(&self) -> bool {
        POOL_LOSSY.iter().any(|s| self.arms(s))
    }

    /// Number of requests in the serve pipeline for this scenario.
    pub fn request_count(&self) -> usize {
        request_count(self.explore)
    }

    /// Deterministic one-line description (no volatile fields) —
    /// the unit the chaos digest folds over.
    pub fn describe(&self) -> String {
        let sites: Vec<String> = self
            .sites
            .iter()
            .map(|(s, r)| format!("{s}@{r:.1}"))
            .collect();
        format!(
            "seed {:#06x} oracle {} threads {} kill {} explore {} sites [{}]",
            self.seed,
            self.oracle.label(),
            self.threads,
            self.kill_point,
            self.explore,
            sites.join(", ")
        )
    }
}

/// Serve requests per scenario: two apps, each Profile + Sim + Lint,
/// plus one Explore of the first app when `explore` is set.
fn request_count(explore: bool) -> usize {
    6 + usize::from(explore)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_a_pure_function_of_the_seed() {
        for seed in 0..64u64 {
            let a = Scenario::derive(seed);
            let b = Scenario::derive(seed);
            assert_eq!(a, b, "seed {seed} derived two different scenarios");
            assert_eq!(a.describe(), b.describe());
        }
    }

    #[test]
    fn scenarios_respect_their_pools_and_bounds() {
        for seed in 0..256u64 {
            let sc = Scenario::derive(seed);
            assert!(!sc.sites.is_empty() && sc.sites.len() <= 3, "{sc:?}");
            assert!((1..=8).contains(&sc.threads), "{sc:?}");
            assert!(sc.kill_point >= 1 && sc.kill_point < sc.request_count());
            for (site, rate) in &sc.sites {
                assert!(*rate > 0.0 && *rate <= 1.0);
                if sc.oracle == OracleKind::ResumeIdentity {
                    assert!(
                        POOL_RESUME_SAFE.contains(site),
                        "resume scenario armed lossy site {site}"
                    );
                }
                if *site == site::JOURNAL_CRASH {
                    assert!(*rate <= 0.7, "journal.crash must leave room to converge");
                }
            }
        }
    }

    #[test]
    fn both_oracles_and_every_pool_site_are_reachable() {
        let mut replay = 0usize;
        let mut resume = 0usize;
        let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for seed in 0..512u64 {
            let sc = Scenario::derive(seed);
            match sc.oracle {
                OracleKind::ReplayIdentity => replay += 1,
                OracleKind::ResumeIdentity => resume += 1,
            }
            for (site, _) in &sc.sites {
                seen.insert(site);
            }
        }
        assert!(replay > 100 && resume > 100, "{replay} vs {resume}");
        for site in POOL_RESUME_SAFE.iter().chain(POOL_LOSSY.iter()) {
            assert!(seen.contains(site), "site {site} never drawn in 512 seeds");
        }
    }

    #[test]
    fn serve_plan_confines_journal_crash_to_the_sweep_stage() {
        let sc = (0..512u64)
            .map(Scenario::derive)
            .find(|sc| sc.arms(site::JOURNAL_CRASH))
            .expect("some seed arms journal.crash");
        assert!(sc.plan().rate(site::JOURNAL_CRASH) > 0.0);
        assert_eq!(sc.serve_plan().rate(site::JOURNAL_CRASH), 0.0);
    }
}
