//! Proptest-style shrinking for failing scenarios.
//!
//! When a trial's oracle fires, the raw scenario may arm three sites
//! at once and kill the pipeline mid-way — too much surface to debug
//! from. The shrinker greedily minimizes the failing `(seed,
//! site-set, kill-point)` triple while re-checking the failure
//! predicate after every candidate edit:
//!
//! 1. drop armed sites one at a time (restarting the sweep whenever
//!    a removal still fails, so interacting pairs reduce fully);
//! 2. pull the kill point back to the earliest request index that
//!    still fails;
//! 3. drop the expensive `explore` request if the failure survives
//!    without it.
//!
//! The predicate is injected as a closure, so production callers pass
//! "re-run the trial and check for violations" while the self-test
//! passes a synthetic predicate with a known minimal form.

use crate::scenario::Scenario;

/// Greedily shrink `failing` to a minimal scenario that still makes
/// `fails` return true. `failing` itself must satisfy the predicate;
/// the result always does.
pub fn shrink_scenario<F>(failing: &Scenario, mut fails: F) -> Scenario
where
    F: FnMut(&Scenario) -> bool,
{
    let mut current = failing.clone();

    // 1. Site-set minimization: retry from the first site after any
    // successful removal, so every order-dependent pair collapses.
    let mut progress = true;
    while progress && current.sites.len() > 1 {
        progress = false;
        for index in 0..current.sites.len() {
            let mut candidate = current.clone();
            candidate.sites.remove(index);
            if fails(&candidate) {
                current = candidate;
                progress = true;
                break;
            }
        }
    }

    // 2. Kill-point minimization: the earliest kill that still fails
    // is the one worth staring at.
    for kill_point in 1..current.kill_point {
        let mut candidate = current.clone();
        candidate.kill_point = kill_point;
        if fails(&candidate) {
            current = candidate;
            break;
        }
    }

    // 3. Drop the explore request when the failure does not need it.
    if current.explore {
        let mut candidate = current.clone();
        candidate.explore = false;
        // A scenario without the explore request has one fewer kill
        // slot; clamp so the candidate stays well-formed.
        candidate.kill_point = candidate.kill_point.min(candidate.request_count() - 1);
        if fails(&candidate) {
            current = candidate;
        }
    }

    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::OracleKind;
    use gtpin_faults::site;

    fn synthetic(sites: &[(&'static str, f64)], kill_point: usize, explore: bool) -> Scenario {
        Scenario {
            seed: 0x5EED,
            sites: sites.to_vec(),
            threads: 4,
            kill_point,
            oracle: OracleKind::ResumeIdentity,
            explore,
        }
    }

    /// The chaos self-test contract: a synthetic predicate that fails
    /// iff one specific site is armed must shrink to exactly that
    /// single site with the earliest kill point.
    #[test]
    fn shrinks_a_multi_site_failure_to_the_single_guilty_site() {
        let failing = synthetic(
            &[
                (site::WORKER_PANIC, 0.4),
                (site::CACHE_CORRUPT, 1.0),
                (site::SERVE_CONN_DROP, 0.7),
            ],
            5,
            true,
        );
        let mut evaluations = 0usize;
        let shrunk = shrink_scenario(&failing, |sc| {
            evaluations += 1;
            sc.arms(site::CACHE_CORRUPT)
        });
        assert_eq!(
            shrunk.sites,
            vec![(site::CACHE_CORRUPT, 1.0)],
            "expected the guilty site alone, got {shrunk:?}"
        );
        assert_eq!(shrunk.kill_point, 1, "kill point should reduce to earliest");
        assert!(!shrunk.explore, "explore request should be dropped");
        assert!(evaluations > 0);
    }

    /// Interacting failures (two sites required together) keep both
    /// sites and drop only the bystander.
    #[test]
    fn keeps_an_interacting_pair_intact() {
        let failing = synthetic(
            &[
                (site::WORKER_PANIC, 0.4),
                (site::CACHE_CORRUPT, 1.0),
                (site::SERVE_SESSION_CRASH, 0.2),
            ],
            3,
            false,
        );
        let shrunk = shrink_scenario(&failing, |sc| {
            sc.arms(site::WORKER_PANIC) && sc.arms(site::SERVE_SESSION_CRASH)
        });
        assert_eq!(
            shrunk.sites,
            vec![(site::WORKER_PANIC, 0.4), (site::SERVE_SESSION_CRASH, 0.2)]
        );
    }

    /// The shrinker never returns a passing scenario.
    #[test]
    fn result_always_satisfies_the_predicate() {
        for seed in 0..32u64 {
            let sc = Scenario::derive(seed);
            let guilty = sc.sites[0].0;
            let shrunk = shrink_scenario(&sc, |c| c.arms(guilty));
            assert!(shrunk.arms(guilty), "seed {seed} shrunk away the failure");
            assert_eq!(shrunk.sites.len(), 1, "seed {seed}: {shrunk:?}");
        }
    }
}
