//! # gtpin-chaos
//!
//! End-to-end chaos harness for the GT-Pin suite, surfaced as
//! `gtpin chaos --seeds N`.
//!
//! Each scenario is derived **purely from one seed**
//! ([`Scenario::derive`]): a multi-site fault plan (a random subset
//! of the registered `gtpin_faults` sites at random rates), a
//! kill/resume schedule across the profile → explore → sim → serve
//! pipeline, and a worker-thread count in `1..=8`. The trial driver
//! ([`run_trial`]) executes the scenario and judges it against the
//! invariant oracle:
//!
//! - **conservation** — every trace record appended is stored,
//!   dropped, or quarantined (the executor's own identity check,
//!   surfaced through fault accounting);
//! - **resume identity** — a run killed at the scheduled point and
//!   resumed from its journal is byte-identical to an uninterrupted
//!   run, including the supervisor's policy trajectory;
//! - **replay identity** — two identically-seeded runs agree on
//!   digests, accounting, and trajectory;
//! - **bounded convergence** — the sweep's injected crash/resume
//!   loop converges within the restart budget.
//!
//! A failing scenario is shrunk ([`shrink_scenario`]) to a minimal
//! `(seed, site-set, kill-point)` triple before it is reported.
//!
//! The chaos run itself honors the same standards it enforces: with
//! `--journal` each completed scenario's summary is durable, and a
//! killed run resumed with `--resume` skips finished scenarios and
//! produces the identical final digest. Nothing volatile is folded
//! into the digest, and every stage receives the scenario's thread
//! count explicitly, so the digest is also independent of the
//! ambient `GTPIN_THREADS`.

pub mod scenario;
pub mod shrink;
pub mod trial;

pub use scenario::{OracleKind, Scenario, POOL_LOSSY, POOL_RESUME_SAFE, RATE_LADDER};
pub use shrink::shrink_scenario;
pub use trial::{fnv_fold, run_trial, TrialReport, DEFAULT_MAX_RESTARTS};

use std::path::PathBuf;

use gtpin_durable::Journal;
use serde::{Deserialize, Serialize};

/// Env knob: base seed for `gtpin chaos` (strict-parsed by
/// `validate_env`; the `--seed-base` flag overrides).
pub const CHAOS_SEED_ENV: &str = "GTPIN_CHAOS_SEED";

/// Env knob: restart budget for the sweep crash/resume loop
/// (strict-parsed by `validate_env`; `0` means "no restarts
/// allowed", which fails any scenario that arms `journal.crash`).
pub const CHAOS_MAX_RESTARTS_ENV: &str = "GTPIN_CHAOS_MAX_RESTARTS";

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of scenarios (seeds `seed_base .. seed_base + seeds`).
    pub seeds: u64,
    /// First seed (`--seed-base`, default [`CHAOS_SEED_ENV`] or 0).
    pub seed_base: u64,
    /// Journal directory for the chaos run's own durability; `None`
    /// runs without it.
    pub journal_dir: Option<PathBuf>,
    /// Recover `journal_dir` and skip completed scenarios.
    pub resume: bool,
    /// Sweep restart budget per scenario.
    pub max_restarts: u64,
    /// Scratch directory for per-trial journals.
    pub scratch: PathBuf,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seeds: 5,
            seed_base: std::env::var(CHAOS_SEED_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
            journal_dir: None,
            resume: false,
            max_restarts: std::env::var(CHAOS_MAX_RESTARTS_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_MAX_RESTARTS),
            scratch: trial::default_scratch(),
        }
    }
}

/// One journaled scenario outcome — everything needed to skip the
/// scenario on resume and still fold the identical digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioRecord {
    /// The scenario's seed.
    pub seed: u64,
    /// The deterministic summary line.
    pub line: String,
    /// The trial digest.
    pub digest: u64,
    /// Oracle violations (empty = passed).
    pub violations: Vec<String>,
    /// Shrunk minimal description, present only for failures.
    pub shrunk: Option<String>,
}

/// The chaos run's final report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scenario outcomes in seed order.
    pub scenarios: Vec<ScenarioRecord>,
    /// Scenarios replayed from the journal instead of re-run.
    pub replayed: usize,
    /// Deterministic digest over every scenario line + digest.
    pub digest: u64,
}

impl ChaosReport {
    /// Count of failed scenarios.
    pub fn failures(&self) -> usize {
        self.scenarios
            .iter()
            .filter(|s| !s.violations.is_empty())
            .count()
    }

    /// Deterministic human rendering — what `gtpin chaos` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for record in &self.scenarios {
            out.push_str(&record.line);
            out.push('\n');
            for violation in &record.violations {
                out.push_str(&format!("  violation: {violation}\n"));
            }
            if let Some(shrunk) = &record.shrunk {
                out.push_str(&format!("  shrunk to: {shrunk}\n"));
            }
        }
        out.push_str(&format!(
            "chaos: {} scenario(s), {} failure(s), digest {:#018x}\n",
            self.scenarios.len(),
            self.failures(),
            self.digest
        ));
        out
    }
}

/// Errors of the chaos harness itself (journal trouble, bad config).
/// Scenario failures are *results*, not errors.
#[derive(Debug)]
pub enum ChaosError {
    /// The chaos journal could not be created, recovered, or
    /// appended to.
    Journal(gtpin_durable::JournalError),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Journal(e) => write!(f, "chaos journal: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaosError::Journal(e) => Some(e),
        }
    }
}

impl From<gtpin_durable::JournalError> for ChaosError {
    fn from(e: gtpin_durable::JournalError) -> ChaosError {
        ChaosError::Journal(e)
    }
}

/// Run the chaos harness under `config`.
///
/// # Errors
///
/// Returns [`ChaosError`] only for harness-level trouble (its own
/// journal); scenario failures land in the report.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, ChaosError> {
    let mut span = gtpin_obs::span("chaos.run");
    if span.active() {
        span.arg_u64("seeds", config.seeds);
        span.arg_u64("seed_base", config.seed_base);
    }

    // Recover (or create) the chaos run's own journal: completed
    // scenarios replay from their durable summaries, so a killed
    // `gtpin chaos` resumed mid-run folds the identical digest.
    let mut completed: std::collections::BTreeMap<u64, ScenarioRecord> =
        std::collections::BTreeMap::new();
    let mut journal = match &config.journal_dir {
        None => None,
        Some(dir) if config.resume => {
            let (journal, recovery) = Journal::recover(dir)?;
            for payload in &recovery.records {
                if let Ok(record) =
                    serde_json::from_str::<ScenarioRecord>(&String::from_utf8_lossy(payload))
                {
                    completed.insert(record.seed, record);
                }
            }
            Some(journal)
        }
        Some(dir) => Some(Journal::create(dir)?),
    };

    let mut scenarios: Vec<ScenarioRecord> = Vec::with_capacity(config.seeds as usize);
    let mut replayed = 0usize;
    for seed in config.seed_base..config.seed_base.saturating_add(config.seeds) {
        if let Some(record) = completed.get(&seed) {
            gtpin_obs::counter_add("chaos.scenario_replayed", 1);
            scenarios.push(record.clone());
            replayed += 1;
            continue;
        }
        let record = run_one(seed, config);
        if let Some(journal) = &mut journal {
            let json = serde_json::to_string(&record).unwrap_or_default();
            journal.append(json.as_bytes())?;
        }
        scenarios.push(record);
    }

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for record in &scenarios {
        digest = fnv_fold(digest, record.line.as_bytes());
        digest = fnv_fold(digest, &record.digest.to_le_bytes());
    }
    let _ = std::fs::remove_dir_all(&config.scratch);
    Ok(ChaosReport {
        scenarios,
        replayed,
        digest,
    })
}

/// Derive, run, and (on failure) shrink one scenario.
fn run_one(seed: u64, config: &ChaosConfig) -> ScenarioRecord {
    let mut span = gtpin_obs::span("chaos.scenario");
    let sc = Scenario::derive(seed);
    if span.active() {
        span.arg_u64("seed", seed);
        span.arg_str("oracle", sc.oracle.label().to_string());
        span.arg_u64("sites", sc.sites.len() as u64);
        span.arg_u64("threads", sc.threads as u64);
    }
    gtpin_obs::counter_add("chaos.scenarios", 1);
    let report = run_trial(&sc, config.max_restarts, &config.scratch);
    let shrunk = if report.passed() {
        None
    } else {
        gtpin_obs::counter_add("chaos.failures", 1);
        // Minimize before reporting: re-run the trial on each
        // candidate and keep edits that still violate an oracle.
        let minimal = shrink_scenario(&sc, |candidate| {
            !run_trial(candidate, config.max_restarts, &config.scratch).passed()
        });
        Some(minimal.describe())
    };
    ScenarioRecord {
        seed,
        line: report.line,
        digest: report.digest,
        violations: report.violations,
        shrunk,
    }
}

/// Run the built-in shrinker self-test: derive a scenario, force a
/// synthetic single-site failure predicate, and check the shrinker
/// reduces it to exactly that site. Returns the deterministic
/// summary line and whether the contract held.
pub fn self_test() -> (String, bool) {
    // Find a derived scenario arming at least two sites so shrinking
    // has work to do; seed the predicate on its first armed site.
    let sc = (0..512u64)
        .map(Scenario::derive)
        .find(|sc| sc.sites.len() >= 2)
        .expect("some seed arms two or more sites");
    let guilty = sc.sites[0].0;
    let shrunk = shrink_scenario(&sc, |candidate| candidate.arms(guilty));
    let ok = shrunk.sites.len() == 1 && shrunk.arms(guilty) && shrunk.kill_point <= sc.kill_point;
    let line = format!(
        "self-test: {} shrunk to sites [{}@{:.1}] kill {} -> {}",
        sc.describe(),
        shrunk.sites[0].0,
        shrunk.sites[0].1,
        shrunk.kill_point,
        if ok { "ok" } else { "FAIL" }
    );
    (line, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The chaos self-test: demonstrates on a synthetic predicate
    /// that the shrinker reduces a seeded multi-site failure to a
    /// single-site minimal form — the contract `gtpin chaos
    /// --self-test` prints.
    #[test]
    fn self_test_shrinks_synthetic_failure_to_single_site() {
        let (line, ok) = self_test();
        assert!(ok, "self-test failed: {line}");
        assert!(
            line.contains("sites [") && line.contains("shrunk"),
            "{line}"
        );
    }

    #[test]
    fn default_config_reads_knobs_leniently() {
        let config = ChaosConfig::default();
        assert!(config.max_restarts > 0);
        assert_eq!(config.seeds, 5);
    }
}
