//! A model of Intel CoFluent CPR: API-call tracing, per-kernel
//! timing reports, and deterministic record/replay.
//!
//! In the paper CoFluent plays three roles: it classifies OpenCL API
//! calls for Figure 3a, supplies per-kernel-invocation timings for
//! the SPI error metric (Equation 1), and — through its record and
//! replay feature — pins down API-call order so that selections made
//! on one trial stay findable in later trials and on other
//! architectures (Section V-E).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::api::{ApiCallKind, ArgValue, KernelId};
use crate::device::Device;
use crate::host::HostProgram;
use crate::runtime::{OclRuntime, RunError, RunReport, Schedule};

/// Timing and identity of one kernel invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationTiming {
    /// Position in launch order (0-based).
    pub index: u32,
    /// Which kernel ran.
    pub kernel: KernelId,
    /// The kernel's name.
    pub kernel_name: String,
    /// Global work size of the launch.
    pub global_work_size: u64,
    /// Argument values bound at launch.
    pub args: Vec<ArgValue>,
    /// Device-reported wall-clock seconds.
    pub seconds: f64,
    /// The synchronization epoch this invocation belongs to (epochs
    /// are delimited by the seven sync calls).
    pub sync_epoch: u32,
}

impl InvocationTiming {
    /// A stable digest of the bound argument values, used by
    /// KN-ARGS feature vectors.
    pub fn args_digest(&self) -> u64 {
        self.args.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, a| {
            (h ^ a.digest()).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }
}

/// The CoFluent-style report for one program execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CofluentReport {
    /// Application name.
    pub app: String,
    /// Device the run executed on.
    pub device: String,
    /// Total OpenCL API calls observed.
    pub total_api_calls: u64,
    /// Counts per [`ApiCallKind`], indexed per [`ApiCallKind::ALL`]
    /// (kernel, synchronization, other).
    pub kind_counts: [u64; 3],
    /// Counts per API-call name.
    pub per_call_counts: BTreeMap<String, u64>,
    /// One record per kernel invocation, in execution order.
    pub invocations: Vec<InvocationTiming>,
    /// Number of synchronization epochs that contained device work.
    pub num_sync_epochs: u32,
}

impl CofluentReport {
    /// Fraction of all API calls of the given kind (Figure 3a).
    pub fn kind_fraction(&self, kind: ApiCallKind) -> f64 {
        if self.total_api_calls == 0 {
            return 0.0;
        }
        let i = ApiCallKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind");
        self.kind_counts[i] as f64 / self.total_api_calls as f64
    }

    /// Total seconds spent in kernel invocations.
    pub fn total_kernel_seconds(&self) -> f64 {
        self.invocations.iter().map(|i| i.seconds).sum()
    }

    /// Number of kernel invocations.
    pub fn num_invocations(&self) -> usize {
        self.invocations.len()
    }
}

/// A CoFluent recording: the captured API-call order (with argument
/// values and kernel sources) of one native run. Replaying it
/// executes "just as a normal executable on native hardware would,
/// with the only difference being a consistent and repeatable
/// ordering of API calls".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recording {
    program: HostProgram,
}

impl Recording {
    /// Capture a recording by running `program` natively (with the
    /// trial-dependent `seed` ordering) and keeping the resolved
    /// call order.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the capture run.
    pub fn capture<D: Device>(
        runtime: &mut OclRuntime<D>,
        program: &HostProgram,
        seed: u64,
    ) -> Result<(Recording, RunReport), RunError> {
        let mut span = gtpin_obs::span("cofluent.capture");
        let report = runtime.run(program, Schedule::Natural { seed })?;
        if span.active() {
            span.arg_str("app", program.name.clone());
            span.arg_u64("api_calls", report.cofluent.total_api_calls);
            span.arg_u64("invocations", report.cofluent.num_invocations() as u64);
        }
        if report.cofluent.invocations.is_empty() {
            gtpin_obs::warn!(
                "cofluent: recording of `{}` captured no kernel invocations; replays will do no device work",
                program.name
            );
        }
        let recording = Recording {
            program: HostProgram {
                name: program.name.clone(),
                source: program.source.clone(),
                calls: report.resolved_calls.clone(),
            },
        };
        Ok((recording, report))
    }

    /// Replay the recording on a (possibly different) device.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the replay run.
    pub fn replay<D: Device>(&self, runtime: &mut OclRuntime<D>) -> Result<RunReport, RunError> {
        let mut span = gtpin_obs::span("cofluent.replay");
        if span.active() {
            span.arg_str("app", self.program.name.clone());
        }
        runtime.run(&self.program, Schedule::Replay)
    }

    /// The recorded program (captured call order).
    pub fn program(&self) -> &HostProgram {
        &self.program
    }
}

/// A standalone API tracer for host programs that are inspected
/// without executing on a device (used by a few reports and tests).
#[derive(Debug, Default, Clone)]
pub struct ApiTracer {
    kind_counts: [u64; 3],
    per_call_counts: BTreeMap<String, u64>,
    total: u64,
}

impl ApiTracer {
    /// An empty tracer.
    pub fn new() -> ApiTracer {
        ApiTracer::default()
    }

    /// Record one call.
    pub fn observe(&mut self, call: &crate::api::ApiCall) {
        let i = ApiCallKind::ALL
            .iter()
            .position(|&k| k == call.kind())
            .expect("kind in ALL");
        self.kind_counts[i] += 1;
        *self
            .per_call_counts
            .entry(call.name().to_string())
            .or_insert(0) += 1;
        self.total += 1;
    }

    /// Trace an entire script.
    pub fn observe_all<'a>(&mut self, calls: impl IntoIterator<Item = &'a crate::api::ApiCall>) {
        for c in calls {
            self.observe(c);
        }
    }

    /// Counts per kind, in [`ApiCallKind::ALL`] order.
    pub fn kind_counts(&self) -> [u64; 3] {
        self.kind_counts
    }

    /// Total calls observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Counts per API-call name.
    pub fn per_call_counts(&self) -> &BTreeMap<String, u64> {
        &self.per_call_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ApiCall, SyncCall};
    use crate::device::test_support::FakeDevice;
    use crate::host::{HostScriptBuilder, ProgramSource};
    use crate::ir::KernelIr;

    fn program() -> HostProgram {
        let source = ProgramSource {
            kernels: vec![KernelIr::new("a", 1), KernelIr::new("b", 1)],
        };
        let mut b = HostScriptBuilder::new("app", source);
        for e in 0..3 {
            for i in 0..4u32 {
                let k = KernelId(i % 2);
                b.set_arg(k, 0, ArgValue::Scalar((e * 4 + i) as u64));
                b.launch(k, 128);
            }
            b.sync(SyncCall::Finish);
        }
        b.finish().unwrap()
    }

    #[test]
    fn recording_replay_is_deterministic() {
        let p = program();
        let mut rt = OclRuntime::new(FakeDevice::default());
        let (rec, capture_report) = Recording::capture(&mut rt, &p, 11).unwrap();

        let mut rt2 = OclRuntime::new(FakeDevice::default());
        let replay1 = rec.replay(&mut rt2).unwrap();
        let mut rt3 = OclRuntime::new(FakeDevice::default());
        let replay2 = rec.replay(&mut rt3).unwrap();

        let order = |r: &RunReport| {
            r.cofluent
                .invocations
                .iter()
                .map(|i| (i.kernel, i.args.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            order(&replay1),
            order(&replay2),
            "replays agree with each other"
        );
        assert_eq!(
            order(&replay1),
            order(&capture_report),
            "replays reproduce the captured order"
        );
    }

    #[test]
    fn kind_fractions_sum_to_one() {
        let p = program();
        let mut rt = OclRuntime::new(FakeDevice::default());
        let r = rt.run(&p, Schedule::Replay).unwrap().cofluent;
        let total: f64 = ApiCallKind::ALL.iter().map(|&k| r.kind_fraction(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn args_digest_distinguishes_bindings() {
        let a = InvocationTiming {
            index: 0,
            kernel: KernelId(0),
            kernel_name: "k".into(),
            global_work_size: 64,
            args: vec![ArgValue::Scalar(1)],
            seconds: 0.0,
            sync_epoch: 0,
        };
        let mut b = a.clone();
        b.args = vec![ArgValue::Scalar(2)];
        assert_ne!(a.args_digest(), b.args_digest());
    }

    #[test]
    fn tracer_counts_match_runtime_counts() {
        let p = program();
        let mut tracer = ApiTracer::new();
        tracer.observe_all(&p.calls);
        let mut rt = OclRuntime::new(FakeDevice::default());
        let r = rt.run(&p, Schedule::Replay).unwrap().cofluent;
        assert_eq!(tracer.kind_counts(), r.kind_counts);
        assert_eq!(tracer.total(), r.total_api_calls);
        assert_eq!(
            tracer.per_call_counts().get("clEnqueueNDRangeKernel"),
            Some(&12)
        );
    }

    #[test]
    fn sync_only_scripts_have_zero_kernel_fraction() {
        let mut tracer = ApiTracer::new();
        tracer.observe(&ApiCall::Sync(SyncCall::Flush));
        assert_eq!(tracer.kind_counts(), [0, 1, 0]);
    }
}
