//! The OpenCL runtime: executes host programs against a device,
//! maintaining argument state and synchronization epochs.

use std::collections::BTreeMap;

use crate::api::{ApiCall, ApiCallKind, ArgValue, KernelId};
use crate::cofluent::{CofluentReport, InvocationTiming};
use crate::device::{Device, DeviceError};
use crate::host::HostProgram;

/// How the runtime orders unsynchronized work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// "Native" execution: between synchronization calls the queue
    /// may legally complete launch groups in a different order; the
    /// seed makes a particular ordering reproducible. This models the
    /// non-determinism the paper works around with CoFluent
    /// recordings (Section V-E).
    Natural {
        /// Ordering seed (varies per trial on real hardware).
        seed: u64,
    },
    /// Replay of a recording: the script order is followed exactly.
    Replay,
}

/// Errors from running a host program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The program failed validation before execution.
    BadProgram(String),
    /// The device reported an error.
    Device(DeviceError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::BadProgram(s) => write!(f, "invalid host program: {s}"),
            RunError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<DeviceError> for RunError {
    fn from(e: DeviceError) -> RunError {
        RunError::Device(e)
    }
}

/// The result of one program execution: the CoFluent-style API and
/// timing report plus the resolved call order (which a recording
/// captures).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-call-kind counts, timings, and invocation records.
    pub cofluent: CofluentReport,
    /// The exact call order that executed (input script after
    /// scheduling). Replaying this order reproduces the run.
    pub resolved_calls: Vec<ApiCall>,
}

/// The OpenCL runtime bound to one device.
#[derive(Debug)]
pub struct OclRuntime<D> {
    device: D,
}

impl<D: Device> OclRuntime<D> {
    /// A runtime driving `device`.
    pub fn new(device: D) -> OclRuntime<D> {
        OclRuntime { device }
    }

    /// Access the device (e.g. to read profiling state GT-Pin left
    /// behind).
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable device access.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Consume the runtime, returning the device.
    pub fn into_device(self) -> D {
        self.device
    }

    /// Execute a host program under the given schedule.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::BadProgram`] for malformed programs and
    /// [`RunError::Device`] when the device faults.
    pub fn run(
        &mut self,
        program: &HostProgram,
        schedule: Schedule,
    ) -> Result<RunReport, RunError> {
        program.check().map_err(RunError::BadProgram)?;
        let calls = match schedule {
            Schedule::Replay => program.calls.clone(),
            Schedule::Natural { seed } => natural_order(&program.calls, seed),
        };

        let mut kind_counts = [0u64; 3];
        let mut per_call_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut invocations: Vec<InvocationTiming> = Vec::new();
        let mut args: Vec<Vec<Option<ArgValue>>> = program
            .source
            .kernels
            .iter()
            .map(|k| vec![None; k.num_args as usize])
            .collect();
        let mut sync_epoch = 0u32;
        let mut saw_work_in_epoch = false;

        for call in &calls {
            let kind = call.kind();
            let kidx = ApiCallKind::ALL
                .iter()
                .position(|&k| k == kind)
                .expect("kind in ALL");
            kind_counts[kidx] += 1;
            *per_call_counts.entry(call.name().to_string()).or_insert(0) += 1;

            match call {
                ApiCall::BuildProgram => {
                    self.device.build_program(&program.source)?;
                }
                ApiCall::SetKernelArg {
                    kernel,
                    index,
                    value,
                } => {
                    let slots = &mut args[kernel.index()];
                    let i = *index as usize;
                    if i >= slots.len() {
                        return Err(RunError::BadProgram(format!(
                            "{kernel}: argument index {index} past declared num_args"
                        )));
                    }
                    slots[i] = Some(*value);
                }
                ApiCall::EnqueueNDRangeKernel {
                    kernel,
                    global_work_size,
                } => {
                    let bound = bind_args(*kernel, &args[kernel.index()])?;
                    let timing = self
                        .device
                        .launch_kernel(*kernel, &bound, *global_work_size)?;
                    let kernel_name = program
                        .source
                        .kernel(*kernel)
                        .map(|k| k.name.clone())
                        .unwrap_or_default();
                    invocations.push(InvocationTiming {
                        index: invocations.len() as u32,
                        kernel: *kernel,
                        kernel_name,
                        global_work_size: *global_work_size,
                        args: bound,
                        seconds: timing.seconds,
                        sync_epoch,
                    });
                    saw_work_in_epoch = true;
                }
                ApiCall::Sync(s) => {
                    self.device.synchronize(*s);
                    if saw_work_in_epoch {
                        sync_epoch += 1;
                        saw_work_in_epoch = false;
                    }
                }
                _ => {}
            }
        }

        let num_sync_epochs = sync_epoch + u32::from(saw_work_in_epoch);
        Ok(RunReport {
            cofluent: CofluentReport {
                app: program.name.clone(),
                device: self.device.device_name(),
                total_api_calls: calls.len() as u64,
                kind_counts,
                per_call_counts,
                invocations,
                num_sync_epochs,
            },
            resolved_calls: calls,
        })
    }
}

fn bind_args(kernel: KernelId, slots: &[Option<ArgValue>]) -> Result<Vec<ArgValue>, DeviceError> {
    slots
        .iter()
        .enumerate()
        .map(|(i, v)| {
            v.ok_or(DeviceError::MissingArg {
                kernel,
                index: i as u8,
            })
        })
        .collect()
}

/// Reorder launch groups within each synchronization epoch, the way
/// an out-of-order queue legally may. A *launch group* is a maximal
/// run of calls ending in `clEnqueueNDRangeKernel` (its argument
/// setup travels with it); other calls keep their positions relative
/// to group boundaries.
fn natural_order(calls: &[ApiCall], seed: u64) -> Vec<ApiCall> {
    // Arguments bound exactly once in the whole program ("stable":
    // buffers, configuration) are global state every later launch
    // depends on — their binding pins the order. Arguments re-bound
    // repeatedly ("volatile": per-launch sizes) travel with the
    // launch group that snapshots them.
    let mut bind_counts: BTreeMap<(KernelId, u8), u32> = BTreeMap::new();
    for call in calls {
        if let ApiCall::SetKernelArg { kernel, index, .. } = call {
            *bind_counts.entry((*kernel, *index)).or_insert(0) += 1;
        }
    }
    let is_stable =
        |kernel: KernelId, index: u8| bind_counts.get(&(kernel, index)).copied().unwrap_or(0) <= 1;

    let mut out = Vec::with_capacity(calls.len());
    let mut epoch_groups: Vec<Vec<ApiCall>> = Vec::new();
    let mut pending: Vec<ApiCall> = Vec::new();
    let mut epoch_index = 0u64;

    let flush_epoch = |groups: &mut Vec<Vec<ApiCall>>, out: &mut Vec<ApiCall>, epoch_index: u64| {
        if groups.len() > 1 {
            let rot = (mix(seed, epoch_index) as usize) % groups.len();
            groups.rotate_left(rot);
        }
        for g in groups.drain(..) {
            out.extend(g);
        }
    };

    for call in calls {
        match call {
            ApiCall::SetKernelArg { kernel, index, .. } => {
                if is_stable(*kernel, *index) {
                    // One-time binding: global state, pins the order.
                    epoch_groups.push(std::mem::take(&mut pending));
                    flush_epoch(&mut epoch_groups, &mut out, epoch_index);
                    out.push(call.clone());
                } else {
                    pending.push(call.clone());
                }
            }
            ApiCall::EnqueueWriteBuffer { .. } => {
                // Buffer uploads travel with the launch group they
                // precede; in-order completion is only guaranteed at
                // synchronization calls.
                pending.push(call.clone());
            }
            ApiCall::EnqueueNDRangeKernel { kernel, .. } => {
                // A group may only move if every argument binding it
                // carries targets the launched kernel — otherwise the
                // launch depends on (or the group re-binds) state
                // other launches observe, and order is pinned.
                let self_contained = !pending.is_empty()
                    && pending.iter().all(|c| match c {
                        ApiCall::SetKernelArg { kernel: k, .. } => k == kernel,
                        _ => true,
                    });
                if self_contained {
                    pending.push(call.clone());
                    epoch_groups.push(std::mem::take(&mut pending));
                } else {
                    epoch_groups.push(std::mem::take(&mut pending));
                    flush_epoch(&mut epoch_groups, &mut out, epoch_index);
                    out.push(call.clone());
                }
            }
            ApiCall::Sync(_) => {
                // Arg-only tails stay put, then the sync closes the epoch.
                epoch_groups.push(std::mem::take(&mut pending));
                flush_epoch(&mut epoch_groups, &mut out, epoch_index);
                epoch_index += 1;
                out.push(call.clone());
            }
            _ => {
                // Non-launch, non-sync calls act as barriers for
                // reordering (program setup/cleanup order is fixed).
                epoch_groups.push(std::mem::take(&mut pending));
                flush_epoch(&mut epoch_groups, &mut out, epoch_index);
                out.push(call.clone());
            }
        }
    }
    epoch_groups.push(std::mem::take(&mut pending));
    flush_epoch(&mut epoch_groups, &mut out, epoch_index);
    out
}

fn mix(seed: u64, x: u64) -> u64 {
    let mut v = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 33;
    v = v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    v ^= v >> 33;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SyncCall;
    use crate::device::test_support::FakeDevice;
    use crate::host::{HostScriptBuilder, ProgramSource};
    use crate::ir::KernelIr;

    fn two_kernel_program(launches_per_epoch: usize, epochs: usize) -> HostProgram {
        let source = ProgramSource {
            kernels: vec![KernelIr::new("a", 1), KernelIr::new("b", 1)],
        };
        let mut b = HostScriptBuilder::new("app", source);
        for _ in 0..epochs {
            for i in 0..launches_per_epoch {
                let k = KernelId((i % 2) as u32);
                b.set_arg(k, 0, ArgValue::Scalar(i as u64));
                b.launch(k, 64 * (i as u64 + 1));
            }
            b.sync(SyncCall::Finish);
        }
        b.finish().unwrap()
    }

    #[test]
    fn replay_executes_script_order() {
        let p = two_kernel_program(4, 2);
        let mut rt = OclRuntime::new(FakeDevice::default());
        let report = rt.run(&p, Schedule::Replay).unwrap();
        assert_eq!(report.resolved_calls, p.calls);
        assert_eq!(report.cofluent.invocations.len(), 8);
        assert_eq!(report.cofluent.num_sync_epochs, 2);
    }

    #[test]
    fn natural_schedule_preserves_per_launch_arguments() {
        let p = two_kernel_program(5, 3);
        let mut rt = OclRuntime::new(FakeDevice::default());
        let natural = rt.run(&p, Schedule::Natural { seed: 7 }).unwrap();
        let mut rt2 = OclRuntime::new(FakeDevice::default());
        let replay = rt2.run(&p, Schedule::Replay).unwrap();

        // Same multiset of (kernel, args, gws) launches...
        let key = |i: &InvocationTiming| (i.kernel, i.args.clone(), i.global_work_size);
        let mut a: Vec<_> = natural.cofluent.invocations.iter().map(key).collect();
        let mut b: Vec<_> = replay.cofluent.invocations.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "scheduling never separates a launch from its arguments"
        );
    }

    #[test]
    fn natural_schedule_actually_reorders_some_seed() {
        let p = two_kernel_program(6, 2);
        let mut reordered = false;
        for seed in 0..16 {
            let mut rt = OclRuntime::new(FakeDevice::default());
            let natural = rt.run(&p, Schedule::Natural { seed }).unwrap();
            if natural.resolved_calls != p.calls {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "at least one seed perturbs the order");
    }

    #[test]
    fn natural_schedule_is_deterministic_per_seed() {
        let p = two_kernel_program(6, 2);
        let run = |seed| {
            let mut rt = OclRuntime::new(FakeDevice::default());
            rt.run(&p, Schedule::Natural { seed })
                .unwrap()
                .resolved_calls
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn missing_argument_is_a_device_error() {
        let source = ProgramSource {
            kernels: vec![KernelIr::new("a", 2)],
        };
        let mut b = HostScriptBuilder::new("app", source);
        b.set_arg(KernelId(0), 0, ArgValue::Scalar(1));
        b.launch(KernelId(0), 64);
        let p = b.finish().unwrap();
        let mut rt = OclRuntime::new(FakeDevice::default());
        let err = rt.run(&p, Schedule::Replay).unwrap_err();
        assert_eq!(
            err,
            RunError::Device(DeviceError::MissingArg {
                kernel: KernelId(0),
                index: 1
            })
        );
    }

    #[test]
    fn kind_counts_sum_to_total() {
        let p = two_kernel_program(3, 2);
        let mut rt = OclRuntime::new(FakeDevice::default());
        let r = rt.run(&p, Schedule::Replay).unwrap().cofluent;
        assert_eq!(r.kind_counts.iter().sum::<u64>(), r.total_api_calls);
        assert_eq!(r.kind_counts[0], 6, "six kernel launches");
        assert_eq!(r.kind_counts[1], 2, "two syncs");
    }

    #[test]
    fn one_time_bindings_always_precede_every_launch() {
        // A buffer argument bound once must stay ahead of all
        // launches under every natural schedule — moving it would
        // leave earlier launches without the binding.
        let source = ProgramSource {
            kernels: vec![KernelIr::new("a", 2)],
        };
        let mut b = HostScriptBuilder::new("app", source);
        b.set_arg(KernelId(0), 1, ArgValue::Buffer(7)); // stable: bound once
        for i in 0..6u64 {
            b.set_arg(KernelId(0), 0, ArgValue::Scalar(i)); // volatile
            b.launch(KernelId(0), 64);
        }
        b.sync(SyncCall::Finish);
        let p = b.finish().unwrap();

        for seed in 0..24 {
            let mut rt = OclRuntime::new(FakeDevice::default());
            let report = rt.run(&p, Schedule::Natural { seed }).unwrap();
            let stable_pos = report
                .resolved_calls
                .iter()
                .position(|c| matches!(c, ApiCall::SetKernelArg { index: 1, .. }))
                .expect("stable binding present");
            let first_launch = report
                .resolved_calls
                .iter()
                .position(|c| matches!(c, ApiCall::EnqueueNDRangeKernel { .. }))
                .expect("launches present");
            assert!(
                stable_pos < first_launch,
                "seed {seed}: stable binding at {stable_pos} must precede launch at {first_launch}"
            );
            // And every launch sees its buffer argument bound.
            for (_, args, _) in &rt.device().launches {
                assert_eq!(args.len(), 2, "both arguments bound at execution");
            }
        }
    }

    #[test]
    fn trailing_unsynced_work_counts_as_an_epoch() {
        let source = ProgramSource {
            kernels: vec![KernelIr::new("a", 0)],
        };
        let mut b = HostScriptBuilder::new("app", source);
        b.launch(KernelId(0), 64);
        let p = b.finish().unwrap();
        let mut rt = OclRuntime::new(FakeDevice::default());
        let r = rt.run(&p, Schedule::Replay).unwrap().cofluent;
        assert_eq!(r.num_sync_epochs, 1);
    }
}
