//! The OpenCL API-call vocabulary and its three-way classification
//! (kernel / synchronization / other) used in Figure 3a of the paper.

use serde::{Deserialize, Serialize};

/// Index of a kernel within a program's source (the order kernels
/// appear in [`ProgramSource`](crate::host::ProgramSource)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KernelId(pub u32);

impl KernelId {
    /// The kernel's index in its program source.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel#{}", self.0)
    }
}

/// The seven OpenCL synchronization calls listed in Section II —
/// the only points where host and device work are guaranteed to
/// align, and therefore the natural boundaries for starting and
/// stopping device simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SyncCall {
    /// `clFinish`
    Finish,
    /// `clEnqueueCopyImageToBuffer`
    EnqueueCopyImageToBuffer,
    /// `clWaitForEvents`
    WaitForEvents,
    /// `clFlush`
    Flush,
    /// `clEnqueueReadImage`
    EnqueueReadImage,
    /// `clEnqueueCopyBuffer`
    EnqueueCopyBuffer,
    /// `clEnqueueReadBuffer`
    EnqueueReadBuffer,
}

impl SyncCall {
    /// All seven synchronization calls.
    pub const ALL: [SyncCall; 7] = [
        SyncCall::Finish,
        SyncCall::EnqueueCopyImageToBuffer,
        SyncCall::WaitForEvents,
        SyncCall::Flush,
        SyncCall::EnqueueReadImage,
        SyncCall::EnqueueCopyBuffer,
        SyncCall::EnqueueReadBuffer,
    ];

    /// The OpenCL API name.
    pub fn name(self) -> &'static str {
        match self {
            SyncCall::Finish => "clFinish",
            SyncCall::EnqueueCopyImageToBuffer => "clEnqueueCopyImageToBuffer",
            SyncCall::WaitForEvents => "clWaitForEvents",
            SyncCall::Flush => "clFlush",
            SyncCall::EnqueueReadImage => "clEnqueueReadImage",
            SyncCall::EnqueueCopyBuffer => "clEnqueueCopyBuffer",
            SyncCall::EnqueueReadBuffer => "clEnqueueReadBuffer",
        }
    }
}

/// A value passed to `clSetKernelArg`.
///
/// Argument values participate in the KN-ARGS feature vectors of
/// Table III, so they must be hashable and comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArgValue {
    /// A scalar argument (sizes, counts, thresholds).
    Scalar(u64),
    /// A memory-object argument, by buffer index.
    Buffer(u32),
}

impl ArgValue {
    /// A stable 64-bit digest of the value, used as a feature-vector
    /// key component.
    pub fn digest(self) -> u64 {
        match self {
            ArgValue::Scalar(v) => v.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5bd1,
            ArgValue::Buffer(b) => (b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ 0xb0f,
        }
    }
}

/// One OpenCL API call made by the host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiCall {
    /// `clGetPlatformIDs`
    GetPlatformIds,
    /// `clGetDeviceIDs`
    GetDeviceIds,
    /// `clCreateContext`
    CreateContext,
    /// `clCreateCommandQueue`
    CreateCommandQueue,
    /// `clCreateProgramWithSource`
    CreateProgramWithSource,
    /// `clBuildProgram` — triggers the driver JIT (and, when GT-Pin is
    /// attached, the binary rewriter).
    BuildProgram,
    /// `clCreateKernel`
    CreateKernel {
        /// Which kernel in the program source.
        kernel: KernelId,
    },
    /// `clCreateBuffer`
    CreateBuffer {
        /// Buffer index.
        buffer: u32,
        /// Allocation size.
        bytes: u64,
    },
    /// `clEnqueueWriteBuffer` (host-to-device transfer; *not* one of
    /// the seven synchronization calls).
    EnqueueWriteBuffer {
        /// Target buffer.
        buffer: u32,
        /// Bytes transferred.
        bytes: u64,
    },
    /// `clSetKernelArg`
    SetKernelArg {
        /// Kernel whose argument is set.
        kernel: KernelId,
        /// Argument slot.
        index: u8,
        /// The value.
        value: ArgValue,
    },
    /// `clEnqueueNDRangeKernel` — dispatches a kernel to the device.
    /// The paper's unit of GPU work (Section II).
    EnqueueNDRangeKernel {
        /// Kernel to launch.
        kernel: KernelId,
        /// Total work items (the paper's *global work size*).
        global_work_size: u64,
    },
    /// One of the seven synchronization calls.
    Sync(SyncCall),
    /// `clReleaseMemObject`
    ReleaseMemObject {
        /// Buffer released.
        buffer: u32,
    },
    /// `clReleaseKernel`
    ReleaseKernel {
        /// Kernel released.
        kernel: KernelId,
    },
    /// `clReleaseProgram`
    ReleaseProgram,
    /// `clReleaseContext`
    ReleaseContext,
}

/// Figure 3a's three-way API-call classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ApiCallKind {
    /// Kernel invocations (`clEnqueueNDRangeKernel`).
    Kernel,
    /// The seven synchronization calls.
    Synchronization,
    /// Everything else: setup, argument supply, post-processing,
    /// cleanup.
    Other,
}

impl ApiCallKind {
    /// All kinds in the paper's reporting order.
    pub const ALL: [ApiCallKind; 3] = [
        ApiCallKind::Kernel,
        ApiCallKind::Synchronization,
        ApiCallKind::Other,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            ApiCallKind::Kernel => "kernel",
            ApiCallKind::Synchronization => "synchronization",
            ApiCallKind::Other => "other",
        }
    }
}

impl ApiCall {
    /// Classify the call for Figure 3a.
    pub fn kind(&self) -> ApiCallKind {
        match self {
            ApiCall::EnqueueNDRangeKernel { .. } => ApiCallKind::Kernel,
            ApiCall::Sync(_) => ApiCallKind::Synchronization,
            _ => ApiCallKind::Other,
        }
    }

    /// The OpenCL API name of this call.
    pub fn name(&self) -> &'static str {
        match self {
            ApiCall::GetPlatformIds => "clGetPlatformIDs",
            ApiCall::GetDeviceIds => "clGetDeviceIDs",
            ApiCall::CreateContext => "clCreateContext",
            ApiCall::CreateCommandQueue => "clCreateCommandQueue",
            ApiCall::CreateProgramWithSource => "clCreateProgramWithSource",
            ApiCall::BuildProgram => "clBuildProgram",
            ApiCall::CreateKernel { .. } => "clCreateKernel",
            ApiCall::CreateBuffer { .. } => "clCreateBuffer",
            ApiCall::EnqueueWriteBuffer { .. } => "clEnqueueWriteBuffer",
            ApiCall::SetKernelArg { .. } => "clSetKernelArg",
            ApiCall::EnqueueNDRangeKernel { .. } => "clEnqueueNDRangeKernel",
            ApiCall::Sync(s) => s.name(),
            ApiCall::ReleaseMemObject { .. } => "clReleaseMemObject",
            ApiCall::ReleaseKernel { .. } => "clReleaseKernel",
            ApiCall::ReleaseProgram => "clReleaseProgram",
            ApiCall::ReleaseContext => "clReleaseContext",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_seven_sync_calls() {
        assert_eq!(SyncCall::ALL.len(), 7);
        let mut names: Vec<&str> = SyncCall::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7, "sync call names are distinct");
    }

    #[test]
    fn classification_matches_the_paper() {
        assert_eq!(
            ApiCall::EnqueueNDRangeKernel {
                kernel: KernelId(0),
                global_work_size: 1024
            }
            .kind(),
            ApiCallKind::Kernel
        );
        for s in SyncCall::ALL {
            assert_eq!(ApiCall::Sync(s).kind(), ApiCallKind::Synchronization);
        }
        assert_eq!(ApiCall::BuildProgram.kind(), ApiCallKind::Other);
        assert_eq!(
            ApiCall::SetKernelArg {
                kernel: KernelId(0),
                index: 0,
                value: ArgValue::Scalar(1)
            }
            .kind(),
            ApiCallKind::Other
        );
        assert_eq!(
            ApiCall::EnqueueWriteBuffer {
                buffer: 0,
                bytes: 64
            }
            .kind(),
            ApiCallKind::Other,
            "write-buffer is not one of the seven synchronization calls"
        );
    }

    #[test]
    fn arg_digests_differ_between_kinds() {
        assert_ne!(ArgValue::Scalar(1).digest(), ArgValue::Buffer(1).digest());
        assert_ne!(ArgValue::Scalar(1).digest(), ArgValue::Scalar(2).digest());
    }

    #[test]
    fn names_follow_opencl_convention() {
        assert_eq!(ApiCall::BuildProgram.name(), "clBuildProgram");
        assert_eq!(
            ApiCall::EnqueueNDRangeKernel {
                kernel: KernelId(0),
                global_work_size: 1
            }
            .name(),
            "clEnqueueNDRangeKernel"
        );
        assert_eq!(
            ApiCall::Sync(SyncCall::EnqueueReadBuffer).name(),
            "clEnqueueReadBuffer"
        );
    }
}
