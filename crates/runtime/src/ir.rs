//! A mid-level kernel IR standing in for OpenCL C kernel source.
//!
//! Workload generators author kernels in this IR; the GPU driver's
//! JIT (in the `gpu-device` crate) lowers it to GEN binaries at
//! `clBuildProgram` time, exactly where GT-Pin's binary rewriter
//! intercepts in Figure 1 of the paper.
//!
//! The IR deliberately exposes the knobs the paper's characterization
//! measures: instruction mixes per category (Figure 4a), SIMD widths
//! (Figure 4b), memory traffic (Figure 4c), loop/branch structure
//! (basic-block counts, Figure 3b), and *argument-dependent* dynamic
//! behaviour — trip counts and branches driven by kernel arguments —
//! which is what gives programs the phases that subset selection
//! exploits.

use gen_isa::ExecSize;
use serde::{Deserialize, Serialize};

/// How a loop's trip count is determined at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TripCount {
    /// A compile-time constant.
    Const(u32),
    /// The value of kernel argument `arg` (scalar).
    Arg(u8),
    /// `arg >> shift`, for scaling large arguments down.
    ArgShifted {
        /// Scalar argument index.
        arg: u8,
        /// Right shift applied.
        shift: u8,
    },
}

/// Memory access pattern of a load/store, which drives the cache
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive addresses across iterations.
    Linear,
    /// A fixed stride in bytes between accesses.
    Strided(u32),
    /// Pseudo-random addresses (hash of the iteration index).
    Gather,
}

/// One IR statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrOp {
    /// Open a loop; must be matched by [`IrOp::LoopEnd`].
    LoopBegin {
        /// Trip count source.
        trip: TripCount,
    },
    /// Close the innermost open loop.
    LoopEnd,
    /// `ops` arithmetic instructions at the given width.
    Compute {
        /// Number of instructions.
        ops: u16,
        /// SIMD width.
        width: ExecSize,
    },
    /// `ops` transcendental math instructions (higher latency).
    MathCompute {
        /// Number of instructions.
        ops: u16,
        /// SIMD width.
        width: ExecSize,
    },
    /// `ops` logic instructions.
    Logic {
        /// Number of instructions.
        ops: u16,
        /// SIMD width.
        width: ExecSize,
    },
    /// `ops` move instructions.
    Move {
        /// Number of instructions.
        ops: u16,
        /// SIMD width.
        width: ExecSize,
    },
    /// Read from the buffer bound to argument `arg`.
    Load {
        /// Buffer argument index.
        arg: u8,
        /// Bytes read per execution of the instruction.
        bytes: u32,
        /// SIMD width.
        width: ExecSize,
        /// Address pattern.
        pattern: AccessPattern,
    },
    /// Write to the buffer bound to argument `arg`.
    Store {
        /// Buffer argument index.
        arg: u8,
        /// Bytes written per execution of the instruction.
        bytes: u32,
        /// SIMD width.
        width: ExecSize,
        /// Address pattern.
        pattern: AccessPattern,
    },
    /// Open a branch taken only when scalar argument `arg` is below
    /// `value`; must be matched by [`IrOp::EndIf`]. Creates extra
    /// basic blocks and argument-dependent dynamic behaviour.
    IfArgLt {
        /// Scalar argument index.
        arg: u8,
        /// Threshold.
        value: u32,
    },
    /// Close the innermost open `IfArgLt`.
    EndIf,
}

/// A kernel in IR form: the "source" the host program carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelIr {
    /// Kernel function name.
    pub name: String,
    /// Number of arguments the kernel declares.
    pub num_args: u8,
    /// Statement list.
    pub body: Vec<IrOp>,
}

/// Structural problems in a kernel IR body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// `LoopEnd`/`EndIf` without a matching opener.
    UnmatchedClose { position: usize },
    /// `LoopBegin`/`IfArgLt` without a matching closer.
    UnclosedRegion { position: usize },
    /// An argument index at or past `num_args`.
    BadArgIndex { position: usize, arg: u8 },
    /// Nesting deeper than the JIT supports.
    TooDeep { position: usize },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UnmatchedClose { position } => {
                write!(f, "unmatched close at statement {position}")
            }
            IrError::UnclosedRegion { position } => {
                write!(f, "unclosed loop or if opened at statement {position}")
            }
            IrError::BadArgIndex { position, arg } => {
                write!(
                    f,
                    "statement {position} references argument {arg} past num_args"
                )
            }
            IrError::TooDeep { position } => {
                write!(f, "nesting too deep at statement {position}")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// Maximum loop/if nesting depth the JIT lowers.
pub const MAX_NESTING: usize = 8;

impl KernelIr {
    /// A new kernel IR with the given name and argument count.
    pub fn new(name: impl Into<String>, num_args: u8) -> KernelIr {
        KernelIr {
            name: name.into(),
            num_args,
            body: Vec::new(),
        }
    }

    /// Validate structural well-formedness (matched loops/ifs,
    /// argument indices in range, bounded nesting).
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] found.
    pub fn check(&self) -> Result<(), IrError> {
        let mut stack: Vec<usize> = Vec::new();
        for (i, op) in self.body.iter().enumerate() {
            let arg_used = match *op {
                IrOp::LoopBegin {
                    trip: TripCount::Arg(a),
                }
                | IrOp::LoopBegin {
                    trip: TripCount::ArgShifted { arg: a, .. },
                } => Some(a),
                IrOp::Load { arg, .. } | IrOp::Store { arg, .. } => Some(arg),
                IrOp::IfArgLt { arg, .. } => Some(arg),
                _ => None,
            };
            if let Some(a) = arg_used {
                if a >= self.num_args {
                    return Err(IrError::BadArgIndex {
                        position: i,
                        arg: a,
                    });
                }
            }
            match op {
                IrOp::LoopBegin { .. } | IrOp::IfArgLt { .. } => {
                    stack.push(i);
                    if stack.len() > MAX_NESTING {
                        return Err(IrError::TooDeep { position: i });
                    }
                }
                IrOp::LoopEnd | IrOp::EndIf if stack.pop().is_none() => {
                    return Err(IrError::UnmatchedClose { position: i });
                }
                _ => {}
            }
        }
        if let Some(&open) = stack.first() {
            return Err(IrError::UnclosedRegion { position: open });
        }
        Ok(())
    }

    /// Rough static size in IR statements (used by tests and reports).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(ops: u16) -> IrOp {
        IrOp::Compute {
            ops,
            width: ExecSize::S16,
        }
    }

    #[test]
    fn well_formed_nested_ir_passes() {
        let mut k = KernelIr::new("k", 2);
        k.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            compute(4),
            IrOp::IfArgLt { arg: 1, value: 10 },
            compute(2),
            IrOp::EndIf,
            IrOp::LoopEnd,
        ];
        assert_eq!(k.check(), Ok(()));
    }

    #[test]
    fn unmatched_close_detected() {
        let mut k = KernelIr::new("k", 1);
        k.body = vec![IrOp::LoopEnd];
        assert_eq!(k.check(), Err(IrError::UnmatchedClose { position: 0 }));
    }

    #[test]
    fn unclosed_loop_detected() {
        let mut k = KernelIr::new("k", 1);
        k.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Const(4),
            },
            compute(1),
        ];
        assert_eq!(k.check(), Err(IrError::UnclosedRegion { position: 0 }));
    }

    #[test]
    fn bad_arg_index_detected() {
        let mut k = KernelIr::new("k", 1);
        k.body = vec![IrOp::Load {
            arg: 3,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        }];
        assert_eq!(
            k.check(),
            Err(IrError::BadArgIndex {
                position: 0,
                arg: 3
            })
        );
    }

    #[test]
    fn excessive_nesting_detected() {
        let mut k = KernelIr::new("k", 0);
        for _ in 0..=MAX_NESTING {
            k.body.push(IrOp::LoopBegin {
                trip: TripCount::Const(2),
            });
        }
        for _ in 0..=MAX_NESTING {
            k.body.push(IrOp::LoopEnd);
        }
        assert!(matches!(k.check(), Err(IrError::TooDeep { .. })));
    }
}
