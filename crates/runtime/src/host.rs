//! Host programs: the CPU side of an OpenCL application.

use serde::{Deserialize, Serialize};

use crate::api::{ApiCall, KernelId};
use crate::ir::{IrError, KernelIr};

/// The kernel sources of one OpenCL program (what
/// `clCreateProgramWithSource` receives).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramSource {
    /// Kernels in declaration order; [`KernelId`] indexes this list.
    pub kernels: Vec<KernelIr>,
}

impl ProgramSource {
    /// Look up a kernel by id.
    pub fn kernel(&self, id: KernelId) -> Option<&KernelIr> {
        self.kernels.get(id.index())
    }

    /// Look up a kernel id by name.
    pub fn kernel_id(&self, name: &str) -> Option<KernelId> {
        self.kernels
            .iter()
            .position(|k| k.name == name)
            .map(|i| KernelId(i as u32))
    }

    /// Validate every kernel's IR.
    ///
    /// # Errors
    ///
    /// Returns the first kernel name and [`IrError`] found.
    pub fn check(&self) -> Result<(), (String, IrError)> {
        for k in &self.kernels {
            k.check().map_err(|e| (k.name.clone(), e))?;
        }
        Ok(())
    }
}

/// A complete host program: kernel sources plus the deterministic
/// script of API calls the host makes.
///
/// Real hosts compute the call sequence at run time; our workloads
/// pre-generate it, which is what CoFluent's *record* step produces
/// anyway (Section V-E of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProgram {
    /// Application name (e.g. `cb-physics-ocean-surf`).
    pub name: String,
    /// Kernel sources.
    pub source: ProgramSource,
    /// The API-call script.
    pub calls: Vec<ApiCall>,
}

impl HostProgram {
    /// A new, empty host program.
    pub fn new(name: impl Into<String>) -> HostProgram {
        HostProgram {
            name: name.into(),
            source: ProgramSource::default(),
            calls: Vec::new(),
        }
    }

    /// Number of kernel invocations (`clEnqueueNDRangeKernel` calls)
    /// in the script.
    pub fn num_invocations(&self) -> usize {
        self.calls
            .iter()
            .filter(|c| matches!(c, ApiCall::EnqueueNDRangeKernel { .. }))
            .count()
    }

    /// Number of synchronization calls in the script.
    pub fn num_sync_calls(&self) -> usize {
        self.calls
            .iter()
            .filter(|c| matches!(c, ApiCall::Sync(_)))
            .count()
    }

    /// Validate the program: IR well-formedness and kernel-id ranges
    /// in the script.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn check(&self) -> Result<(), String> {
        self.source
            .check()
            .map_err(|(k, e)| format!("kernel {k}: {e}"))?;
        let n = self.source.kernels.len() as u32;
        for (i, call) in self.calls.iter().enumerate() {
            let id = match call {
                ApiCall::CreateKernel { kernel }
                | ApiCall::SetKernelArg { kernel, .. }
                | ApiCall::EnqueueNDRangeKernel { kernel, .. }
                | ApiCall::ReleaseKernel { kernel } => Some(*kernel),
                _ => None,
            };
            if let Some(KernelId(k)) = id {
                if k >= n {
                    return Err(format!("call {i} references kernel#{k}, program has {n}"));
                }
            }
        }
        Ok(())
    }
}

/// Convenience builder for host-program API scripts, used by
/// workload generators and tests.
#[derive(Debug)]
pub struct HostScriptBuilder {
    program: HostProgram,
    args_set: Vec<u8>,
}

impl HostScriptBuilder {
    /// Start a script with the standard setup prologue
    /// (platform/device/context/queue/program creation and build).
    pub fn new(name: impl Into<String>, source: ProgramSource) -> HostScriptBuilder {
        let mut program = HostProgram::new(name);
        let num_kernels = source.kernels.len();
        program.source = source;
        program.calls.extend([
            ApiCall::GetPlatformIds,
            ApiCall::GetDeviceIds,
            ApiCall::CreateContext,
            ApiCall::CreateCommandQueue,
            ApiCall::CreateProgramWithSource,
            ApiCall::BuildProgram,
        ]);
        for k in 0..num_kernels {
            program.calls.push(ApiCall::CreateKernel {
                kernel: KernelId(k as u32),
            });
        }
        HostScriptBuilder {
            args_set: vec![0; num_kernels],
            program,
        }
    }

    /// Append an arbitrary call.
    pub fn call(&mut self, call: ApiCall) -> &mut Self {
        self.program.calls.push(call);
        self
    }

    /// Create a buffer.
    pub fn create_buffer(&mut self, buffer: u32, bytes: u64) -> &mut Self {
        self.call(ApiCall::CreateBuffer { buffer, bytes })
    }

    /// Set one kernel argument.
    pub fn set_arg(
        &mut self,
        kernel: KernelId,
        index: u8,
        value: crate::api::ArgValue,
    ) -> &mut Self {
        if let Some(slot) = self.args_set.get_mut(kernel.index()) {
            *slot = (*slot).max(index + 1);
        }
        self.call(ApiCall::SetKernelArg {
            kernel,
            index,
            value,
        })
    }

    /// Launch a kernel.
    pub fn launch(&mut self, kernel: KernelId, global_work_size: u64) -> &mut Self {
        self.call(ApiCall::EnqueueNDRangeKernel {
            kernel,
            global_work_size,
        })
    }

    /// Emit a synchronization call.
    pub fn sync(&mut self, call: crate::api::SyncCall) -> &mut Self {
        self.call(ApiCall::Sync(call))
    }

    /// Finish with the standard cleanup epilogue and validate.
    ///
    /// # Errors
    ///
    /// Propagates [`HostProgram::check`] failures.
    pub fn finish(mut self) -> Result<HostProgram, String> {
        for k in 0..self.program.source.kernels.len() {
            self.program.calls.push(ApiCall::ReleaseKernel {
                kernel: KernelId(k as u32),
            });
        }
        self.program.calls.push(ApiCall::ReleaseProgram);
        self.program.calls.push(ApiCall::ReleaseContext);
        self.program.check()?;
        Ok(self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ArgValue, SyncCall};
    use crate::ir::KernelIr;

    fn one_kernel_source() -> ProgramSource {
        ProgramSource {
            kernels: vec![KernelIr::new("foo", 2)],
        }
    }

    #[test]
    fn builder_emits_prologue_and_epilogue() {
        let b = HostScriptBuilder::new("app", one_kernel_source());
        let p = b.finish().unwrap();
        assert_eq!(p.calls.first().unwrap().name(), "clGetPlatformIDs");
        assert_eq!(p.calls.last().unwrap().name(), "clReleaseContext");
        assert!(p.calls.iter().any(|c| c.name() == "clBuildProgram"));
        assert!(p.calls.iter().any(|c| c.name() == "clCreateKernel"));
    }

    #[test]
    fn invocation_and_sync_counting() {
        let mut b = HostScriptBuilder::new("app", one_kernel_source());
        b.set_arg(KernelId(0), 0, ArgValue::Scalar(8))
            .launch(KernelId(0), 1024)
            .launch(KernelId(0), 2048)
            .sync(SyncCall::Finish);
        let p = b.finish().unwrap();
        assert_eq!(p.num_invocations(), 2);
        assert_eq!(p.num_sync_calls(), 1);
    }

    #[test]
    fn out_of_range_kernel_id_rejected() {
        let mut b = HostScriptBuilder::new("app", one_kernel_source());
        b.launch(KernelId(5), 64);
        assert!(b.finish().is_err());
    }

    #[test]
    fn kernel_lookup_by_name() {
        let s = one_kernel_source();
        assert_eq!(s.kernel_id("foo"), Some(KernelId(0)));
        assert_eq!(s.kernel_id("bar"), None);
        assert_eq!(s.kernel(KernelId(0)).unwrap().name, "foo");
        assert!(s.kernel(KernelId(9)).is_none());
    }

    #[test]
    fn program_check_propagates_ir_errors() {
        let mut src = one_kernel_source();
        src.kernels[0].body = vec![crate::ir::IrOp::LoopEnd];
        let p = HostScriptBuilder::new("app", src).finish();
        assert!(p.unwrap_err().contains("unmatched close"));
    }
}
