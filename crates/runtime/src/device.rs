//! The device-side interface the runtime dispatches to.

use crate::api::{ArgValue, KernelId, SyncCall};
use crate::host::ProgramSource;

/// Timing of one kernel invocation as the device reports it — the
/// per-kernel timing data CoFluent CPR collects in the paper and the
/// numerator of every seconds-per-instruction computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Wall-clock seconds the invocation took on the device.
    pub seconds: f64,
}

/// Errors a device can report back through the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A kernel was launched before `clBuildProgram`.
    ProgramNotBuilt,
    /// The launched kernel id is not in the built program.
    UnknownKernel { kernel: KernelId },
    /// A kernel argument was never set.
    MissingArg { kernel: KernelId, index: u8 },
    /// JIT compilation failed.
    Jit { kernel: String, detail: String },
    /// The functional executor hit a fault (bad binary, runaway
    /// loop guard, ...).
    Execution { kernel: String, detail: String },
    /// A launch hung past the watchdog on every allowed attempt.
    LaunchTimeout {
        /// The kernel that never completed.
        kernel: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// Virtual nanoseconds spent waiting across all attempts
        /// (deterministic — not wall time).
        waited_virtual_ns: u64,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::ProgramNotBuilt => write!(f, "kernel launched before clBuildProgram"),
            DeviceError::UnknownKernel { kernel } => write!(f, "unknown {kernel}"),
            DeviceError::MissingArg { kernel, index } => {
                write!(f, "{kernel}: argument {index} was never set")
            }
            DeviceError::Jit { kernel, detail } => {
                write!(f, "JIT failed for kernel {kernel}: {detail}")
            }
            DeviceError::Execution { kernel, detail } => {
                write!(f, "execution fault in kernel {kernel}: {detail}")
            }
            DeviceError::LaunchTimeout {
                kernel,
                attempts,
                waited_virtual_ns,
            } => {
                write!(
                    f,
                    "kernel {kernel} timed out after {attempts} attempt(s) \
                     ({waited_virtual_ns} virtual ns waited)"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// An OpenCL device as the runtime sees it. The `gpu-device` crate
/// provides the GPU implementation; tests use lightweight fakes.
pub trait Device {
    /// Human-readable device name (e.g. `Intel HD 4000 (model)`).
    fn device_name(&self) -> String;

    /// JIT-compile a program's kernels (`clBuildProgram`). When a
    /// binary rewriter such as GT-Pin is attached to the driver, it
    /// runs here.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Jit`] when lowering fails.
    fn build_program(&mut self, source: &ProgramSource) -> Result<(), DeviceError>;

    /// Execute one kernel invocation over `global_work_size` work
    /// items with the given argument bindings.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] if the program is not built, the
    /// kernel is unknown, arguments are missing, or execution faults.
    fn launch_kernel(
        &mut self,
        kernel: KernelId,
        args: &[ArgValue],
        global_work_size: u64,
    ) -> Result<KernelTiming, DeviceError>;

    /// Handle one of the seven synchronization calls: drain
    /// outstanding device work and align with the host.
    fn synchronize(&mut self, call: SyncCall);
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A device fake that records launches and charges a fixed time
    /// per work item.
    #[derive(Debug, Default)]
    pub struct FakeDevice {
        pub built: bool,
        pub launches: Vec<(KernelId, Vec<ArgValue>, u64)>,
        pub syncs: Vec<SyncCall>,
        pub num_kernels: usize,
    }

    impl Device for FakeDevice {
        fn device_name(&self) -> String {
            "fake".into()
        }

        fn build_program(&mut self, source: &ProgramSource) -> Result<(), DeviceError> {
            self.built = true;
            self.num_kernels = source.kernels.len();
            Ok(())
        }

        fn launch_kernel(
            &mut self,
            kernel: KernelId,
            args: &[ArgValue],
            global_work_size: u64,
        ) -> Result<KernelTiming, DeviceError> {
            if !self.built {
                return Err(DeviceError::ProgramNotBuilt);
            }
            if kernel.index() >= self.num_kernels {
                return Err(DeviceError::UnknownKernel { kernel });
            }
            self.launches
                .push((kernel, args.to_vec(), global_work_size));
            Ok(KernelTiming {
                seconds: global_work_size as f64 * 1e-9,
            })
        }

        fn synchronize(&mut self, call: SyncCall) {
            self.syncs.push(call);
        }
    }
}
