//! # ocl-runtime
//!
//! A model of the OpenCL host/runtime stack that GT-Pin instruments
//! (Section II and Figure 1 of *Fast Computational GPU Design with
//! GT-Pin*, IISWC 2015).
//!
//! The crate provides:
//!
//! * the host-side [`ApiCall`] vocabulary, including the paper's seven
//!   synchronization calls and `clEnqueueNDRangeKernel` ([`api`]),
//! * a mid-level kernel IR ([`ir`]) standing in for OpenCL C kernel
//!   source — the GPU driver JIT-compiles it to GEN binaries,
//! * [`HostProgram`]s: deterministic scripts of API calls plus kernel
//!   sources ([`host`]),
//! * the [`Device`] trait the runtime dispatches kernel work to
//!   ([`device`]),
//! * the [`OclRuntime`] itself, which executes host programs,
//!   maintains kernel argument state, and tracks synchronization
//!   epochs ([`runtime`]), and
//! * a CoFluent-CPR-style API tracer with deterministic record and
//!   replay and per-kernel-invocation timing reports ([`cofluent`]).
//!
//! # Example
//!
//! ```
//! use ocl_runtime::api::{ApiCall, ApiCallKind, SyncCall};
//!
//! let call = ApiCall::Sync(SyncCall::Finish);
//! assert_eq!(call.kind(), ApiCallKind::Synchronization);
//! assert_eq!(call.name(), "clFinish");
//! ```

pub mod api;
pub mod cofluent;
pub mod device;
pub mod host;
pub mod ir;
pub mod runtime;

pub use api::{ApiCall, ApiCallKind, ArgValue, KernelId, SyncCall};
pub use cofluent::{ApiTracer, CofluentReport, InvocationTiming, Recording};
pub use device::{Device, DeviceError, KernelTiming};
pub use host::{HostProgram, ProgramSource};
pub use ir::{AccessPattern, IrOp, KernelIr, TripCount};
pub use runtime::{OclRuntime, RunError, RunReport, Schedule};
