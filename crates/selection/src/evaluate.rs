//! Evaluating one (interval scheme, feature kind) configuration:
//! run SimPoint, project whole-program SPI from the selections, and
//! score the projection with Equation 1 of the paper.

use serde::{Deserialize, Serialize};
use simpoint::{select, select_filtered, SelectError, Selection, SimpointConfig};

use crate::data::AppData;
use crate::features::FeatureKind;
use crate::interval::{Interval, IntervalScheme, SchemeTable};

/// One point of the 30-configuration space (3 interval schemes ×
/// 10 feature kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// How the trace is divided.
    pub interval: IntervalScheme,
    /// How intervals are summarized.
    pub features: FeatureKind,
}

impl std::fmt::Display for SelectionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.interval, self.features)
    }
}

/// The full 30-configuration space, with `approx_target` standing in
/// for the paper's ~100M-instruction medium division (scaled to our
/// workload sizes).
pub fn all_configs(approx_target: u64) -> Vec<SelectionConfig> {
    let schemes = [
        IntervalScheme::SyncBounded,
        IntervalScheme::ApproxInstructions(approx_target),
        IntervalScheme::SingleKernel,
    ];
    let mut out = Vec::with_capacity(30);
    for scheme in schemes {
        for features in FeatureKind::ALL {
            out.push(SelectionConfig {
                interval: scheme,
                features,
            });
        }
    }
    out
}

/// A scored selection for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The configuration evaluated.
    pub config: SelectionConfig,
    /// The intervals the trace was divided into.
    pub intervals: Vec<Interval>,
    /// SimPoint's picks and ratios.
    pub selection: Selection,
    /// Whole-program measured SPI.
    pub measured_spi: f64,
    /// SPI projected from the selected intervals (Section V-B).
    pub projected_spi: f64,
    /// Equation 1 error, in percent.
    pub error_pct: f64,
    /// Dynamic instructions inside the selected intervals.
    pub selected_instructions: u64,
    /// Dynamic instructions in the whole program.
    pub total_instructions: u64,
}

impl Evaluation {
    /// Fraction of program instructions that must be simulated.
    pub fn selection_fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            return 0.0;
        }
        self.selected_instructions as f64 / self.total_instructions as f64
    }

    /// Simulation speedup from skipping unselected instructions
    /// (the paper's headline metric: total ÷ selected).
    pub fn speedup(&self) -> f64 {
        if self.selected_instructions == 0 {
            return f64::INFINITY;
        }
        self.total_instructions as f64 / self.selected_instructions as f64
    }
}

/// Project whole-program SPI from a selection: Σ ratio × interval
/// SPI (step 7 of Section V-A).
pub fn projected_spi(data: &AppData, intervals: &[Interval], selection: &Selection) -> f64 {
    selection
        .picks
        .iter()
        .map(|p| p.ratio * intervals[p.interval].spi(data))
        .sum()
}

/// Equation 1: `|measured − projected| / measured × 100`.
pub fn error_pct(measured_spi: f64, projected_spi: f64) -> f64 {
    if measured_spi == 0.0 {
        return 0.0;
    }
    (measured_spi - projected_spi).abs() / measured_spi * 100.0
}

/// Evaluate one configuration over one application dataset.
///
/// # Example
///
/// ```no_run
/// use gpu_device::GpuConfig;
/// use simpoint::SimpointConfig;
/// use subset_select::{evaluate_config, profile_app, FeatureKind, IntervalScheme, SelectionConfig};
/// use workloads::{build_program, spec_by_name, Scale};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = spec_by_name("cb-gaussian-image").expect("known app");
/// let program = build_program(&spec, Scale::Test);
/// let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
/// let e = evaluate_config(
///     &profiled.data,
///     SelectionConfig { interval: IntervalScheme::SyncBounded, features: FeatureKind::Bb },
///     &SimpointConfig::default(),
/// )?;
/// println!("{}: {:.2}% error at {:.1}x speedup", e.config, e.error_pct, e.speedup());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates [`SelectError`] when the trace yields no usable
/// intervals.
pub fn evaluate_config(
    data: &AppData,
    config: SelectionConfig,
    simpoint_config: &SimpointConfig,
) -> Result<Evaluation, SelectError> {
    evaluate_config_weighted(
        data,
        config,
        simpoint_config,
        crate::features::FeatureWeighting::InstructionWeighted,
    )
}

/// Evaluate one configuration with an explicit feature-weighting
/// policy (the weighting ablation).
///
/// # Errors
///
/// Propagates [`SelectError`] when the trace yields no usable
/// intervals.
pub fn evaluate_config_weighted(
    data: &AppData,
    config: SelectionConfig,
    simpoint_config: &SimpointConfig,
    weighting: crate::features::FeatureWeighting,
) -> Result<Evaluation, SelectError> {
    let table = SchemeTable::build(data, config.interval);
    evaluate_config_with_table(data, config, &table, simpoint_config, weighting)
}

/// Evaluate one configuration against a pre-built [`SchemeTable`],
/// reusing its interval division and per-interval base profiles.
///
/// This is the memoized core `Exploration::run` fans out over: the
/// 3 tables are built once and shared by the 10 feature kinds each,
/// so 30 evaluations cost 3 trace divisions instead of 30. Results
/// are bitwise identical to [`evaluate_config_weighted`] because the
/// table accumulates its sums in the same order the direct path does.
///
/// # Panics
///
/// Debug-asserts that `table` was built under `config.interval`.
///
/// # Errors
///
/// Propagates [`SelectError`] when the trace yields no usable
/// intervals.
pub fn evaluate_config_with_table(
    data: &AppData,
    config: SelectionConfig,
    table: &SchemeTable,
    simpoint_config: &SimpointConfig,
    weighting: crate::features::FeatureWeighting,
) -> Result<Evaluation, SelectError> {
    debug_assert_eq!(
        config.interval, table.scheme,
        "table built under a different scheme"
    );
    let mut span = gtpin_obs::span("selection.evaluate");
    if span.active() {
        span.arg_str("config", config.to_string());
        span.arg_u64("intervals", table.intervals.len() as u64);
    }
    let vectors = crate::features::feature_vectors_weighted(
        data,
        &table.intervals,
        config.features,
        weighting,
    );
    // Quarantined intervals (degraded traces) are excluded from
    // clustering and the remaining weights renormalized; healthy runs
    // have an all-false mask and take the bitwise-identical unfiltered
    // path inside `select_filtered`.
    let selection = if table.has_quarantined() {
        select_filtered(
            &vectors,
            table.weights(),
            table.quarantine_mask(),
            simpoint_config,
        )?
    } else {
        select(&vectors, table.weights(), simpoint_config)?
    };

    let measured = data.measured_spi();
    let projected: f64 = selection
        .picks
        .iter()
        .map(|p| p.ratio * table.spi(p.interval))
        .sum();
    let selected_instructions: u64 = selection
        .picks
        .iter()
        .map(|p| table.instructions(p.interval))
        .sum();

    if span.active() {
        span.arg_u64("k", selection.k as u64);
        span.arg_f64("error_pct", error_pct(measured, projected));
    }
    Ok(Evaluation {
        config,
        selection,
        measured_spi: measured,
        projected_spi: projected,
        error_pct: error_pct(measured, projected),
        selected_instructions,
        total_instructions: data.total_instructions(),
        intervals: table.intervals.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::test_support::synthetic_app;

    fn spcfg() -> SimpointConfig {
        SimpointConfig::default()
    }

    #[test]
    fn thirty_configurations() {
        let configs = all_configs(100_000);
        assert_eq!(configs.len(), 30);
        let unique: std::collections::HashSet<String> =
            configs.iter().map(|c| c.to_string()).collect();
        assert_eq!(unique.len(), 30);
    }

    #[test]
    fn projection_is_exact_when_every_interval_is_selected() {
        let d = synthetic_app(2, 2); // 4 invocations
        let cfg = SelectionConfig {
            interval: IntervalScheme::SingleKernel,
            features: FeatureKind::KnArgs,
        };
        // Force one cluster per interval.
        let sp = SimpointConfig {
            max_k: 16,
            bic_fraction: 1.0,
            ..spcfg()
        };
        let e = evaluate_config(&d, cfg, &sp).unwrap();
        if e.selection.k == e.intervals.len() {
            assert!(
                e.error_pct < 1e-9,
                "full selection projects exactly: {}",
                e.error_pct
            );
        }
        // Regardless of k, the weighted-mean identity bounds sanity:
        assert!(e.projected_spi > 0.0);
    }

    #[test]
    fn identical_phases_give_tiny_error_with_few_picks() {
        let d = synthetic_app(6, 4);
        let cfg = SelectionConfig {
            interval: IntervalScheme::SyncBounded,
            features: FeatureKind::Bb,
        };
        let e = evaluate_config(&d, cfg, &spcfg()).unwrap();
        // All epochs are the same mix, so one or two clusters suffice
        // and projection is near-exact.
        assert!(e.selection.k <= 3, "k = {}", e.selection.k);
        assert!(e.error_pct < 1.0, "error {}%", e.error_pct);
        assert!(e.speedup() > 1.0);
    }

    #[test]
    fn kernel_features_distinguish_the_two_kernels_at_single_granularity() {
        let d = synthetic_app(3, 6);
        let cfg = SelectionConfig {
            interval: IntervalScheme::SingleKernel,
            features: FeatureKind::Kn,
        };
        let e = evaluate_config(&d, cfg, &spcfg()).unwrap();
        assert!(e.selection.k >= 2, "two kernels → at least two clusters");
        assert!(e.error_pct < 5.0, "error {}%", e.error_pct);
    }

    #[test]
    fn selection_fraction_and_speedup_are_reciprocal() {
        let d = synthetic_app(4, 6);
        let cfg = SelectionConfig {
            interval: IntervalScheme::SingleKernel,
            features: FeatureKind::Bb,
        };
        let e = evaluate_config(&d, cfg, &spcfg()).unwrap();
        assert!((e.selection_fraction() * e.speedup() - 1.0).abs() < 1e-9);
        assert!(e.selected_instructions <= e.total_instructions);
    }

    #[test]
    fn quarantined_intervals_are_skipped_and_ratios_renormalize() {
        let mut d = synthetic_app(4, 4);
        d.invocations[0].quarantined_records = 3;
        d.invocations[5].dropped_records = 1;
        let cfg = SelectionConfig {
            interval: IntervalScheme::SingleKernel,
            features: FeatureKind::Bb,
        };
        let e = evaluate_config(&d, cfg, &spcfg()).unwrap();
        assert!(
            e.selection
                .picks
                .iter()
                .all(|p| p.interval != 0 && p.interval != 5),
            "degraded intervals never picked as representatives"
        );
        assert!(
            (e.selection.total_ratio() - 1.0).abs() < 1e-9,
            "Eq. 1 weights renormalize over healthy intervals"
        );
    }

    #[test]
    fn error_pct_formula() {
        assert_eq!(error_pct(2.0, 2.0), 0.0);
        assert!((error_pct(2.0, 1.0) - 50.0).abs() < 1e-12);
        assert!((error_pct(2.0, 3.0) - 50.0).abs() < 1e-12, "absolute value");
        assert_eq!(error_pct(0.0, 1.0), 0.0, "degenerate measured SPI");
    }
}
