//! Exploring the 30-configuration space per application:
//! error-minimizing selection (Figure 6) and error/selection-size
//! co-optimization (Figure 7).
//!
//! The key property the paper exploits (Section V-C): the native
//! profile is collected **once**; evaluating all 30 interval/feature
//! combinations is pure post-processing with no additional profiling
//! or simulation.

use serde::{Deserialize, Serialize};
use simpoint::SimpointConfig;

use crate::data::AppData;
use crate::evaluate::{all_configs, evaluate_config_with_table, Evaluation, SelectionConfig};
use crate::features::FeatureWeighting;
use crate::interval::SealedTable;

/// The outcome of evaluating every configuration for one app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exploration {
    /// Application name.
    pub app: String,
    /// One evaluation per configuration (30 when all succeed).
    pub evaluations: Vec<Evaluation>,
}

impl Exploration {
    /// Evaluate all 30 configurations.
    ///
    /// `approx_target` is the medium interval size in instructions
    /// (the paper's ~100M, scaled).
    ///
    /// Configurations that fail (e.g. zero-weight traces) are
    /// skipped; an empty result means the app has no kernel work.
    ///
    /// The trace is divided **once per interval scheme** (3 divisions
    /// for 30 configurations, with per-interval base profiles shared
    /// across the 10 feature kinds), and the evaluations fan out
    /// across `GTPIN_THREADS` workers. The result is bitwise
    /// identical at every thread count — see [`Self::run_with_threads`].
    pub fn run(data: &AppData, approx_target: u64, simpoint: &SimpointConfig) -> Exploration {
        Self::run_with_threads(
            data,
            approx_target,
            simpoint,
            gtpin_par::configured_threads(),
        )
    }

    /// [`Self::run`] with an explicit worker count.
    ///
    /// Each of the 30 evaluations is independent (SimPoint seeds
    /// derive from the configuration, never from shared mutable
    /// state) and results are collected in configuration order, so
    /// `run_with_threads(d, t, s, n)` returns the same bits for
    /// every `n ≥ 1`; `n = 1` is a plain serial loop.
    pub fn run_with_threads(
        data: &AppData,
        approx_target: u64,
        simpoint: &SimpointConfig,
        threads: usize,
    ) -> Exploration {
        let mut span = gtpin_obs::span("selection.explore");
        if span.active() {
            span.arg_str("app", data.app.clone());
            span.arg_u64("threads", threads as u64);
        }
        // Divide once per scheme; tables are shared read-only below.
        let configs = all_configs(approx_target);
        let mut tables: Vec<SealedTable> = Vec::new();
        for cfg in &configs {
            if !tables.iter().any(|t| t.scheme() == cfg.interval) {
                tables.push(SealedTable::build(data, cfg.interval));
            }
        }
        let tasks: Vec<(usize, SelectionConfig)> = configs
            .into_iter()
            .map(|cfg| {
                let ti = tables
                    .iter()
                    .position(|t| t.scheme() == cfg.interval)
                    .expect("table built for every scheme");
                (ti, cfg)
            })
            .collect();

        // Verify-on-read at the serial point, before the read-only
        // fan-out: a corrupted table heals here (rebuilt bitwise
        // identical), so every worker sees proven bytes and the
        // verification schedule is independent of the thread count.
        for table in &mut tables {
            table.verified(data);
        }

        let evaluations = gtpin_par::parallel_map(&tasks, threads, |_, &(ti, cfg)| {
            evaluate_config_with_table(
                data,
                cfg,
                tables[ti].table(),
                simpoint,
                FeatureWeighting::InstructionWeighted,
            )
            .ok()
        });
        let evaluations: Vec<Evaluation> = evaluations.into_iter().flatten().collect();
        if span.active() {
            span.arg_u64("configs", 30);
            span.arg_u64("evaluations", evaluations.len() as u64);
        }
        Exploration {
            app: data.app.clone(),
            evaluations,
        }
    }

    /// The error-minimizing configuration (Figure 6's policy).
    /// Ties break toward the smaller selection, then toward
    /// block-based features (strictly finer-grained than kernel
    /// features, so preferable at equal cost).
    pub fn min_error(&self) -> Option<&Evaluation> {
        self.evaluations.iter().min_by(|a, b| {
            let key = |e: &Evaluation| {
                (
                    e.error_pct,
                    e.selected_instructions,
                    u8::from(!e.config.features.is_block_based()),
                )
            };
            key(a).partial_cmp(&key(b)).expect("finite errors")
        })
    }

    /// Figure 7's policy: the smallest selection with error below
    /// `threshold_pct`; if none qualifies, fall back to the
    /// error-minimizing configuration.
    pub fn co_optimize(&self, threshold_pct: f64) -> Option<&Evaluation> {
        let qualifying = self
            .evaluations
            .iter()
            .filter(|e| e.error_pct <= threshold_pct)
            .min_by(|a, b| {
                (a.selected_instructions, a.error_pct)
                    .partial_cmp(&(b.selected_instructions, b.error_pct))
                    .expect("finite")
            });
        qualifying.or_else(|| self.min_error())
    }
}

/// Cross-application summary row for one threshold (one point of
/// Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// The error threshold applied (percent); `None` encodes the
    /// pure error-minimizing policy (Figure 7's leftmost point).
    pub threshold_pct: Option<f64>,
    /// Mean error across applications (percent).
    pub mean_error_pct: f64,
    /// Mean simulation speedup across applications.
    pub mean_speedup: f64,
}

/// Sweep thresholds across many apps' explorations, producing the
/// Figure 7 curve. `thresholds` of `None` means minimize-error.
pub fn threshold_sweep(
    explorations: &[Exploration],
    thresholds: &[Option<f64>],
) -> Vec<ThresholdPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let mut err_sum = 0.0;
            let mut speedup_sum = 0.0;
            let mut n = 0usize;
            for ex in explorations {
                let pick = match t {
                    Some(th) => ex.co_optimize(th),
                    None => ex.min_error(),
                };
                if let Some(e) = pick {
                    err_sum += e.error_pct;
                    speedup_sum += e.speedup();
                    n += 1;
                }
            }
            let n = n.max(1) as f64;
            ThresholdPoint {
                threshold_pct: t,
                mean_error_pct: err_sum / n,
                mean_speedup: speedup_sum / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::test_support::synthetic_app;

    fn explored() -> Exploration {
        let d = synthetic_app(6, 8);
        Exploration::run(&d, 30_000, &SimpointConfig::default())
    }

    #[test]
    fn evaluates_all_thirty_configs() {
        let ex = explored();
        assert_eq!(ex.evaluations.len(), 30);
    }

    #[test]
    fn min_error_is_minimal() {
        let ex = explored();
        let best = ex.min_error().unwrap();
        for e in &ex.evaluations {
            assert!(best.error_pct <= e.error_pct + 1e-12);
        }
    }

    #[test]
    fn co_optimize_prefers_smaller_selections_under_threshold() {
        let ex = explored();
        let best = ex.min_error().unwrap();
        let loose = ex.co_optimize(best.error_pct + 50.0).unwrap();
        assert!(
            loose.selected_instructions <= best.selected_instructions,
            "a loose threshold can only shrink the selection"
        );
        assert!(loose.error_pct <= best.error_pct + 50.0);
    }

    #[test]
    fn co_optimize_falls_back_when_nothing_qualifies() {
        let ex = explored();
        let fallback = ex.co_optimize(-1.0).unwrap();
        let best = ex.min_error().unwrap();
        assert_eq!(fallback.error_pct, best.error_pct);
    }

    #[test]
    fn threshold_sweep_speedup_is_monotone() {
        let exs = vec![explored()];
        let thresholds: Vec<Option<f64>> = std::iter::once(None)
            .chain((1..=10).map(|t| Some(t as f64)))
            .collect();
        let points = threshold_sweep(&exs, &thresholds);
        assert_eq!(points.len(), 11);
        for w in points.windows(2).skip(1) {
            assert!(
                w[1].mean_speedup >= w[0].mean_speedup - 1e-9,
                "speedups rise monotonically with threshold: {points:?}"
            );
        }
    }
}
