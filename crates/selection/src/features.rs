//! Feature-vector kinds — Table III of the paper.
//!
//! Each interval is summarized as a sparse vector of `(key, value)`
//! pairs. Keys identify program events at kernel or basic-block
//! granularity, optionally refined with argument values, global work
//! sizes, or memory byte counts; values are dynamic occurrence
//! counts **weighted by instruction count** (Section V-B explains
//! why: a block executed 5 times at 20 instructions matters more
//! than one executed 10 times at 3).

use serde::{Deserialize, Serialize};
use simpoint::FeatureVector;

use crate::data::AppData;
use crate::interval::Interval;

/// The ten feature-vector constructions of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Kernel.
    Kn,
    /// Kernel + argument values.
    KnArgs,
    /// Kernel + global work size.
    KnGws,
    /// Kernel + argument values + global work size.
    KnArgsGws,
    /// Kernel, plus bytes-read and bytes-written mass.
    KnRw,
    /// Basic block.
    Bb,
    /// Basic block, plus bytes-read mass.
    BbR,
    /// Basic block, plus bytes-written mass.
    BbW,
    /// Basic block, plus separate read and write masses.
    BbRW,
    /// Basic block, plus combined read+write mass.
    BbRPlusW,
}

impl FeatureKind {
    /// All ten kinds, in Table III order.
    pub const ALL: [FeatureKind; 10] = [
        FeatureKind::Kn,
        FeatureKind::KnArgs,
        FeatureKind::KnGws,
        FeatureKind::KnArgsGws,
        FeatureKind::KnRw,
        FeatureKind::Bb,
        FeatureKind::BbR,
        FeatureKind::BbW,
        FeatureKind::BbRW,
        FeatureKind::BbRPlusW,
    ];

    /// The paper's identifier (Table III).
    pub fn label(self) -> &'static str {
        match self {
            FeatureKind::Kn => "KN",
            FeatureKind::KnArgs => "KN-ARGS",
            FeatureKind::KnGws => "KN-GWS",
            FeatureKind::KnArgsGws => "KN-ARGS-GWS",
            FeatureKind::KnRw => "KN-RW",
            FeatureKind::Bb => "BB",
            FeatureKind::BbR => "BB-R",
            FeatureKind::BbW => "BB-W",
            FeatureKind::BbRW => "BB-R-W",
            FeatureKind::BbRPlusW => "BB-(R+W)",
        }
    }

    /// Whether this kind is basic-block based (vs kernel based).
    pub fn is_block_based(self) -> bool {
        matches!(
            self,
            FeatureKind::Bb
                | FeatureKind::BbR
                | FeatureKind::BbW
                | FeatureKind::BbRW
                | FeatureKind::BbRPlusW
        )
    }

    /// Whether this kind incorporates memory access information.
    pub fn uses_memory(self) -> bool {
        matches!(
            self,
            FeatureKind::KnRw
                | FeatureKind::BbR
                | FeatureKind::BbW
                | FeatureKind::BbRW
                | FeatureKind::BbRPlusW
        )
    }
}

impl std::fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// Key-space tags keep different event families from colliding.
const TAG_KERNEL: u64 = 1 << 60;
const TAG_BLOCK: u64 = 2 << 60;
const TAG_READS: u64 = 3 << 60;
const TAG_WRITES: u64 = 4 << 60;
const TAG_RW: u64 = 5 << 60;

fn mix2(a: u64, b: u64) -> u64 {
    let mut v = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    v ^= v >> 29;
    v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v ^= v >> 32;
    v & !(0xF << 60)
}

/// How feature-vector entries are valued.
///
/// The paper weights every entry by instruction count (Section V-B:
/// a block executed 5 times at 20 instructions should outweigh one
/// executed 10 times at 3). `RawCounts` is the ablation — plain
/// occurrence counting — kept to let the weighting's contribution be
/// measured (see the `ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureWeighting {
    /// The paper's choice: entries weighted by dynamic instructions.
    InstructionWeighted,
    /// Ablation: raw occurrence counts.
    RawCounts,
}

/// Build the feature vector of one interval under `kind`.
pub fn feature_vector(data: &AppData, interval: Interval, kind: FeatureKind) -> FeatureVector {
    feature_vector_weighted(data, interval, kind, FeatureWeighting::InstructionWeighted)
}

/// Build the feature vector of one interval under `kind` with an
/// explicit weighting policy.
pub fn feature_vector_weighted(
    data: &AppData,
    interval: Interval,
    kind: FeatureKind,
    weighting: FeatureWeighting,
) -> FeatureVector {
    let mut v = FeatureVector::new();
    for inv in &data.invocations[interval.start..interval.end] {
        let weight = match weighting {
            FeatureWeighting::InstructionWeighted => inv.instructions as f64,
            FeatureWeighting::RawCounts => 1.0,
        };
        let k = inv.kernel_index as u64;
        match kind {
            FeatureKind::Kn => v.add(TAG_KERNEL | mix2(k, 0), weight),
            FeatureKind::KnArgs => v.add(TAG_KERNEL | mix2(k, inv.args_digest), weight),
            FeatureKind::KnGws => v.add(TAG_KERNEL | mix2(k, inv.global_work_size), weight),
            FeatureKind::KnArgsGws => v.add(
                TAG_KERNEL | mix2(mix2(k, inv.args_digest), inv.global_work_size),
                weight,
            ),
            FeatureKind::KnRw => {
                v.add(TAG_KERNEL | mix2(k, 0), weight);
                v.add(TAG_READS, inv.bytes_read as f64);
                v.add(TAG_WRITES, inv.bytes_written as f64);
            }
            FeatureKind::Bb
            | FeatureKind::BbR
            | FeatureKind::BbW
            | FeatureKind::BbRW
            | FeatureKind::BbRPlusW => {
                let sizes = &data.kernels[inv.kernel_index as usize].block_sizes;
                for (bb, &count) in inv.bb_counts.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let size = match weighting {
                        FeatureWeighting::InstructionWeighted => {
                            sizes.get(bb).copied().unwrap_or(1)
                        }
                        FeatureWeighting::RawCounts => 1,
                    };
                    v.add(TAG_BLOCK | mix2(k, bb as u64), (count * size) as f64);
                }
                match kind {
                    FeatureKind::BbR => v.add(TAG_READS, inv.bytes_read as f64),
                    FeatureKind::BbW => v.add(TAG_WRITES, inv.bytes_written as f64),
                    FeatureKind::BbRW => {
                        v.add(TAG_READS, inv.bytes_read as f64);
                        v.add(TAG_WRITES, inv.bytes_written as f64);
                    }
                    FeatureKind::BbRPlusW => {
                        v.add(TAG_RW, (inv.bytes_read + inv.bytes_written) as f64)
                    }
                    _ => {}
                }
            }
        }
    }
    v
}

/// Build feature vectors for every interval.
pub fn feature_vectors(
    data: &AppData,
    intervals: &[Interval],
    kind: FeatureKind,
) -> Vec<FeatureVector> {
    intervals
        .iter()
        .map(|&iv| feature_vector(data, iv, kind))
        .collect()
}

/// Build feature vectors for every interval with an explicit
/// weighting policy (used by the weighting ablation).
pub fn feature_vectors_weighted(
    data: &AppData,
    intervals: &[Interval],
    kind: FeatureKind,
    weighting: FeatureWeighting,
) -> Vec<FeatureVector> {
    intervals
        .iter()
        .map(|&iv| feature_vector_weighted(data, iv, kind, weighting))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::test_support::synthetic_app;
    use crate::interval::{build_intervals, IntervalScheme};

    #[test]
    fn table_iii_has_ten_kinds_with_distinct_labels() {
        let mut labels: Vec<&str> = FeatureKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn classification_flags() {
        assert!(FeatureKind::Bb.is_block_based());
        assert!(!FeatureKind::Kn.is_block_based());
        assert!(FeatureKind::KnRw.uses_memory());
        assert!(FeatureKind::BbRPlusW.uses_memory());
        assert!(!FeatureKind::Bb.uses_memory());
        assert_eq!(
            FeatureKind::ALL.iter().filter(|k| k.uses_memory()).count(),
            5
        );
        assert_eq!(
            FeatureKind::ALL
                .iter()
                .filter(|k| k.is_block_based())
                .count(),
            5
        );
    }

    #[test]
    fn kn_merges_all_launches_of_a_kernel() {
        let d = synthetic_app(1, 6);
        let iv = Interval { start: 0, end: 6 };
        let v = feature_vector(&d, iv, FeatureKind::Kn);
        assert_eq!(v.len(), 2, "two kernels → two keys");
        assert!((v.l1() - d.total_instructions() as f64).abs() < 1e-9);
    }

    #[test]
    fn kn_args_distinguishes_argument_values() {
        let d = synthetic_app(1, 6);
        let iv = Interval { start: 0, end: 6 };
        let v = feature_vector(&d, iv, FeatureKind::KnArgs);
        assert!(
            v.len() > 2,
            "distinct args per launch split the keys: {}",
            v.len()
        );
    }

    #[test]
    fn bb_features_are_instruction_weighted() {
        let d = synthetic_app(1, 2);
        let iv = Interval { start: 0, end: 1 }; // kernel 0: blocks [1,100,1] × sizes [5,95,3]
        let v = feature_vector(&d, iv, FeatureKind::Bb);
        assert_eq!(v.len(), 3);
        assert!((v.l1() - (5.0 + 100.0 * 95.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn memory_variants_add_mass_entries() {
        let d = synthetic_app(1, 2);
        let iv = Interval { start: 0, end: 2 };
        let bb = feature_vector(&d, iv, FeatureKind::Bb);
        let bbr = feature_vector(&d, iv, FeatureKind::BbR);
        let bbrw = feature_vector(&d, iv, FeatureKind::BbRW);
        let bbsum = feature_vector(&d, iv, FeatureKind::BbRPlusW);
        assert_eq!(bbr.len(), bb.len() + 1);
        assert_eq!(bbrw.len(), bb.len() + 2);
        assert_eq!(bbsum.len(), bb.len() + 1);
        let reads: u64 = d.invocations[..2].iter().map(|i| i.bytes_read).sum();
        assert!((bbr.get(TAG_READS) - reads as f64).abs() < 1e-9);
    }

    #[test]
    fn distinct_memory_behaviour_separates_bbr_but_not_bb() {
        // Two intervals with identical block profiles but different
        // byte traffic.
        let mut d = synthetic_app(2, 1); // 2 epochs × 1 invocation of kernel 0
        d.invocations[1].bytes_read = d.invocations[0].bytes_read * 100;
        d.invocations[1].args_digest = d.invocations[0].args_digest;
        let ivs = build_intervals(&d, IntervalScheme::SingleKernel);
        let bb0 = feature_vector(&d, ivs[0], FeatureKind::Bb);
        let bb1 = feature_vector(&d, ivs[1], FeatureKind::Bb);
        assert_eq!(bb0, bb1, "BB is blind to byte traffic");
        let r0 = feature_vector(&d, ivs[0], FeatureKind::BbR);
        let r1 = feature_vector(&d, ivs[1], FeatureKind::BbR);
        assert_ne!(r0, r1, "BB-R separates them");
    }
}
