//! The merged per-application dataset subset selection operates on:
//! GT-Pin profile data (instruction counts, block counts, memory
//! bytes) joined with CoFluent timing data (per-invocation seconds,
//! synchronization epochs) by launch order.

use gtpin_core::profile::ProgramProfile;
use ocl_runtime::cofluent::CofluentReport;
use serde::{Deserialize, Serialize};

/// One kernel invocation with everything selection needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvRecord {
    /// Launch order position.
    pub index: u32,
    /// Kernel index within the program.
    pub kernel_index: u32,
    /// Global work size.
    pub global_work_size: u64,
    /// Digest of bound argument values.
    pub args_digest: u64,
    /// Dynamic executions per static basic block of the kernel.
    pub bb_counts: Vec<u64>,
    /// Dynamic application instructions.
    pub instructions: u64,
    /// Application bytes read.
    pub bytes_read: u64,
    /// Application bytes written.
    pub bytes_written: u64,
    /// Measured wall-clock seconds (CoFluent timing).
    pub seconds: f64,
    /// Synchronization epoch the invocation belongs to.
    pub sync_epoch: u32,
    /// Trace records dropped at capacity while profiling this
    /// invocation (zero in healthy runs).
    pub dropped_records: u64,
    /// Corrupted trace records quarantined while profiling this
    /// invocation (zero in healthy runs).
    pub quarantined_records: u64,
}

impl InvRecord {
    /// Whether this invocation's profile lost or quarantined trace
    /// records — subset selection skips degraded intervals.
    pub fn is_degraded(&self) -> bool {
        self.dropped_records > 0 || self.quarantined_records > 0
    }
}

/// Per-kernel static block sizes, needed for instruction-weighted
/// basic-block features.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelShape {
    /// Kernel name.
    pub name: String,
    /// Static instruction count per basic block.
    pub block_sizes: Vec<u64>,
}

/// The full dataset for one application execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppData {
    /// Application name.
    pub app: String,
    /// Static kernel shapes, in program order.
    pub kernels: Vec<KernelShape>,
    /// Invocations in launch order.
    pub invocations: Vec<InvRecord>,
}

/// Problems joining a profile with a timing report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The two sources saw different invocation counts.
    LengthMismatch { profile: usize, timing: usize },
    /// Invocation `index` names different kernels in the two sources.
    KernelMismatch { index: usize },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::LengthMismatch { profile, timing } => write!(
                f,
                "profile has {profile} invocations but timing report has {timing}"
            ),
            MergeError::KernelMismatch { index } => {
                write!(
                    f,
                    "invocation {index} names different kernels in profile and timing"
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl AppData {
    /// Join a GT-Pin profile with a CoFluent timing report.
    ///
    /// Both must come from replays of the same recording so launch
    /// order matches (exactly the paper's use of CoFluent record
    /// and replay, Section V-E).
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] when the two sources disagree.
    pub fn merge(profile: &ProgramProfile, timing: &CofluentReport) -> Result<AppData, MergeError> {
        if profile.invocations.len() != timing.invocations.len() {
            return Err(MergeError::LengthMismatch {
                profile: profile.invocations.len(),
                timing: timing.invocations.len(),
            });
        }
        let mut invocations = Vec::with_capacity(profile.invocations.len());
        for (i, (p, t)) in profile
            .invocations
            .iter()
            .zip(&timing.invocations)
            .enumerate()
        {
            if p.kernel_index != t.kernel.0 {
                return Err(MergeError::KernelMismatch { index: i });
            }
            invocations.push(InvRecord {
                index: i as u32,
                kernel_index: p.kernel_index,
                global_work_size: p.global_work_size,
                args_digest: p.args_digest,
                bb_counts: p.bb_counts.clone(),
                instructions: p.instructions,
                bytes_read: p.bytes_read,
                bytes_written: p.bytes_written,
                seconds: t.seconds,
                sync_epoch: t.sync_epoch,
                dropped_records: p.dropped_records,
                quarantined_records: p.quarantined_records,
            });
        }
        Ok(AppData {
            app: profile.app.clone(),
            kernels: profile
                .kernels
                .iter()
                .map(|k| KernelShape {
                    name: k.name.clone(),
                    block_sizes: k.blocks.iter().map(|b| b.instructions).collect(),
                })
                .collect(),
            invocations,
        })
    }

    /// Replace per-invocation timings with those of another trial
    /// (replayed recording on possibly different hardware). Counts
    /// stay — replays are architecturally deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::LengthMismatch`] when the new report's
    /// invocation count differs.
    pub fn with_timings(&self, timing: &CofluentReport) -> Result<AppData, MergeError> {
        if self.invocations.len() != timing.invocations.len() {
            return Err(MergeError::LengthMismatch {
                profile: self.invocations.len(),
                timing: timing.invocations.len(),
            });
        }
        let mut out = self.clone();
        for (inv, t) in out.invocations.iter_mut().zip(&timing.invocations) {
            inv.seconds = t.seconds;
            inv.sync_epoch = t.sync_epoch;
        }
        Ok(out)
    }

    /// Total dynamic instructions across invocations.
    pub fn total_instructions(&self) -> u64 {
        self.invocations.iter().map(|i| i.instructions).sum()
    }

    /// Total kernel seconds.
    pub fn total_seconds(&self) -> f64 {
        self.invocations.iter().map(|i| i.seconds).sum()
    }

    /// Whole-program measured seconds-per-instruction (the
    /// denominator of Equation 1).
    pub fn measured_spi(&self) -> f64 {
        let instrs = self.total_instructions();
        if instrs == 0 {
            0.0
        } else {
            self.total_seconds() / instrs as f64
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A synthetic app with `epochs` sync epochs, each containing
    /// `per_epoch` invocations alternating between two kernels with
    /// different SPIs. Kernel 0 is "fast compute", kernel 1 is
    /// "slow memory".
    pub fn synthetic_app(epochs: u32, per_epoch: u32) -> AppData {
        let mut invocations = Vec::new();
        for e in 0..epochs {
            for i in 0..per_epoch {
                let k = i % 2;
                let instructions = if k == 0 { 10_000 } else { 4_000 };
                let spi = if k == 0 { 1e-9 } else { 5e-9 };
                invocations.push(InvRecord {
                    index: invocations.len() as u32,
                    kernel_index: k,
                    global_work_size: 256,
                    args_digest: (e as u64) << 8 | i as u64,
                    bb_counts: if k == 0 { vec![1, 100, 1] } else { vec![1, 40] },
                    instructions,
                    bytes_read: if k == 0 { 1_000 } else { 64_000 },
                    bytes_written: 500,
                    seconds: instructions as f64 * spi,
                    sync_epoch: e,
                    dropped_records: 0,
                    quarantined_records: 0,
                });
            }
        }
        AppData {
            app: "synthetic".into(),
            kernels: vec![
                KernelShape {
                    name: "compute".into(),
                    block_sizes: vec![5, 95, 3],
                },
                KernelShape {
                    name: "memory".into(),
                    block_sizes: vec![5, 98],
                },
            ],
            invocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::synthetic_app;
    use super::*;

    #[test]
    fn measured_spi_is_time_over_instructions() {
        let d = synthetic_app(2, 4);
        let spi = d.measured_spi();
        assert!(spi > 0.0);
        assert!((spi - d.total_seconds() / d.total_instructions() as f64).abs() < 1e-18);
    }

    #[test]
    fn with_timings_rejects_mismatched_lengths() {
        let d = synthetic_app(1, 4);
        let timing = CofluentReport {
            app: "x".into(),
            device: "dev".into(),
            total_api_calls: 0,
            kind_counts: [0; 3],
            per_call_counts: Default::default(),
            invocations: Vec::new(),
            num_sync_epochs: 0,
        };
        assert!(matches!(
            d.with_timings(&timing),
            Err(MergeError::LengthMismatch { .. })
        ));
    }
}
