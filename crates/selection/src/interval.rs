//! Interval schemes — Table II of the paper.
//!
//! GPU intervals are subject to hard constraints the paper's
//! simulator teams imposed: an interval is **at least one whole
//! kernel invocation** and **never spans a synchronization call**.
//! Three schemes satisfy them at different granularities:
//!
//! | scheme | relative size |
//! |---|---|
//! | synchronization-bounded | large |
//! | ~N instructions (paper: ~100M) | medium |
//! | single kernel invocation | small |

use serde::{Deserialize, Serialize};

use crate::data::AppData;

/// How to divide a program trace into intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntervalScheme {
    /// Split at each synchronization call (largest intervals).
    SyncBounded,
    /// Subdivide sync epochs into runs of approximately this many
    /// dynamic instructions, without splitting invocations (the
    /// paper's "approximately 100M instructions").
    ApproxInstructions(u64),
    /// Every kernel invocation is its own interval (smallest).
    SingleKernel,
}

impl IntervalScheme {
    /// Short label used in tables and reports.
    pub fn label(&self) -> String {
        match self {
            IntervalScheme::SyncBounded => "sync".to_string(),
            IntervalScheme::ApproxInstructions(n) => format!("approx-{n}"),
            IntervalScheme::SingleKernel => "single-kernel".to_string(),
        }
    }
}

impl std::fmt::Display for IntervalScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A half-open range of invocation indices `[start, end)` — always
/// whole invocations, never crossing a sync epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// First invocation index.
    pub start: usize,
    /// One past the last invocation index.
    pub end: usize,
}

impl Interval {
    /// Number of invocations covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval is empty (never produced by
    /// [`build_intervals`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Dynamic instructions in this interval.
    pub fn instructions(&self, data: &AppData) -> u64 {
        data.invocations[self.start..self.end]
            .iter()
            .map(|i| i.instructions)
            .sum()
    }

    /// Measured seconds in this interval.
    pub fn seconds(&self, data: &AppData) -> f64 {
        data.invocations[self.start..self.end]
            .iter()
            .map(|i| i.seconds)
            .sum()
    }

    /// Seconds-per-instruction of the interval.
    pub fn spi(&self, data: &AppData) -> f64 {
        let n = self.instructions(data);
        if n == 0 {
            0.0
        } else {
            self.seconds(data) / n as f64
        }
    }
}

/// A scheme's interval division plus per-interval base profiles
/// (instruction and time sums), computed **once** and shared across
/// every feature kind that evaluates under the scheme.
///
/// `Exploration::run` evaluates 10 feature kinds per scheme; without
/// this table each evaluation re-divides the trace and re-walks the
/// invocations (30 divisions per app). With it, the division and the
/// per-interval sums happen 3 times and are read 30 times — and the
/// sums are accumulated in exactly the order [`Interval::instructions`]
/// and [`Interval::seconds`] use, so every derived quantity
/// (weights, SPI, projections) is bitwise identical to the
/// un-memoized path.
#[derive(Debug, Clone)]
pub struct SchemeTable {
    /// The scheme this table divides under.
    pub scheme: IntervalScheme,
    /// The division (same contents as [`build_intervals`]).
    pub intervals: Vec<Interval>,
    instructions: Vec<u64>,
    seconds: Vec<f64>,
    quarantined: Vec<bool>,
}

impl SchemeTable {
    /// Divide `data` under `scheme` and profile every interval.
    pub fn build(data: &AppData, scheme: IntervalScheme) -> SchemeTable {
        let intervals = build_intervals(data, scheme);
        let instructions = intervals.iter().map(|iv| iv.instructions(data)).collect();
        let seconds = intervals.iter().map(|iv| iv.seconds(data)).collect();
        let quarantined = intervals
            .iter()
            .map(|iv| {
                data.invocations[iv.start..iv.end]
                    .iter()
                    .any(crate::data::InvRecord::is_degraded)
            })
            .collect();
        SchemeTable {
            scheme,
            intervals,
            instructions,
            seconds,
            quarantined,
        }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the division is empty (no invocations).
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Per-interval dynamic instruction counts — SimPoint's
    /// clustering weights.
    pub fn weights(&self) -> &[u64] {
        &self.instructions
    }

    /// Dynamic instructions in interval `i`.
    pub fn instructions(&self, i: usize) -> u64 {
        self.instructions[i]
    }

    /// Seconds-per-instruction of interval `i`; bitwise equal to
    /// [`Interval::spi`] on the same data.
    pub fn spi(&self, i: usize) -> f64 {
        if self.instructions[i] == 0 {
            0.0
        } else {
            self.seconds[i] / self.instructions[i] as f64
        }
    }

    /// Per-interval quarantine mask: `true` where any invocation in
    /// the interval dropped or quarantined trace records. All-false
    /// in healthy runs, in which case selection takes the unfiltered
    /// (bitwise-identical) path.
    pub fn quarantine_mask(&self) -> &[bool] {
        &self.quarantined
    }

    /// Whether any interval is quarantined.
    pub fn has_quarantined(&self) -> bool {
        self.quarantined.iter().any(|&q| q)
    }
}

/// A [`SchemeTable`] guarded by a verify-on-read canary seal.
///
/// The table is memoized state that every evaluation trusts; a
/// corrupted entry would silently skew all 10 feature kinds under
/// its scheme. The seal packs the table into canonical bytes and
/// records their fnv64 ([`gtpin_faults::Sealed`]); callers verify at
/// the serial point before fanning out read-only. On a mismatch
/// (the `cache.corrupt` fault site, or real rot) the table is
/// quarantined and rebuilt from the source `AppData` — recompute is
/// the reference path, so the healed table is bitwise identical to
/// the original and downstream results never change.
#[derive(Debug, Clone)]
pub struct SealedTable {
    table: SchemeTable,
    seal: gtpin_faults::Sealed,
    ident: u64,
}

impl SealedTable {
    /// Build and seal a table for `data` under `scheme`.
    pub fn build(data: &AppData, scheme: IntervalScheme) -> SealedTable {
        let table = SchemeTable::build(data, scheme);
        let ident = gtpin_obs::frame::fnv64(format!("{}/{}", data.app, scheme.label()).as_bytes());
        let seal = gtpin_faults::Sealed::new(pack_table(&table));
        SealedTable { table, seal, ident }
    }

    /// The scheme this table divides under.
    pub fn scheme(&self) -> IntervalScheme {
        self.table.scheme
    }

    /// Verify-on-read: check the canary seal and heal on mismatch by
    /// rebuilding from `data` and resealing (accounted through
    /// `healed.selection.interval_table` / `cache.heal`). Returns the
    /// (possibly freshly rebuilt) table.
    pub fn verified(&mut self, data: &AppData) -> &SchemeTable {
        if self.seal.read(self.ident).is_none() {
            gtpin_faults::sealed::note_heal("selection.interval_table");
            self.table = SchemeTable::build(data, self.table.scheme);
            self.seal = gtpin_faults::Sealed::new(pack_table(&self.table));
        }
        &self.table
    }

    /// Access without verification — for read-only fan-out after a
    /// serial [`Self::verified`] call.
    pub fn table(&self) -> &SchemeTable {
        &self.table
    }
}

/// Canonical byte packing of a table for sealing: scheme label,
/// interval bounds, instruction sums (LE), second sums as IEEE bits
/// (LE), quarantine flags. Stable across runs — no pointers, no
/// volatile state — so seals replay identically.
fn pack_table(t: &SchemeTable) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + t.len() * 33);
    out.extend_from_slice(t.scheme.label().as_bytes());
    for iv in &t.intervals {
        out.extend_from_slice(&(iv.start as u64).to_le_bytes());
        out.extend_from_slice(&(iv.end as u64).to_le_bytes());
    }
    for i in 0..t.len() {
        out.extend_from_slice(&t.instructions(i).to_le_bytes());
        out.extend_from_slice(&t.seconds[i].to_bits().to_le_bytes());
    }
    for &q in t.quarantine_mask() {
        out.push(u8::from(q));
    }
    out
}

/// The default medium-interval target for an application — the
/// analogue of the paper's fixed "~100M instructions" at our workload
/// scale: roughly two sub-intervals per synchronization epoch, which
/// reproduces Table II's sync : approx ratio.
pub fn default_approx_target(data: &AppData) -> u64 {
    let epochs = data
        .invocations
        .last()
        .map(|i| i.sync_epoch as u64 + 1)
        .unwrap_or(1);
    (data.total_instructions() / (2 * epochs).max(1)).max(1_000)
}

/// Divide `data` into intervals under `scheme`.
///
/// The result partitions the invocation sequence exactly: intervals
/// are contiguous, non-empty, cover every invocation once, and never
/// straddle a synchronization epoch.
pub fn build_intervals(data: &AppData, scheme: IntervalScheme) -> Vec<Interval> {
    let n = data.invocations.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }

    // Epoch boundaries first: indices where a new epoch starts.
    let mut epoch_starts = vec![0usize];
    for i in 1..n {
        if data.invocations[i].sync_epoch != data.invocations[i - 1].sync_epoch {
            epoch_starts.push(i);
        }
    }
    epoch_starts.push(n);

    match scheme {
        IntervalScheme::SyncBounded => {
            for w in epoch_starts.windows(2) {
                out.push(Interval {
                    start: w[0],
                    end: w[1],
                });
            }
        }
        IntervalScheme::SingleKernel => {
            for i in 0..n {
                out.push(Interval {
                    start: i,
                    end: i + 1,
                });
            }
        }
        IntervalScheme::ApproxInstructions(target) => {
            let target = target.max(1);
            for w in epoch_starts.windows(2) {
                let (mut start, end) = (w[0], w[1]);
                let mut acc = 0u64;
                for i in w[0]..end {
                    acc += data.invocations[i].instructions;
                    if acc >= target {
                        out.push(Interval { start, end: i + 1 });
                        start = i + 1;
                        acc = 0;
                    }
                }
                if start < end {
                    out.push(Interval { start, end });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::test_support::synthetic_app;

    fn assert_partition(data: &AppData, intervals: &[Interval]) {
        assert!(!intervals.is_empty());
        let mut cursor = 0;
        for iv in intervals {
            assert_eq!(iv.start, cursor, "contiguous");
            assert!(!iv.is_empty(), "non-empty");
            cursor = iv.end;
            // Never straddles an epoch.
            let e = data.invocations[iv.start].sync_epoch;
            for i in iv.start..iv.end {
                assert_eq!(
                    data.invocations[i].sync_epoch, e,
                    "single epoch per interval"
                );
            }
        }
        assert_eq!(cursor, data.invocations.len(), "covers everything");
    }

    #[test]
    fn sync_bounded_matches_epochs() {
        let d = synthetic_app(5, 6);
        let ivs = build_intervals(&d, IntervalScheme::SyncBounded);
        assert_eq!(ivs.len(), 5);
        assert_partition(&d, &ivs);
    }

    #[test]
    fn single_kernel_is_one_per_invocation() {
        let d = synthetic_app(3, 4);
        let ivs = build_intervals(&d, IntervalScheme::SingleKernel);
        assert_eq!(ivs.len(), 12);
        assert_partition(&d, &ivs);
    }

    #[test]
    fn approx_instructions_sits_between() {
        let d = synthetic_app(4, 8);
        // Each epoch ≈ 4×10k + 4×4k = 56k instructions.
        let sync = build_intervals(&d, IntervalScheme::SyncBounded).len();
        let approx = build_intervals(&d, IntervalScheme::ApproxInstructions(20_000)).len();
        let single = build_intervals(&d, IntervalScheme::SingleKernel).len();
        assert!(
            sync <= approx && approx <= single,
            "{sync} <= {approx} <= {single}"
        );
        assert_partition(
            &d,
            &build_intervals(&d, IntervalScheme::ApproxInstructions(20_000)),
        );
    }

    #[test]
    fn oversized_invocations_get_their_own_interval() {
        let d = synthetic_app(1, 6);
        // Target far below any single invocation.
        let ivs = build_intervals(&d, IntervalScheme::ApproxInstructions(1));
        assert_eq!(ivs.len(), 6, "every invocation exceeds the target alone");
        assert_partition(&d, &ivs);
    }

    #[test]
    fn huge_target_collapses_to_sync_bounds() {
        let d = synthetic_app(3, 5);
        let ivs = build_intervals(&d, IntervalScheme::ApproxInstructions(u64::MAX));
        assert_eq!(ivs.len(), 3, "target never reached within an epoch");
    }

    #[test]
    fn interval_spi_matches_hand_computation() {
        let d = synthetic_app(1, 2);
        let iv = Interval { start: 0, end: 2 };
        let spi = iv.spi(&d);
        let secs = d.invocations[0].seconds + d.invocations[1].seconds;
        let instrs = d.invocations[0].instructions + d.invocations[1].instructions;
        assert!((spi - secs / instrs as f64).abs() < 1e-18);
    }

    #[test]
    fn empty_data_yields_no_intervals() {
        let mut d = synthetic_app(1, 1);
        d.invocations.clear();
        assert!(build_intervals(&d, IntervalScheme::SyncBounded).is_empty());
    }

    #[test]
    fn scheme_table_matches_interval_methods_bitwise() {
        let d = synthetic_app(5, 7);
        for scheme in [
            IntervalScheme::SyncBounded,
            IntervalScheme::ApproxInstructions(25_000),
            IntervalScheme::SingleKernel,
        ] {
            let table = SchemeTable::build(&d, scheme);
            let intervals = build_intervals(&d, scheme);
            assert_eq!(table.intervals, intervals);
            assert_eq!(table.len(), intervals.len());
            for (i, iv) in intervals.iter().enumerate() {
                assert_eq!(table.instructions(i), iv.instructions(&d));
                assert_eq!(table.weights()[i], iv.instructions(&d));
                assert_eq!(
                    table.spi(i).to_bits(),
                    iv.spi(&d).to_bits(),
                    "memoized SPI must be bit-identical ({scheme})"
                );
            }
        }
    }

    // The fault registry is process-global; serialize the one test
    // that installs a plan (same discipline as the faults crate).
    static FAULTS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn sealed_table_heals_corruption_to_identical_bits() {
        let _g = FAULTS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let d = synthetic_app(5, 7);
        let scheme = IntervalScheme::ApproxInstructions(25_000);
        let reference = SchemeTable::build(&d, scheme);

        // Corrupt on every read: the canary trips, the table heals.
        gtpin_faults::install(gtpin_faults::FaultPlan::single(
            gtpin_faults::site::CACHE_CORRUPT,
            1.0,
            77,
        ));
        let mut sealed = SealedTable::build(&d, scheme);
        let healed = sealed.verified(&d);
        assert_eq!(healed.intervals, reference.intervals);
        for i in 0..reference.len() {
            assert_eq!(healed.instructions(i), reference.instructions(i));
            assert_eq!(
                healed.spi(i).to_bits(),
                reference.spi(i).to_bits(),
                "healed table must be bitwise identical"
            );
        }
        let acc: std::collections::BTreeMap<String, u64> =
            gtpin_faults::take_accounting().into_iter().collect();
        assert!(acc["injected.cache.corrupt"] >= 1);
        assert!(acc["healed.selection.interval_table"] >= 1);
        gtpin_faults::disable();

        // Quiescent: the seal holds and no heal is accounted.
        let mut clean = SealedTable::build(&d, scheme);
        clean.verified(&d);
        let acc: std::collections::BTreeMap<String, u64> =
            gtpin_faults::take_accounting().into_iter().collect();
        assert!(!acc.contains_key("healed.selection.interval_table"));
    }

    #[test]
    fn memoized_division_never_straddles_sync_calls() {
        // Eight epochs → seven synchronization calls between them;
        // every scheme's memoized division must respect all seven
        // boundaries exactly as the direct division does.
        let d = synthetic_app(8, 5);
        let sync_calls = 7;
        assert_eq!(
            d.invocations.last().unwrap().sync_epoch as usize,
            sync_calls
        );
        for scheme in [
            IntervalScheme::SyncBounded,
            IntervalScheme::ApproxInstructions(15_000),
            IntervalScheme::SingleKernel,
        ] {
            let table = SchemeTable::build(&d, scheme);
            assert_partition(&d, &table.intervals);
            // Each of the 7 boundaries coincides with an interval edge.
            let edges: std::collections::HashSet<usize> =
                table.intervals.iter().map(|iv| iv.start).collect();
            for i in 1..d.invocations.len() {
                if d.invocations[i].sync_epoch != d.invocations[i - 1].sync_epoch {
                    assert!(
                        edges.contains(&i),
                        "sync boundary at {i} must start an interval"
                    );
                }
            }
        }
    }
}
