//! The resumable exploration sweep: the paper's 25-app ×
//! 30-configuration study (Section V) as a supervised, crash-
//! consistent batch job.
//!
//! Work is cut at three **unit boundaries**, each journaled as one
//! durable record the moment it completes:
//!
//! 1. `profile/<app>` — the one native + instrumented profiling pass
//!    ([`profile_app`]), by far the most expensive unit;
//! 2. `eval/<app>/<index>` — one of the 30 interval/feature
//!    configuration evaluations (pure post-processing);
//! 3. `summary/<app>` — the app's selection summary (Figure 6/7
//!    rows), derived from its evaluations.
//!
//! A resumed sweep recovers the journal, **replays** recorded
//! outcomes through the same supervisor policy (deadlines, per-app
//! circuit breaker, global run budget), and recomputes only the
//! missing units. Because every unit is deterministic and every
//! recorded f64 round-trips bitwise through JSON, a resumed sweep's
//! final report is **bit-identical** to an uninterrupted run's — the
//! property `crates/selection/tests/prop_resume.rs` pins under
//! injected crash points and thread counts 1..=8.

use gpu_device::GpuConfig;
use gtpin_durable::{Journal, JournalError, Recovery};
use gtpin_par::{Outcome, Supervisor, SupervisorConfig};
use ocl_runtime::host::HostProgram;
use serde::{Deserialize, Serialize};
use simpoint::SimpointConfig;
use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::data::AppData;
use crate::evaluate::{all_configs, evaluate_config_with_table, Evaluation};
use crate::explore::Exploration;
use crate::features::FeatureWeighting;
use crate::interval::SealedTable;
use crate::pipeline::profile_app;
use crate::prescreen::{PrescreenReport, PrescreenSample, StaticEstimator};

/// Everything a sweep run needs. `threads` is a pure wall-clock knob
/// — the report is bit-identical at any value — and is deliberately
/// *not* fingerprinted into the journal.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Co-optimization error threshold (Figure 7), in percent.
    pub threshold_pct: f64,
    /// Capture seed for the native recording.
    pub capture_seed: u64,
    /// Device configuration profiled against.
    pub gpu: GpuConfig,
    /// SimPoint knobs.
    pub simpoint: SimpointConfig,
    /// Supervision policy (deadlines, breaker, budget).
    pub supervisor: SupervisorConfig,
    /// Fan-out width for configuration evaluations.
    pub threads: usize,
    /// Journal directory: `None` runs without durability.
    pub journal_dir: Option<PathBuf>,
    /// When true, recover `journal_dir` and skip completed units;
    /// when false, `journal_dir` must be a fresh directory.
    pub resume: bool,
    /// When true, statically price every app up front and record the
    /// estimate-vs-simulated comparison ([`PrescreenReport`]) in the
    /// report. Defaults to the `GTPIN_PRESCREEN` environment knob.
    /// Pre-screening is derived, never journaled, and never changes
    /// what the sweep simulates or selects, so it is deliberately
    /// *not* fingerprinted: a resume may toggle it freely.
    pub prescreen: bool,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            threshold_pct: 3.0,
            capture_seed: 1,
            gpu: GpuConfig::hd4000(),
            simpoint: SimpointConfig::default(),
            supervisor: SupervisorConfig::default(),
            threads: gtpin_par::configured_threads(),
            journal_dir: None,
            resume: false,
            prescreen: crate::prescreen::prescreen_requested(),
        }
    }
}

/// One durable journal record — exactly one completed (or decided)
/// unit of sweep work, externally tagged JSON on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UnitRecord {
    /// Run fingerprint, written first: a resume under different
    /// options would not reproduce the interrupted run, so it is
    /// rejected instead of producing a silently divergent report.
    Meta {
        /// `threshold_pct` of the run.
        threshold_pct: f64,
        /// `capture_seed` of the run.
        capture_seed: u64,
        /// Supervisor deadline (0 = none).
        deadline_virtual_ns: u64,
        /// Breaker threshold.
        breaker_threshold: u32,
        /// Max tasks (0 = none).
        max_tasks: u64,
        /// Max virtual ns (0 = none).
        max_virtual_ns: u64,
        /// Dispatch round size.
        batch: u64,
        /// App names, in sweep order.
        apps: Vec<String>,
    },
    /// `profile/<app>` completed.
    ProfileDone {
        /// App name.
        app: String,
        /// Virtual nanoseconds the profiled execution spanned.
        virtual_ns: u64,
        /// The joined profile + timing dataset.
        data: AppData,
    },
    /// `profile/<app>` ran and failed.
    ProfileFailed {
        /// App name.
        app: String,
        /// The pipeline error, rendered.
        error: String,
    },
    /// `profile/<app>` was skipped by policy.
    ProfileSkipped {
        /// App name.
        app: String,
        /// `skip-breaker` or `skip-budget`.
        kind: String,
    },
    /// `eval/<app>/<index>` completed.
    EvalDone {
        /// App name.
        app: String,
        /// Configuration index in `all_configs` order.
        index: u64,
        /// Virtual cost charged (1 ns per dynamic instruction).
        virtual_ns: u64,
        /// The scored selection.
        evaluation: Evaluation,
    },
    /// `eval/<app>/<index>` ran and failed.
    EvalFailed {
        /// App name.
        app: String,
        /// Configuration index.
        index: u64,
        /// The selection error, rendered.
        error: String,
    },
    /// `eval/<app>/<index>` blew its virtual deadline.
    EvalDeadline {
        /// App name.
        app: String,
        /// Configuration index.
        index: u64,
        /// Virtual cost observed (> deadline).
        virtual_ns: u64,
    },
    /// `eval/<app>/<index>` was skipped by policy.
    EvalSkipped {
        /// App name.
        app: String,
        /// Configuration index.
        index: u64,
        /// `skip-breaker` or `skip-budget`.
        kind: String,
    },
    /// `summary/<app>` derived.
    Summary {
        /// App name.
        app: String,
        /// The derived summary.
        summary: AppSweepSummary,
    },
}

impl UnitRecord {
    /// The unit key this record completes.
    pub fn key(&self) -> String {
        match self {
            UnitRecord::Meta { .. } => "meta".into(),
            UnitRecord::ProfileDone { app, .. }
            | UnitRecord::ProfileFailed { app, .. }
            | UnitRecord::ProfileSkipped { app, .. } => format!("profile/{app}"),
            UnitRecord::EvalDone { app, index, .. }
            | UnitRecord::EvalFailed { app, index, .. }
            | UnitRecord::EvalDeadline { app, index, .. }
            | UnitRecord::EvalSkipped { app, index, .. } => format!("eval/{app}/{index:02}"),
            UnitRecord::Summary { app, .. } => format!("summary/{app}"),
        }
    }
}

fn skip_outcome<R>(kind: &str) -> Outcome<R, String> {
    if kind == "skip-budget" {
        Outcome::SkippedBudget
    } else {
        Outcome::SkippedBreakerOpen
    }
}

/// One configuration row of the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigRow {
    /// Rendered configuration name (`division/features`).
    pub config: String,
    /// Equation 1 error, percent.
    pub error_pct: f64,
    /// Simulation speedup (total ÷ selected instructions).
    pub speedup: f64,
    /// Cluster count.
    pub k: u64,
}

impl ConfigRow {
    fn from_eval(e: &Evaluation) -> ConfigRow {
        ConfigRow {
            config: e.config.to_string(),
            error_pct: e.error_pct,
            speedup: e.speedup(),
            k: e.selection.k as u64,
        }
    }
}

/// One selected interval of the co-optimized configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PickRow {
    /// First invocation of the interval.
    pub start: u64,
    /// One past the last invocation.
    pub end: u64,
    /// Representation ratio (Eq. 1 weight), renormalized over
    /// healthy intervals when any were quarantined.
    pub ratio: f64,
}

/// Per-application outcome of the sweep — the journaled `summary/`
/// unit and the row source of the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSweepSummary {
    /// App name.
    pub app: String,
    /// `ok`, `degraded` (breaker/eval failures), `budget`
    /// (units skipped by the run budget), or `profile-failed`.
    pub status: String,
    /// Rendered profile error when `status == "profile-failed"`.
    pub profile_error: Option<String>,
    /// Configurations evaluated successfully.
    pub evaluated: u64,
    /// Configurations that ran and failed.
    pub failed: u64,
    /// Configurations demoted for blowing the deadline.
    pub deadline_exceeded: u64,
    /// Configurations skipped behind the open breaker.
    pub skipped_breaker: u64,
    /// Configurations skipped after budget exhaustion.
    pub skipped_budget: u64,
    /// Virtual nanoseconds this app charged against the budget.
    pub virtual_ns: u64,
    /// Error-minimizing configuration (Figure 6 row).
    pub min_error: Option<ConfigRow>,
    /// Co-optimized configuration under the threshold (Figure 7 row).
    pub co_opt: Option<ConfigRow>,
    /// The co-optimized configuration's selected intervals.
    pub picks: Vec<PickRow>,
}

/// The sweep's final report. Everything here — including the
/// rendering — is a pure function of the work done, so a resumed run
/// reproduces it bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Co-optimization threshold applied, percent.
    pub threshold_pct: f64,
    /// Per-app summaries, in sweep order.
    pub apps: Vec<AppSweepSummary>,
    /// Apps whose status is not `ok`, in sweep order.
    pub degraded_apps: Vec<String>,
    /// Mean co-opt error over contributing apps (renormalized: the
    /// mean divides by the contributing count, not the app count).
    pub mean_error_pct: f64,
    /// Mean co-opt speedup over contributing apps.
    pub mean_speedup: f64,
    /// Apps contributing to the means.
    pub contributing_apps: u64,
    /// Units actually run (fresh or replayed-as-run).
    pub tasks_run: u64,
    /// Cumulative virtual nanoseconds charged.
    pub virtual_ns_spent: u64,
    /// True when the run budget cut the sweep short.
    pub budget_exhausted: bool,
    /// Static estimate vs simulated time, present only when
    /// pre-screening was enabled ([`SweepOptions::prescreen`]). An
    /// unscreened run renders byte-identically to one produced
    /// before this field existed.
    pub prescreen: Option<PrescreenReport>,
}

impl SweepReport {
    /// Deterministic human rendering — the text `gtpin explore`
    /// prints and the kill-and-resume smoke diffs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "exploration sweep: {} app(s), co-opt threshold {:.2}%\n",
            self.apps.len(),
            self.threshold_pct
        ));
        out.push_str(&format!(
            "{:28} {:14} {:>5} {:>5} {:>5}  {}\n",
            "app", "status", "evals", "fail", "skip", "co-opt config / error% / speedup / k"
        ));
        for app in &self.apps {
            let co = match &app.co_opt {
                Some(row) => format!(
                    "{} / {:.3}% / {:.1}x / k={}",
                    row.config, row.error_pct, row.speedup, row.k
                ),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:28} {:14} {:>5} {:>5} {:>5}  {}\n",
                app.app,
                app.status,
                app.evaluated,
                app.failed + app.deadline_exceeded,
                app.skipped_breaker + app.skipped_budget,
                co
            ));
            for p in &app.picks {
                out.push_str(&format!(
                    "  simulate invocations [{:>6}, {:>6})  ratio {:.2}%\n",
                    p.start,
                    p.end,
                    p.ratio * 100.0
                ));
            }
        }
        if !self.degraded_apps.is_empty() {
            out.push_str(&format!("degraded: {}\n", self.degraded_apps.join(", ")));
        }
        if self.budget_exhausted {
            out.push_str(&format!(
                "run budget exhausted: partial results after {} task(s), {} virtual ns\n",
                self.tasks_run, self.virtual_ns_spent
            ));
        }
        out.push_str(&format!(
            "mean co-opt error {:.3}%  mean speedup {:.1}x  (over {} contributing app(s))\n",
            self.mean_error_pct, self.mean_speedup, self.contributing_apps
        ));
        if let Some(prescreen) = &self.prescreen {
            out.push_str(&prescreen.render());
        }
        out
    }
}

/// Volatile side-channel of one run — differs between a fresh and a
/// resumed run, so it is *never* part of the report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Units replayed from the journal.
    pub resumed_units: u64,
    /// Units executed fresh this run.
    pub executed_units: u64,
    /// What recovery found (resume runs only).
    pub recovery: Option<Recovery>,
}

/// A finished sweep: the deterministic report plus volatile stats.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The deterministic final report.
    pub report: SweepReport,
    /// Fresh/replayed accounting for this particular run.
    pub stats: SweepStats,
}

/// The journal-backed unit cache plus append half of a run.
struct UnitStore {
    journal: Option<Journal>,
    cache: BTreeMap<String, UnitRecord>,
    stats: SweepStats,
}

impl UnitStore {
    fn open(opts: &SweepOptions) -> Result<UnitStore, JournalError> {
        let mut stats = SweepStats::default();
        let (journal, cache) = match &opts.journal_dir {
            None => (None, BTreeMap::new()),
            Some(dir) if opts.resume => {
                let (journal, recovery) = Journal::recover(dir)?;
                let mut cache = BTreeMap::new();
                for payload in &recovery.records {
                    let text = String::from_utf8_lossy(payload);
                    let record: UnitRecord =
                        serde_json::from_str(&text).map_err(|e| JournalError::NotAJournal {
                            path: dir.clone(),
                            reason: format!("unparseable sweep record: {e}"),
                        })?;
                    cache.insert(record.key(), record);
                }
                stats.recovery = Some(recovery);
                (Some(journal), cache)
            }
            Some(dir) => (Some(Journal::create(dir)?), BTreeMap::new()),
        };
        Ok(UnitStore {
            journal,
            cache,
            stats,
        })
    }

    fn cached(&self, key: &str) -> Option<&UnitRecord> {
        self.cache.get(key)
    }

    /// Persist a freshly-completed unit. No-op without a journal.
    fn commit(&mut self, record: &UnitRecord) -> Result<(), JournalError> {
        self.stats.executed_units += 1;
        gtpin_obs::counter_add("sweep.executed_units", 1);
        if let Some(journal) = &mut self.journal {
            let json = serde_json::to_string(record).map_err(|e| JournalError::NotAJournal {
                path: journal.dir().to_path_buf(),
                reason: format!("unserializable sweep record: {e}"),
            })?;
            journal.append(json.as_bytes())?;
        }
        Ok(())
    }

    fn note_replayed(&mut self) {
        self.stats.resumed_units += 1;
        gtpin_obs::counter_add("sweep.resumed_units", 1);
    }
}

fn meta_record(opts: &SweepOptions, apps: &[String]) -> UnitRecord {
    UnitRecord::Meta {
        threshold_pct: opts.threshold_pct,
        capture_seed: opts.capture_seed,
        deadline_virtual_ns: opts.supervisor.deadline_virtual_ns.unwrap_or(0),
        breaker_threshold: opts.supervisor.breaker_threshold,
        max_tasks: opts.supervisor.max_tasks.unwrap_or(0),
        max_virtual_ns: opts.supervisor.max_virtual_ns.unwrap_or(0),
        batch: opts.supervisor.batch as u64,
        apps: apps.to_vec(),
    }
}

/// Run (or resume) the exploration sweep over `programs`.
///
/// # Errors
///
/// Returns [`JournalError`] when the journal cannot be created,
/// recovered, or appended to — including
/// [`JournalError::InjectedCrash`] when the `journal.crash` fault
/// simulates process death mid-append (the sweep is then considered
/// interrupted, exactly like a `SIGKILL`, and can be resumed).
/// Unit-level failures (profile errors, selection errors, deadline
/// and budget skips) are *not* errors: they degrade gracefully into
/// the report.
pub fn run_sweep(
    programs: &[HostProgram],
    opts: &SweepOptions,
) -> Result<SweepOutcome, JournalError> {
    let mut span = gtpin_obs::span("sweep.run");
    if span.active() {
        span.arg_u64("apps", programs.len() as u64);
        span.arg_u64("threads", opts.threads as u64);
    }
    let app_names: Vec<String> = programs.iter().map(|p| p.name.clone()).collect();
    let mut store = UnitStore::open(opts)?;

    // Fingerprint gate: resuming under different options would not
    // reproduce the interrupted run.
    let meta = meta_record(opts, &app_names);
    match store.cached("meta").cloned() {
        Some(found) if found != meta => {
            let dir = opts.journal_dir.clone().unwrap_or_default();
            return Err(JournalError::NotAJournal {
                path: dir,
                reason: "journal was written under different sweep options \
                         (threshold, seed, budget, or app list changed)"
                    .into(),
            });
        }
        Some(_) => store.note_replayed(),
        None => store.commit(&meta)?,
    }

    let mut supervisor = Supervisor::new(opts.supervisor.clone());
    let mut summaries: Vec<AppSweepSummary> = Vec::with_capacity(programs.len());

    // Static pre-screening prices every kernel before any profiling;
    // samples pair those estimates with the simulated runtimes as the
    // profiles land. Purely derived — nothing here is journaled.
    let estimator = opts
        .prescreen
        .then(|| StaticEstimator::build(programs, &opts.gpu));
    let mut samples: Vec<PrescreenSample> = Vec::new();

    for program in programs {
        let app = program.name.clone();
        let summary = sweep_one_app(
            program,
            &app,
            opts,
            &mut supervisor,
            &mut store,
            estimator.as_ref().map(|e| (e, &mut samples)),
        )?;
        summaries.push(summary);
    }

    let degraded_apps: Vec<String> = summaries
        .iter()
        .filter(|s| s.status != "ok")
        .map(|s| s.app.clone())
        .collect();
    let (mut err_sum, mut speedup_sum, mut contributing) = (0.0f64, 0.0f64, 0u64);
    for s in &summaries {
        if let Some(row) = &s.co_opt {
            err_sum += row.error_pct;
            speedup_sum += row.speedup;
            contributing += 1;
        }
    }
    let n = (contributing.max(1)) as f64;
    let sup_report = supervisor.report();
    let report = SweepReport {
        threshold_pct: opts.threshold_pct,
        apps: summaries,
        degraded_apps,
        mean_error_pct: err_sum / n,
        mean_speedup: speedup_sum / n,
        contributing_apps: contributing,
        tasks_run: sup_report.tasks_run,
        virtual_ns_spent: sup_report.virtual_ns_spent,
        budget_exhausted: sup_report.budget_exhausted,
        prescreen: estimator
            .as_ref()
            .and_then(|_| PrescreenReport::from_samples(&samples)),
    };
    Ok(SweepOutcome {
        report,
        stats: store.stats,
    })
}

/// Profile, evaluate, and summarize one app, journaling each unit.
/// When pre-screening is on, `prescreen` collects the app's static
/// estimate next to its simulated runtime once the profile resolves.
fn sweep_one_app(
    program: &HostProgram,
    app: &str,
    opts: &SweepOptions,
    supervisor: &mut Supervisor,
    store: &mut UnitStore,
    prescreen: Option<(&StaticEstimator, &mut Vec<PrescreenSample>)>,
) -> Result<AppSweepSummary, JournalError> {
    // Fast path: the whole app is already journaled. Its units still
    // replay through the supervisor so breaker/budget state (and the
    // report totals) walk the identical trajectory.
    let profile_key = format!("profile/{app}");
    let cached_profile: Option<Outcome<AppData, String>> =
        store.cached(&profile_key).map(|r| match r {
            UnitRecord::ProfileDone {
                virtual_ns, data, ..
            } => Outcome::Done {
                value: data.clone(),
                virtual_ns: *virtual_ns,
            },
            UnitRecord::ProfileFailed { error, .. } => Outcome::Failed(error.clone()),
            UnitRecord::ProfileSkipped { kind, .. } => skip_outcome(kind),
            other => Outcome::Failed(format!("wrong record under {profile_key}: {other:?}")),
        });
    let profile_was_cached = cached_profile.is_some();

    let profile_outcomes = supervisor.run_units(
        app,
        std::slice::from_ref(program),
        1,
        |_| cached_profile.clone(),
        |_, program| {
            profile_app(program, opts.gpu, opts.capture_seed)
                .map(|profiled| {
                    let virtual_ns = (profiled.data.total_seconds() * 1e9) as u64;
                    (profiled.data, virtual_ns)
                })
                .map_err(|e| e.to_string())
        },
    );
    let profile_outcome = profile_outcomes
        .into_iter()
        .next()
        .expect("one profile unit per app");
    if profile_was_cached {
        store.note_replayed();
    } else {
        store.commit(&match &profile_outcome {
            Outcome::Done { value, virtual_ns } => UnitRecord::ProfileDone {
                app: app.to_string(),
                virtual_ns: *virtual_ns,
                data: value.clone(),
            },
            Outcome::Failed(e) => UnitRecord::ProfileFailed {
                app: app.to_string(),
                error: e.clone(),
            },
            other => UnitRecord::ProfileSkipped {
                app: app.to_string(),
                kind: other.kind().to_string(),
            },
        })?;
    }

    let (data, profile_ns) = match profile_outcome {
        Outcome::Done { value, virtual_ns } => (value, virtual_ns),
        Outcome::Failed(error) => {
            return finish_summary(
                store,
                AppSweepSummary {
                    app: app.to_string(),
                    status: "profile-failed".into(),
                    profile_error: Some(error),
                    evaluated: 0,
                    failed: 0,
                    deadline_exceeded: 0,
                    skipped_breaker: 0,
                    skipped_budget: 0,
                    virtual_ns: 0,
                    min_error: None,
                    co_opt: None,
                    picks: Vec::new(),
                },
            );
        }
        other => {
            return finish_summary(
                store,
                AppSweepSummary {
                    app: app.to_string(),
                    status: "budget".into(),
                    profile_error: None,
                    evaluated: 0,
                    failed: 0,
                    deadline_exceeded: 0,
                    skipped_breaker: 0,
                    skipped_budget: u64::from(other.kind() == "skip-budget"),
                    virtual_ns: 0,
                    min_error: None,
                    co_opt: None,
                    picks: Vec::new(),
                },
            );
        }
    };

    // The profile resolved (fresh or replayed), so the simulated
    // runtime exists — pair it with the static estimate. This sits
    // before the evaluations on purpose: a fully-journaled app still
    // contributes a prescreen sample on resume.
    if let Some((estimator, samples)) = prescreen {
        samples.push(estimator.sample(app, &data));
    }

    // The 30 configuration evaluations, in fixed `all_configs`
    // order. Tables are built lazily: a fully-journaled app never
    // pays for trace division again.
    let approx = crate::interval::default_approx_target(&data);
    let configs = all_configs(approx);
    let mut tables: Vec<SealedTable> = Vec::new();
    let mut table_index: Vec<usize> = Vec::with_capacity(configs.len());
    let all_cached =
        (0..configs.len()).all(|i| store.cached(&format!("eval/{app}/{i:02}")).is_some());
    if !all_cached {
        for cfg in &configs {
            let ti = match tables.iter().position(|t| t.scheme() == cfg.interval) {
                Some(ti) => ti,
                None => {
                    tables.push(SealedTable::build(&data, cfg.interval));
                    tables.len() - 1
                }
            };
            table_index.push(ti);
        }
    }

    // Dispatch in explicit `batch`-sized chunks so each chunk's
    // outcomes are journaled before the next chunk starts — that is
    // the crash granularity — while the supervisor sees the same
    // round boundaries an uninterrupted run would.
    let batch = supervisor.config().batch;
    let mut outcomes: Vec<Outcome<Evaluation, String>> = Vec::with_capacity(configs.len());
    let mut chunk_start = 0usize;
    while chunk_start < configs.len() {
        let chunk_end = (chunk_start + batch).min(configs.len());
        let chunk = &configs[chunk_start..chunk_end];
        // Verify the memoized tables at the chunk boundary — the
        // serial point between dispatches. Tables live across all 30
        // evaluations; a corrupted one heals here (rebuilt bitwise
        // identical from `data`) before any worker reads it. The
        // schedule is chunk-count-driven, so it replays identically
        // at every thread count.
        for table in &mut tables {
            table.verified(&data);
        }
        let chunk_outcomes = supervisor.run_units(
            app,
            chunk,
            opts.threads,
            |j| {
                let i = chunk_start + j;
                store
                    .cached(&format!("eval/{app}/{i:02}"))
                    .map(|r| match r {
                        UnitRecord::EvalDone {
                            virtual_ns,
                            evaluation,
                            ..
                        } => Outcome::Done {
                            value: evaluation.clone(),
                            virtual_ns: *virtual_ns,
                        },
                        UnitRecord::EvalFailed { error, .. } => Outcome::Failed(error.clone()),
                        UnitRecord::EvalDeadline { virtual_ns, .. } => Outcome::DeadlineExceeded {
                            virtual_ns: *virtual_ns,
                        },
                        UnitRecord::EvalSkipped { kind, .. } => skip_outcome(kind),
                        other => Outcome::Failed(format!("wrong record under eval: {other:?}")),
                    })
            },
            |j, cfg| {
                let i = chunk_start + j;
                evaluate_config_with_table(
                    &data,
                    *cfg,
                    tables[table_index[i]].table(),
                    &opts.simpoint,
                    FeatureWeighting::InstructionWeighted,
                )
                .map(|e| {
                    // Virtual cost model: one virtual ns per dynamic
                    // instruction the evaluation had to weigh.
                    let virtual_ns = e.total_instructions;
                    (e, virtual_ns)
                })
                .map_err(|e| e.to_string())
            },
        );
        for (j, outcome) in chunk_outcomes.iter().enumerate() {
            let i = chunk_start + j;
            let key = format!("eval/{app}/{i:02}");
            if store.cached(&key).is_some() {
                store.note_replayed();
                continue;
            }
            let index = i as u64;
            store.commit(&match outcome {
                Outcome::Done { value, virtual_ns } => UnitRecord::EvalDone {
                    app: app.to_string(),
                    index,
                    virtual_ns: *virtual_ns,
                    evaluation: value.clone(),
                },
                Outcome::Failed(e) => UnitRecord::EvalFailed {
                    app: app.to_string(),
                    index,
                    error: e.clone(),
                },
                Outcome::DeadlineExceeded { virtual_ns } => UnitRecord::EvalDeadline {
                    app: app.to_string(),
                    index,
                    virtual_ns: *virtual_ns,
                },
                other => UnitRecord::EvalSkipped {
                    app: app.to_string(),
                    index,
                    kind: other.kind().to_string(),
                },
            })?;
        }
        outcomes.extend(chunk_outcomes);
        chunk_start = chunk_end;
    }

    // Derive the app summary from the outcome sequence.
    let summary_key = format!("summary/{app}");
    if let Some(UnitRecord::Summary { summary, .. }) = store.cached(&summary_key) {
        let summary = summary.clone();
        store.note_replayed();
        return Ok(summary);
    }
    let mut evaluations: Vec<Evaluation> = Vec::new();
    let (mut failed, mut deadline, mut skip_breaker, mut skip_budget) = (0u64, 0u64, 0u64, 0u64);
    let mut eval_ns = 0u64;
    for outcome in &outcomes {
        eval_ns += outcome.virtual_ns();
        match outcome {
            Outcome::Done { value, .. } => evaluations.push(value.clone()),
            Outcome::Failed(_) => failed += 1,
            Outcome::DeadlineExceeded { .. } => deadline += 1,
            Outcome::SkippedBreakerOpen => skip_breaker += 1,
            Outcome::SkippedBudget => skip_budget += 1,
        }
    }
    let exploration = Exploration {
        app: app.to_string(),
        evaluations,
    };
    let min_error = exploration.min_error().map(ConfigRow::from_eval);
    let co_opt = exploration.co_optimize(opts.threshold_pct);
    let picks = co_opt
        .map(|e| {
            e.selection
                .picks
                .iter()
                .map(|p| {
                    let iv = e.intervals[p.interval];
                    PickRow {
                        start: iv.start as u64,
                        end: iv.end as u64,
                        ratio: p.ratio,
                    }
                })
                .collect()
        })
        .unwrap_or_default();
    let co_opt = co_opt.map(ConfigRow::from_eval);
    let status = if skip_budget > 0 {
        "budget"
    } else if skip_breaker > 0 || failed + deadline > 0 || supervisor.group_degraded(app) {
        "degraded"
    } else {
        "ok"
    };
    finish_summary(
        store,
        AppSweepSummary {
            app: app.to_string(),
            status: status.into(),
            profile_error: None,
            evaluated: exploration.evaluations.len() as u64,
            failed,
            deadline_exceeded: deadline,
            skipped_breaker: skip_breaker,
            skipped_budget: skip_budget,
            virtual_ns: profile_ns + eval_ns,
            min_error,
            co_opt,
            picks,
        },
    )
}

/// Journal and return a freshly-derived summary.
fn finish_summary(
    store: &mut UnitStore,
    summary: AppSweepSummary,
) -> Result<AppSweepSummary, JournalError> {
    // A cached summary is handled by the caller; reaching here means
    // the summary was derived fresh this run.
    store.commit(&UnitRecord::Summary {
        app: summary.app.clone(),
        summary: summary.clone(),
    })?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::ExecSize;
    use ocl_runtime::api::{ArgValue, KernelId, SyncCall};
    use ocl_runtime::host::{HostScriptBuilder, ProgramSource};
    use ocl_runtime::ir::{IrOp, KernelIr, TripCount};

    fn program(name: &str, epochs: u64) -> HostProgram {
        let mut k = KernelIr::new("w", 1);
        k.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            IrOp::Compute {
                ops: 10,
                width: ExecSize::S16,
            },
            IrOp::LoopEnd,
        ];
        let mut b = HostScriptBuilder::new(name, ProgramSource { kernels: vec![k] });
        for e in 0..epochs {
            for i in 0..3u64 {
                b.set_arg(KernelId(0), 0, ArgValue::Scalar(5 + 3 * ((e + i) % 3)));
                b.launch(KernelId(0), 128);
            }
            b.sync(SyncCall::Finish);
        }
        b.finish().unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gtpin-sweep-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sweep_without_journal_produces_full_report() {
        let programs = vec![program("sw-a", 3), program("sw-b", 4)];
        let out = run_sweep(&programs, &SweepOptions::default()).unwrap();
        assert_eq!(out.report.apps.len(), 2);
        for app in &out.report.apps {
            assert_eq!(app.status, "ok");
            assert_eq!(app.evaluated, 30);
            assert!(app.co_opt.is_some());
        }
        assert!(out.report.degraded_apps.is_empty());
        assert_eq!(out.report.contributing_apps, 2);
        assert!(!out.report.render().is_empty());
        assert_eq!(out.stats.resumed_units, 0);
        // meta + 2 × (profile + 30 evals + summary)
        assert_eq!(out.stats.executed_units, 1 + 2 * 32);
    }

    #[test]
    fn journaled_rerun_replays_everything_bit_identically() {
        let programs = vec![program("sw-j", 3)];
        let dir = tmpdir("rerun");
        let fresh = run_sweep(
            &programs,
            &SweepOptions {
                journal_dir: Some(dir.clone()),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let resumed = run_sweep(
            &programs,
            &SweepOptions {
                journal_dir: Some(dir.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.report, fresh.report);
        assert_eq!(resumed.report.render(), fresh.report.render());
        assert_eq!(
            serde_json::to_string(&resumed.report).unwrap(),
            serde_json::to_string(&fresh.report).unwrap()
        );
        assert_eq!(resumed.stats.executed_units, 0, "everything cached");
        assert_eq!(resumed.stats.resumed_units, 1 + 32);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_under_different_options_is_rejected() {
        let programs = vec![program("sw-m", 3)];
        let dir = tmpdir("meta");
        run_sweep(
            &programs,
            &SweepOptions {
                journal_dir: Some(dir.clone()),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let err = run_sweep(
            &programs,
            &SweepOptions {
                journal_dir: Some(dir.clone()),
                resume: true,
                threshold_pct: 9.0,
                ..SweepOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::NotAJournal { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_exhaustion_degrades_to_partial_report() {
        let programs = vec![program("sw-ba", 3), program("sw-bb", 3)];
        let opts = SweepOptions {
            supervisor: SupervisorConfig {
                max_tasks: Some(10),
                batch: 8,
                ..SupervisorConfig::default()
            },
            ..SweepOptions::default()
        };
        let out = run_sweep(&programs, &opts).unwrap();
        assert!(out.report.budget_exhausted);
        // Rounds are atomic: profile (1) + two full eval rounds of 8
        // run before the between-round budget gate fires at 17 ≥ 10.
        assert_eq!(out.report.tasks_run, 17);
        let statuses: Vec<&str> = out.report.apps.iter().map(|a| a.status.as_str()).collect();
        assert!(statuses.contains(&"budget"), "statuses: {statuses:?}");
        assert!(!out.report.degraded_apps.is_empty());
        assert!(out.report.render().contains("run budget exhausted"));
    }

    #[test]
    fn prescreen_adds_report_without_changing_selections() {
        let programs = vec![program("sw-pa", 3), program("sw-pb", 5)];
        let plain = run_sweep(
            &programs,
            &SweepOptions {
                prescreen: false,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let screened = run_sweep(
            &programs,
            &SweepOptions {
                prescreen: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(plain.report.prescreen.is_none());
        let pre = screened.report.prescreen.as_ref().unwrap();
        assert_eq!(pre.rows.len(), 2);
        for row in &pre.rows {
            assert!(row.est_seconds > 0.0, "{row:?}");
            assert!(row.simulated_seconds > 0.0, "{row:?}");
        }
        // Pre-screening never changes what the sweep selects.
        assert_eq!(screened.report.apps, plain.report.apps);
        assert_eq!(screened.stats.executed_units, plain.stats.executed_units);
        // The unscreened render is a strict prefix of the screened
        // one: prescreen only appends.
        let plain_text = plain.report.render();
        let screened_text = screened.report.render();
        assert!(screened_text.starts_with(&plain_text));
        assert!(screened_text.contains("prescreen rank correlation"));
    }

    #[test]
    fn prescreen_toggles_freely_across_resume() {
        // A journal written without pre-screening resumes with it on
        // (and vice versa): the prescreen section is derived, never
        // journaled, and the selection rows stay bit-identical.
        let programs = vec![program("sw-pr", 3), program("sw-ps", 4)];
        let fresh_screened = run_sweep(
            &programs,
            &SweepOptions {
                prescreen: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let dir = tmpdir("prescreen");
        let journaled_plain = run_sweep(
            &programs,
            &SweepOptions {
                prescreen: false,
                journal_dir: Some(dir.clone()),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let resumed_screened = run_sweep(
            &programs,
            &SweepOptions {
                prescreen: true,
                journal_dir: Some(dir.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed_screened.stats.executed_units, 0);
        assert_eq!(resumed_screened.report, fresh_screened.report);
        assert_eq!(
            resumed_screened.report.render(),
            fresh_screened.report.render()
        );
        assert_eq!(resumed_screened.report.apps, journaled_plain.report.apps);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_partial_report_is_resume_stable() {
        let programs = vec![program("sw-bp", 3), program("sw-bq", 3)];
        let opts = |dir: Option<PathBuf>, resume: bool| SweepOptions {
            supervisor: SupervisorConfig {
                max_tasks: Some(12),
                ..SupervisorConfig::default()
            },
            journal_dir: dir,
            resume,
            ..SweepOptions::default()
        };
        let baseline = run_sweep(&programs, &opts(None, false)).unwrap();
        let dir = tmpdir("budget");
        let journaled = run_sweep(&programs, &opts(Some(dir.clone()), false)).unwrap();
        assert_eq!(journaled.report, baseline.report);
        let resumed = run_sweep(&programs, &opts(Some(dir.clone()), true)).unwrap();
        assert_eq!(resumed.report, baseline.report);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
