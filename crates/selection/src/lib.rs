//! # subset-select
//!
//! GPU simulation subset selection — Section V of *Fast
//! Computational GPU Design with GT-Pin* (IISWC 2015).
//!
//! Given one native GT-Pin profiling run (no simulation required),
//! the library divides an application's execution into intervals
//! ([`interval`], Table II), summarizes each interval as an
//! instruction-weighted feature vector ([`features`], Table III),
//! clusters with SimPoint (max 10 clusters), and selects one
//! representative interval per cluster with a representation ratio.
//! Whole-program seconds-per-instruction is projected as
//! Σ ratio × interval-SPI and scored with Equation 1
//! ([`evaluate`]).
//!
//! On top of that sit the paper's three headline experiments:
//!
//! * [`explore`] — evaluate all 30 interval/feature configurations
//!   per app; pick the error-minimizing one (Figure 6) or co-optimize
//!   error and selection size under a threshold (Figure 7);
//! * [`validate`] — reuse one trial's selections across trials,
//!   frequencies, and architecture generations (Figure 8);
//! * [`pipeline`] — the end-to-end native-profile → dataset flow,
//!   built on CoFluent-style record/replay.

pub mod data;
pub mod evaluate;
pub mod explore;
pub mod features;
pub mod interval;
pub mod pipeline;
pub mod prescreen;
pub mod sweep;
pub mod validate;

pub use data::{AppData, InvRecord, KernelShape, MergeError};
pub use evaluate::{
    all_configs, error_pct, evaluate_config, evaluate_config_weighted, evaluate_config_with_table,
    projected_spi, Evaluation, SelectionConfig,
};
pub use explore::{threshold_sweep, Exploration, ThresholdPoint};
pub use features::{
    feature_vector, feature_vector_weighted, feature_vectors, feature_vectors_weighted,
    FeatureKind, FeatureWeighting,
};
pub use interval::{
    build_intervals, default_approx_target, Interval, IntervalScheme, SchemeTable, SealedTable,
};
pub use pipeline::{profile_app, replay_timings, PipelineError, ProfiledApp};
pub use prescreen::{PrescreenReport, PrescreenRow, PrescreenSample, StaticEstimator};
pub use sweep::{
    run_sweep, AppSweepSummary, SweepOptions, SweepOutcome, SweepReport, SweepStats, UnitRecord,
};
pub use validate::{
    cross_error_pct, validate_against, validate_against_with_threads, ValidationPoint,
};
