//! Validation of selections across trials, frequencies, and
//! architecture generations — Figure 8 of the paper.
//!
//! One set of selections (intervals + representation ratios) is made
//! from a single recorded trial; replays of the same recording on
//! other trials/machines produce new per-invocation timings, and the
//! old selections must still project the new whole-program SPI.

use serde::{Deserialize, Serialize};

use crate::data::AppData;
use crate::evaluate::{error_pct, projected_spi, Evaluation};

/// The error of applying an existing selection to a new trial's
/// timing data.
///
/// `new_data` must be the same recording replayed (same invocation
/// order and counts, new seconds); the intervals and ratios of
/// `selection` are reused verbatim.
pub fn cross_error_pct(selection: &Evaluation, new_data: &AppData) -> f64 {
    let measured = new_data.measured_spi();
    let projected = projected_spi(new_data, &selection.intervals, &selection.selection);
    error_pct(measured, projected)
}

/// One validation row of Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// What varied ("trial 3", "700MHz", "Haswell HD4600").
    pub label: String,
    /// Error of the original selections on the new execution
    /// (percent).
    pub error_pct: f64,
}

/// Validate a selection against several replayed executions.
///
/// Replays are independent of one another, so they fan out across
/// `GTPIN_THREADS` workers; points come back in replay order either
/// way.
pub fn validate_against(
    selection: &Evaluation,
    replays: &[(String, AppData)],
) -> Vec<ValidationPoint> {
    validate_against_with_threads(selection, replays, gtpin_par::configured_threads())
}

/// [`validate_against`] with an explicit worker count; bitwise
/// identical at every count.
pub fn validate_against_with_threads(
    selection: &Evaluation,
    replays: &[(String, AppData)],
    threads: usize,
) -> Vec<ValidationPoint> {
    gtpin_par::parallel_map(replays, threads, |_, (label, data)| ValidationPoint {
        label: label.clone(),
        error_pct: cross_error_pct(selection, data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::test_support::synthetic_app;
    use crate::evaluate::{evaluate_config, SelectionConfig};
    use crate::features::FeatureKind;
    use crate::interval::IntervalScheme;
    use simpoint::SimpointConfig;

    fn base_selection() -> (Evaluation, AppData) {
        let d = synthetic_app(5, 6);
        let e = evaluate_config(
            &d,
            SelectionConfig {
                interval: IntervalScheme::SyncBounded,
                features: FeatureKind::Bb,
            },
            &SimpointConfig::default(),
        )
        .unwrap();
        (e, d)
    }

    #[test]
    fn same_data_reproduces_same_error() {
        let (e, d) = base_selection();
        let err = cross_error_pct(&e, &d);
        assert!((err - e.error_pct).abs() < 1e-9);
    }

    #[test]
    fn uniform_slowdown_cancels_in_relative_error() {
        // A frequency change scaling every invocation equally leaves
        // relative projection error unchanged.
        let (e, d) = base_selection();
        let mut slow = d.clone();
        for inv in &mut slow.invocations {
            inv.seconds *= 3.0;
        }
        let err = cross_error_pct(&e, &slow);
        assert!((err - e.error_pct).abs() < 1e-6, "{err} vs {}", e.error_pct);
    }

    #[test]
    fn selective_perturbation_of_unselected_work_shows_up_as_error() {
        let (e, d) = base_selection();
        let selected: std::collections::HashSet<usize> = e
            .selection
            .picks
            .iter()
            .flat_map(|p| {
                let iv = e.intervals[p.interval];
                iv.start..iv.end
            })
            .collect();
        let mut skewed = d.clone();
        for inv in &mut skewed.invocations {
            if !selected.contains(&(inv.index as usize)) {
                inv.seconds *= 4.0;
            }
        }
        let err = cross_error_pct(&e, &skewed);
        assert!(
            err > e.error_pct + 5.0,
            "skewing only unselected intervals must hurt: {err} vs {}",
            e.error_pct
        );
    }

    #[test]
    fn validate_against_labels_every_replay() {
        let (e, d) = base_selection();
        let replays = vec![
            ("trial 2".to_string(), d.clone()),
            ("trial 3".to_string(), d),
        ];
        let points = validate_against(&e, &replays);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "trial 2");
    }
}
