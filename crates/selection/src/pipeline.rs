//! The end-to-end workflow of the paper, as one call:
//!
//! 1. run the application natively once under CoFluent, capturing a
//!    **recording** (API order + timings) — the "measured" side,
//! 2. replay the recording with **GT-Pin attached** to collect
//!    instruction/block/memory profiles (the 2–10× profiling run),
//! 3. join the two by launch order into [`AppData`], ready for
//!    interval division, feature construction, and SimPoint.
//!
//! Validation replays (other trials, frequencies, generations) rerun
//! step 1 on a differently-configured device and swap the timings
//! into the existing dataset.

use gpu_device::{Gpu, GpuConfig};
use gtpin_core::{GtPin, ProgramProfile, RewriteConfig};
use ocl_runtime::cofluent::{CofluentReport, Recording};
use ocl_runtime::host::HostProgram;
use ocl_runtime::runtime::{OclRuntime, RunError};

use crate::data::{AppData, MergeError};

/// Errors from the profiling pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// A run failed.
    Run(RunError),
    /// Profile and timing data did not line up.
    Merge(MergeError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Run(e) => write!(f, "run failed: {e}"),
            PipelineError::Merge(e) => write!(f, "merge failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<RunError> for PipelineError {
    fn from(e: RunError) -> PipelineError {
        PipelineError::Run(e)
    }
}

impl From<MergeError> for PipelineError {
    fn from(e: MergeError) -> PipelineError {
        PipelineError::Merge(e)
    }
}

/// Everything the one-time native profiling pass produces.
#[derive(Debug)]
pub struct ProfiledApp {
    /// The CoFluent recording (replayable on any device config).
    pub recording: Recording,
    /// Joined profile + timing dataset for selection.
    pub data: AppData,
    /// The raw GT-Pin profile (characterization uses this).
    pub profile: ProgramProfile,
    /// The raw CoFluent report of the native (timing) run.
    pub cofluent: CofluentReport,
}

/// Profile an application once: capture + instrumented replay +
/// join.
///
/// `capture_seed` is the natural API ordering of the first trial;
/// the GPU config's `trial_seed` drives timing noise.
///
/// # Errors
///
/// Returns [`PipelineError`] when any run fails or the data cannot
/// be joined.
pub fn profile_app(
    program: &HostProgram,
    gpu_config: GpuConfig,
    capture_seed: u64,
) -> Result<ProfiledApp, PipelineError> {
    let mut span = gtpin_obs::span("selection.profile_app");
    if span.active() {
        span.arg_str("app", program.name.clone());
    }

    // 1. Native run with CoFluent recording: measured timings.
    let mut native = OclRuntime::new(Gpu::new(gpu_config));
    let (recording, native_report) = Recording::capture(&mut native, program, capture_seed)?;

    // 2. Instrumented replay: GT-Pin counts (timing perturbed by the
    //    2–10× overhead, so timings are taken from the native run).
    let instrumented_span = gtpin_obs::span("selection.instrumented_replay");
    let mut gpu = Gpu::new(gpu_config);
    let gtpin = GtPin::new(RewriteConfig::default());
    gtpin.attach(&mut gpu);
    let mut instrumented = OclRuntime::new(gpu);
    recording.replay(&mut instrumented)?;
    let profile = gtpin.profile(&program.name);
    drop(instrumented_span);

    // 3. Join by launch order.
    let data = AppData::merge(&profile, &native_report.cofluent)?;
    if span.active() {
        span.arg_u64("invocations", data.invocations.len() as u64);
    }
    Ok(ProfiledApp {
        recording,
        data,
        profile,
        cofluent: native_report.cofluent,
    })
}

/// Replay a recording natively on a (possibly different) device
/// configuration, returning its timing report — the validation side
/// of Figure 8.
///
/// # Errors
///
/// Returns [`PipelineError::Run`] when the replay fails.
pub fn replay_timings(
    recording: &Recording,
    gpu_config: GpuConfig,
) -> Result<CofluentReport, PipelineError> {
    let mut rt = OclRuntime::new(Gpu::new(gpu_config));
    let report = recording.replay(&mut rt)?;
    Ok(report.cofluent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::ExecSize;
    use ocl_runtime::api::{ArgValue, KernelId, SyncCall};
    use ocl_runtime::host::{HostScriptBuilder, ProgramSource};
    use ocl_runtime::ir::{IrOp, KernelIr, TripCount};

    fn program() -> HostProgram {
        let mut k = KernelIr::new("w", 1);
        k.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            IrOp::Compute {
                ops: 10,
                width: ExecSize::S16,
            },
            IrOp::LoopEnd,
        ];
        let mut b = HostScriptBuilder::new("pipe-app", ProgramSource { kernels: vec![k] });
        for e in 0..4u64 {
            for i in 0..3u64 {
                b.set_arg(KernelId(0), 0, ArgValue::Scalar(5 + 3 * ((e + i) % 3)));
                b.launch(KernelId(0), 128);
            }
            b.sync(SyncCall::Finish);
        }
        b.finish().unwrap()
    }

    #[test]
    fn profile_app_produces_consistent_data() {
        let p = profile_app(&program(), GpuConfig::hd4000(), 7).unwrap();
        assert_eq!(p.data.invocations.len(), 12);
        assert!(p.data.total_instructions() > 0);
        assert!(p.data.total_seconds() > 0.0);
        // Profile counts joined with native timings, same order.
        for (inv, prof) in p.data.invocations.iter().zip(&p.profile.invocations) {
            assert_eq!(inv.instructions, prof.instructions);
        }
        assert_eq!(p.data.invocations.last().unwrap().sync_epoch, 3);
    }

    #[test]
    fn replay_timings_matches_original_trial_when_config_identical() {
        let p = profile_app(&program(), GpuConfig::hd4000(), 7).unwrap();
        let replay = replay_timings(&p.recording, GpuConfig::hd4000()).unwrap();
        for (a, b) in p.cofluent.invocations.iter().zip(&replay.invocations) {
            assert_eq!(
                a.seconds, b.seconds,
                "same machine, same trial seed, same time"
            );
        }
    }

    #[test]
    fn different_trial_seed_changes_timings_only() {
        let p = profile_app(&program(), GpuConfig::hd4000(), 7).unwrap();
        let replay = replay_timings(&p.recording, GpuConfig::hd4000().with_trial_seed(99)).unwrap();
        let new_data = p.data.with_timings(&replay).unwrap();
        assert_eq!(
            new_data.total_instructions(),
            p.data.total_instructions(),
            "replays are architecturally deterministic"
        );
        assert_ne!(new_data.total_seconds(), p.data.total_seconds());
    }
}
