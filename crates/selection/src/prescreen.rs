//! Static pre-screening for the exploration sweep.
//!
//! When `GTPIN_PRESCREEN=1` is set (or [`SweepOptions::prescreen`]
//! is enabled directly), the sweep prices every app *before* any
//! simulation with the structural static cycle estimator
//! ([`gtpin_analyze::StaticCost`]): each kernel is compiled and
//! analyzed once, yielding a static seconds-per-instruction, and an
//! app's estimated runtime is the sum over its invocations of
//! dynamic instructions × the invoked kernel's static SPI.
//!
//! The estimates **never** change what the sweep simulates or
//! selects — final selections are bit-identical to an unscreened
//! run. They are recorded next to the simulated (profiled) runtimes
//! as a [`PrescreenReport`]: per-app estimate-vs-simulated error and
//! the Spearman rank correlation between the static ranking and the
//! simulated ranking across apps. A correlation near 1.0 means the
//! static model orders apps by cost the same way the simulator does,
//! so it can safely pre-screen which configurations deserve
//! simulation time.
//!
//! Pre-screening is a pure function of the journaled profile data
//! plus the (deterministic) static analysis, so it is *not*
//! journaled itself: a resumed sweep may toggle it freely and an
//! unscreened resume of a screened journal (or vice versa) still
//! reproduces the identical selection report.
//!
//! [`SweepOptions::prescreen`]: crate::sweep::SweepOptions::prescreen

use std::collections::BTreeMap;

use gpu_device::{jit, GpuConfig};
use ocl_runtime::host::HostProgram;
use serde::{Deserialize, Serialize};

use crate::data::AppData;

/// Truthiness of `GTPIN_PRESCREEN`, matching the observability
/// registry's convention: `1`, `true`, `yes`, and `on` enable.
pub fn prescreen_requested() -> bool {
    std::env::var("GTPIN_PRESCREEN")
        .map(|v| matches!(v.as_str(), "1" | "true" | "yes" | "on"))
        .unwrap_or(false)
}

/// Per-kernel static seconds-per-instruction for every app in the
/// sweep, computed once up front from the kernel binaries alone.
#[derive(Debug)]
pub struct StaticEstimator {
    /// app → kernel name → static seconds per dynamic instruction.
    per_app: BTreeMap<String, BTreeMap<String, f64>>,
}

impl StaticEstimator {
    /// Compile and statically analyze every kernel of every program.
    /// Kernels that fail to compile or decode simply contribute no
    /// estimate (their invocations price as zero); the sweep itself
    /// surfaces those failures through the profile unit.
    pub fn build(programs: &[HostProgram], gpu: &GpuConfig) -> StaticEstimator {
        let params = gpu.generation.topology().cost_params();
        let mut per_app = BTreeMap::new();
        for program in programs {
            let mut kernels = BTreeMap::new();
            for ir in &program.source.kernels {
                let spi = jit::compile_kernel(ir)
                    .ok()
                    .and_then(|bin| gtpin_analyze::analyze_kernel(&bin, &params).ok())
                    .map(|report| report.cost.seconds_per_instruction());
                if let Some(spi) = spi {
                    kernels.insert(ir.name.clone(), spi);
                }
            }
            per_app.insert(program.name.clone(), kernels);
        }
        StaticEstimator { per_app }
    }

    /// Pair the static estimate with the simulated (profiled) runtime
    /// for one app whose profile succeeded.
    pub fn sample(&self, app: &str, data: &AppData) -> PrescreenSample {
        let kernels = self.per_app.get(app);
        let mut est_seconds = 0.0f64;
        for inv in &data.invocations {
            let spi = data
                .kernels
                .get(inv.kernel_index as usize)
                .and_then(|shape| kernels.and_then(|k| k.get(&shape.name)))
                .copied()
                .unwrap_or(0.0);
            est_seconds += inv.instructions as f64 * spi;
        }
        PrescreenSample {
            app: app.to_string(),
            est_seconds,
            simulated_seconds: data.total_seconds(),
        }
    }
}

/// One app's static estimate next to its simulated runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrescreenSample {
    /// App name.
    pub app: String,
    /// Static estimate: Σ invocation instructions × kernel SPI.
    pub est_seconds: f64,
    /// Simulated (profiled timing model) runtime the estimate is
    /// judged against.
    pub simulated_seconds: f64,
}

/// One row of the prescreen section, in static-estimate order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrescreenRow {
    /// App name.
    pub app: String,
    /// Static estimate in seconds.
    pub est_seconds: f64,
    /// Simulated runtime in seconds.
    pub simulated_seconds: f64,
    /// Signed estimate error, percent of the simulated runtime.
    pub error_pct: f64,
    /// 1-based average rank by static estimate (descending).
    pub est_rank: f64,
    /// 1-based average rank by simulated runtime (descending).
    pub simulated_rank: f64,
}

/// The estimate-vs-simulated record the sweep report carries when
/// pre-screening is enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrescreenReport {
    /// Per-app rows, sorted by static estimate descending (the
    /// pre-screening priority order), ties broken by app name.
    pub rows: Vec<PrescreenRow>,
    /// Spearman rank correlation between the static and simulated
    /// orderings (average ranks for ties). 1.0 = identical ordering.
    pub rank_correlation: f64,
    /// Mean of |error_pct| over the rows.
    pub mean_abs_error_pct: f64,
}

impl PrescreenReport {
    /// Derive the report from per-app samples. `None` when no app
    /// produced both an estimate and a simulated runtime.
    pub fn from_samples(samples: &[PrescreenSample]) -> Option<PrescreenReport> {
        if samples.is_empty() {
            return None;
        }
        let est: Vec<f64> = samples.iter().map(|s| s.est_seconds).collect();
        let sim: Vec<f64> = samples.iter().map(|s| s.simulated_seconds).collect();
        let est_ranks = descending_average_ranks(&est);
        let sim_ranks = descending_average_ranks(&sim);
        let rank_correlation = pearson(&est_ranks, &sim_ranks);
        let mut rows: Vec<PrescreenRow> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| PrescreenRow {
                app: s.app.clone(),
                est_seconds: s.est_seconds,
                simulated_seconds: s.simulated_seconds,
                error_pct: if s.simulated_seconds > 0.0 {
                    (s.est_seconds - s.simulated_seconds) / s.simulated_seconds * 100.0
                } else {
                    0.0
                },
                est_rank: est_ranks[i],
                simulated_rank: sim_ranks[i],
            })
            .collect();
        rows.sort_by(|a, b| {
            b.est_seconds
                .total_cmp(&a.est_seconds)
                .then_with(|| a.app.cmp(&b.app))
        });
        let mean_abs_error_pct =
            rows.iter().map(|r| r.error_pct.abs()).sum::<f64>() / rows.len() as f64;
        Some(PrescreenReport {
            rows,
            rank_correlation,
            mean_abs_error_pct,
        })
    }

    /// Deterministic human rendering, appended to the sweep report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "prescreen: static estimate vs simulated time, {} app(s)\n",
            self.rows.len()
        ));
        out.push_str(&format!(
            "{:28} {:>12} {:>12} {:>9} {:>6} {:>6}\n",
            "app", "est-s", "sim-s", "err%", "e-rank", "s-rank"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:28} {:>12.4e} {:>12.4e} {:>+9.2} {:>6.1} {:>6.1}\n",
                r.app,
                r.est_seconds,
                r.simulated_seconds,
                r.error_pct,
                r.est_rank,
                r.simulated_rank
            ));
        }
        out.push_str(&format!(
            "prescreen rank correlation {:.3}  mean |error| {:.2}%\n",
            self.rank_correlation, self.mean_abs_error_pct
        ));
        out
    }
}

/// 1-based ranks by descending value, averaging ranks across ties.
fn descending_average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
    let mut ranks = vec![0.0f64; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation; applied to rank vectors this is Spearman's ρ.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        // A constant ranking carries no ordering information; report
        // zero correlation rather than dividing by zero.
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_average_ties_and_order_descending() {
        // values: 5, 3, 5, 1 → descending order [5, 5, 3, 1] → the
        // two 5s share rank (1+2)/2 = 1.5.
        let r = descending_average_ranks(&[5.0, 3.0, 5.0, 1.0]);
        assert_eq!(r, vec![1.5, 3.0, 1.5, 4.0]);
    }

    #[test]
    fn spearman_is_one_for_identical_orderings() {
        let a = [10.0, 7.0, 99.0, 1.0];
        let b = [20.0, 14.0, 200.0, 3.0];
        let ra = descending_average_ranks(&a);
        let rb = descending_average_ranks(&b);
        assert!((pearson(&ra, &rb) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_minus_one_for_reversed_orderings() {
        let a = [4.0, 3.0, 2.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let ra = descending_average_ranks(&a);
        let rb = descending_average_ranks(&b);
        assert!((pearson(&ra, &rb) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_ranking_reports_zero_correlation() {
        let ra = descending_average_ranks(&[1.0, 1.0, 1.0]);
        let rb = descending_average_ranks(&[3.0, 2.0, 1.0]);
        assert_eq!(pearson(&ra, &rb), 0.0);
    }

    #[test]
    fn empty_samples_produce_no_report() {
        assert!(PrescreenReport::from_samples(&[]).is_none());
    }

    #[test]
    fn report_rows_sort_by_estimate_descending() {
        let samples = vec![
            PrescreenSample {
                app: "small".into(),
                est_seconds: 1.0,
                simulated_seconds: 2.0,
            },
            PrescreenSample {
                app: "big".into(),
                est_seconds: 10.0,
                simulated_seconds: 8.0,
            },
        ];
        let report = PrescreenReport::from_samples(&samples).unwrap();
        assert_eq!(report.rows[0].app, "big");
        assert_eq!(report.rows[1].app, "small");
        assert!((report.rank_correlation - 1.0).abs() < 1e-12);
        // big: (10-8)/8 = +25%; small: (1-2)/2 = -50%.
        assert!((report.rows[0].error_pct - 25.0).abs() < 1e-9);
        assert!((report.rows[1].error_pct + 50.0).abs() < 1e-9);
        assert!((report.mean_abs_error_pct - 37.5).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("rank correlation 1.000"));
    }
}
