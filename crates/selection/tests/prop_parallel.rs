//! Determinism properties of the parallel exploration engine: the
//! memoized, fanned-out `Exploration::run` must be bitwise identical
//! to the serial un-memoized path at every thread count.

use proptest::prelude::*;
use simpoint::SimpointConfig;
use subset_select::{
    all_configs, evaluate_config, validate_against_with_threads, AppData, Exploration, InvRecord,
    KernelShape,
};

prop_compose! {
    fn arb_invocation(index: u32, epoch: u32)(
        kernel in 0u32..3,
        gws in prop::sample::select(vec![64u64, 256, 512]),
        trip in 1u64..20,
        spi_scale in 1u64..6,
    ) -> InvRecord {
        let instructions = 500 + trip * 120;
        InvRecord {
            index,
            kernel_index: kernel,
            global_work_size: gws,
            args_digest: trip.wrapping_mul(0x9E37_79B9) ^ kernel as u64,
            bb_counts: vec![1, trip, trip / 2 + 1],
            instructions,
            bytes_read: instructions * 3,
            bytes_written: instructions / 2,
            seconds: instructions as f64 * spi_scale as f64 * 1e-9,
            sync_epoch: epoch,
            dropped_records: 0,
            quarantined_records: 0,
        }
    }
}

fn arb_app() -> impl Strategy<Value = AppData> {
    (2u32..4, 2u32..5).prop_flat_map(|(epochs, per_epoch)| {
        let mut strategies = Vec::new();
        for e in 0..epochs {
            for i in 0..per_epoch {
                strategies.push(arb_invocation(e * per_epoch + i, e));
            }
        }
        strategies.prop_map(|invocations| AppData {
            app: "prop".into(),
            kernels: (0..3)
                .map(|k| KernelShape {
                    name: format!("k{k}"),
                    block_sizes: vec![6, 40, 12],
                })
                .collect(),
            invocations,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The memoized parallel exploration equals the serial
    /// per-config path — same selections, same SPI errors to the
    /// bit — at every thread count, and ratios always sum to one.
    #[test]
    fn exploration_is_thread_count_invariant(data in arb_app(), target in 1_000u64..50_000) {
        let sp = SimpointConfig::default();

        // Ground truth: the old path, one table build per config.
        let unmemoized: Vec<_> = all_configs(target)
            .into_iter()
            .filter_map(|cfg| evaluate_config(&data, cfg, &sp).ok())
            .collect();

        let serial = Exploration::run_with_threads(&data, target, &sp, 1);
        prop_assert_eq!(&serial.evaluations, &unmemoized, "memoization changed results");

        for threads in 2..=8usize {
            let par = Exploration::run_with_threads(&data, target, &sp, threads);
            prop_assert_eq!(par.evaluations.len(), serial.evaluations.len());
            for (p, s) in par.evaluations.iter().zip(&serial.evaluations) {
                prop_assert_eq!(p, s, "evaluation diverged at {} threads", threads);
                prop_assert_eq!(
                    p.error_pct.to_bits(),
                    s.error_pct.to_bits(),
                    "error bits at {} threads", threads
                );
                prop_assert_eq!(
                    p.projected_spi.to_bits(),
                    s.projected_spi.to_bits(),
                    "projection bits at {} threads", threads
                );
                prop_assert!((p.selection.total_ratio() - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Cross-trial validation fans out per replay; points match the
    /// serial order and values at every thread count.
    #[test]
    fn validation_is_thread_count_invariant(data in arb_app(), scale in 1u32..8) {
        let sp = SimpointConfig::default();
        let ex = Exploration::run_with_threads(&data, 10_000, &sp, 1);
        let best = ex.min_error().expect("non-empty exploration");
        let mut replay = data.clone();
        for inv in &mut replay.invocations {
            inv.seconds *= scale as f64;
        }
        let replays: Vec<(String, AppData)> = (0..5)
            .map(|t| (format!("trial {t}"), replay.clone()))
            .collect();
        let serial = validate_against_with_threads(best, &replays, 1);
        for threads in 2..=8usize {
            let par = validate_against_with_threads(best, &replays, threads);
            prop_assert_eq!(&par, &serial, "threads = {}", threads);
        }
    }
}
