//! Resume-after-crash identity: a sweep that is killed at random
//! journal-append points (seeded `journal.crash` injections) and
//! resumed until it completes must produce the **same report, bit
//! for bit**, as an uninterrupted run — at every worker count.

use std::path::PathBuf;
use std::sync::Mutex;

use gen_isa::ExecSize;
use gtpin_durable::JournalError;
use gtpin_faults::{site, FaultPlan};
use ocl_runtime::api::{ArgValue, KernelId, SyncCall};
use ocl_runtime::host::{HostProgram, HostScriptBuilder, ProgramSource};
use ocl_runtime::ir::{IrOp, KernelIr, TripCount};
use proptest::prelude::*;
use subset_select::{run_sweep, SweepOptions};

/// The faults registry is process-global; serialize every trial so
/// concurrently running tests cannot see each other's plans.
static LOCK: Mutex<()> = Mutex::new(());

fn program(name: &str, epochs: u64) -> HostProgram {
    let mut k = KernelIr::new("w", 1);
    k.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Arg(0),
        },
        IrOp::Compute {
            ops: 10,
            width: ExecSize::S16,
        },
        IrOp::LoopEnd,
    ];
    let mut b = HostScriptBuilder::new(name, ProgramSource { kernels: vec![k] });
    for e in 0..epochs {
        for i in 0..3u64 {
            b.set_arg(KernelId(0), 0, ArgValue::Scalar(5 + 3 * ((e + i) % 3)));
            b.launch(KernelId(0), 128);
        }
        b.sync(SyncCall::Finish);
    }
    b.finish().unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gtpin-prop-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(journal: Option<PathBuf>, resume: bool, threads: usize) -> SweepOptions {
    SweepOptions {
        journal_dir: journal,
        resume,
        threads,
        ..SweepOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random kill points: install a seeded `journal.crash` plan, run
    /// the sweep, and on every injected crash resume from the journal
    /// — exactly what an operator re-invoking `gtpin explore --resume`
    /// after a SIGKILL does. The completed report must equal the
    /// fresh, never-interrupted baseline bitwise (struct equality,
    /// rendered text, and serialized JSON), for workers 1..=8.
    #[test]
    fn resume_after_seeded_crashes_equals_fresh_run(
        seed in 0u64..100_000,
        rate_pct in prop::sample::select(vec![20u32, 45]),
        workers in 1usize..=8,
    ) {
        let _guard = LOCK.lock().unwrap();
        gtpin_faults::disable();

        let programs = vec![program("pr-res-a", 3), program("pr-res-b", 4)];
        let baseline = run_sweep(&programs, &opts(None, false, workers)).unwrap();

        let dir = tmpdir(&format!("{seed}-{rate_pct}-{workers}"));
        gtpin_faults::install(FaultPlan::single(
            site::JOURNAL_CRASH,
            f64::from(rate_pct) / 100.0,
            seed,
        ));
        let mut o = opts(Some(dir.clone()), false, workers);
        let mut crashes = 0u32;
        let resumed = loop {
            match run_sweep(&programs, &o) {
                Ok(out) => break out,
                Err(JournalError::InjectedCrash { .. }) => {
                    crashes += 1;
                    prop_assert!(crashes < 5_000, "crash-resume loop failed to converge");
                    o.resume = true;
                }
                Err(e) => panic!("unexpected sweep error: {e}"),
            }
        };
        let accounting = gtpin_faults::take_accounting();
        gtpin_faults::disable();
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(&resumed.report, &baseline.report);
        prop_assert_eq!(resumed.report.render(), baseline.report.render());
        prop_assert_eq!(
            serde_json::to_string(&resumed.report).unwrap(),
            serde_json::to_string(&baseline.report).unwrap()
        );
        // The schedule actually exercised the crash path (rates are
        // high enough that a silent no-injection run would be a bug),
        // and every crash the loop observed is accounted for.
        prop_assert!(crashes > 0, "no crashes injected at rate {}%", rate_pct);
        let injected: u64 = accounting
            .iter()
            .filter(|(k, _)| k.contains(site::JOURNAL_CRASH))
            .map(|(_, v)| *v)
            .sum();
        prop_assert!(injected as u32 >= crashes);
    }
}
