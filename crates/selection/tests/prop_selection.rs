//! Property tests for the selection methodology over randomly
//! generated application datasets.

use proptest::prelude::*;
use simpoint::SimpointConfig;
use subset_select::{
    all_configs, build_intervals, evaluate_config, AppData, FeatureKind, IntervalScheme, InvRecord,
    KernelShape, SelectionConfig,
};

prop_compose! {
    fn arb_invocation(index: u32, epoch: u32)(
        kernel in 0u32..3,
        gws in prop::sample::select(vec![64u64, 256, 512]),
        trip in 1u64..20,
        spi_scale in 1u64..6,
    ) -> InvRecord {
        let instructions = 500 + trip * 120;
        InvRecord {
            index,
            kernel_index: kernel,
            global_work_size: gws,
            args_digest: trip.wrapping_mul(0x9E37_79B9) ^ kernel as u64,
            bb_counts: vec![1, trip, trip / 2 + 1],
            instructions,
            bytes_read: instructions * 3,
            bytes_written: instructions / 2,
            seconds: instructions as f64 * spi_scale as f64 * 1e-9,
            sync_epoch: epoch,
            dropped_records: 0,
            quarantined_records: 0,
        }
    }
}

fn arb_app() -> impl Strategy<Value = AppData> {
    (2u32..6, 2u32..8).prop_flat_map(|(epochs, per_epoch)| {
        let mut strategies = Vec::new();
        for e in 0..epochs {
            for i in 0..per_epoch {
                strategies.push(arb_invocation(e * per_epoch + i, e));
            }
        }
        strategies.prop_map(|invocations| AppData {
            app: "prop".into(),
            kernels: (0..3)
                .map(|k| KernelShape {
                    name: format!("k{k}"),
                    block_sizes: vec![6, 40, 12],
                })
                .collect(),
            invocations,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every interval scheme partitions the trace exactly and never
    /// straddles a synchronization epoch.
    #[test]
    fn interval_schemes_partition(data in arb_app(), target in 1_000u64..50_000) {
        for scheme in [
            IntervalScheme::SyncBounded,
            IntervalScheme::ApproxInstructions(target),
            IntervalScheme::SingleKernel,
        ] {
            let intervals = build_intervals(&data, scheme);
            let mut cursor = 0;
            for iv in &intervals {
                prop_assert_eq!(iv.start, cursor);
                prop_assert!(!iv.is_empty());
                let epoch = data.invocations[iv.start].sync_epoch;
                for i in iv.start..iv.end {
                    prop_assert_eq!(data.invocations[i].sync_epoch, epoch);
                }
                cursor = iv.end;
            }
            prop_assert_eq!(cursor, data.invocations.len());
        }
    }

    /// Ratios always sum to one, errors are finite, selections are
    /// subsets — for every one of the 30 configurations.
    #[test]
    fn evaluations_are_well_formed(data in arb_app()) {
        for config in all_configs(20_000) {
            let e = evaluate_config(&data, config, &SimpointConfig::default())
                .expect("evaluates");
            prop_assert!((e.selection.total_ratio() - 1.0).abs() < 1e-9, "{}", config);
            prop_assert!(e.error_pct.is_finite());
            prop_assert!(e.selected_instructions <= e.total_instructions);
            prop_assert!(e.selection.k >= 1 && e.selection.k <= 10);
            for pick in &e.selection.picks {
                prop_assert!(pick.interval < e.intervals.len());
            }
        }
    }

    /// With one cluster per interval, projection is exact (the
    /// weighted-mean identity behind Equation 1).
    #[test]
    fn full_selection_projects_exactly(data in arb_app()) {
        let sp = SimpointConfig { max_k: 10_000, bic_fraction: 1.0, ..Default::default() };
        let e = evaluate_config(
            &data,
            SelectionConfig {
                interval: IntervalScheme::SingleKernel,
                features: FeatureKind::KnArgsGws,
            },
            &sp,
        )
        .expect("evaluates");
        if e.selection.k == e.intervals.len() {
            prop_assert!(e.error_pct < 1e-6, "error {}", e.error_pct);
        }
    }

    /// Scaling every invocation's time by a constant leaves the
    /// relative projection error unchanged (SPI error is
    /// scale-invariant).
    #[test]
    fn error_is_time_scale_invariant(data in arb_app(), scale in 1u32..20) {
        let cfg = SelectionConfig {
            interval: IntervalScheme::SyncBounded,
            features: FeatureKind::Bb,
        };
        let base = evaluate_config(&data, cfg, &SimpointConfig::default()).expect("evaluates");
        let mut scaled = data.clone();
        for inv in &mut scaled.invocations {
            inv.seconds *= scale as f64;
        }
        let after = evaluate_config(&scaled, cfg, &SimpointConfig::default()).expect("evaluates");
        prop_assert!((base.error_pct - after.error_pct).abs() < 1e-6);
    }
}
