//! Warm-state checkpoints for simulation samples.
//!
//! The CPU lineage of this paper (PinPoints, PinPlay — Patil et al.,
//! cited as \[21\]–\[23\]) pairs region selection with *checkpointing*:
//! the simulator starts each selected region from captured warm
//! state instead of a cold machine, removing the cold-start bias
//! that otherwise inflates every sample's CPI.
//!
//! In this model the microarchitectural state that matters across
//! kernel invocations is the LLC. A [`CheckpointLibrary`] replays a
//! program's launches through the *fast functional* engine once,
//! snapshotting the cache at each requested invocation boundary;
//! detailed simulation of a sample then begins from the snapshot
//! ([`restore_cache`](crate::detailed::DetailedSimulator::restore_cache)).

use std::collections::BTreeMap;

use gen_isa::DecodedKernel;
use ocl_runtime::api::ArgValue;

use crate::cache::{Cache, CacheConfig};
use crate::executor::{ExecConfig, ExecError, Executor};
use crate::memory::TraceBuffer;

/// A launch descriptor a checkpoint builder replays: what the device
/// recorded per `clEnqueueNDRangeKernel`.
#[derive(Debug, Clone)]
pub struct LaunchDescriptor {
    /// Index of the kernel binary.
    pub kernel_index: usize,
    /// Bound argument values.
    pub args: Vec<ArgValue>,
    /// Global work size.
    pub global_work_size: u64,
}

/// Warm cache snapshots keyed by invocation index: the snapshot at
/// key `i` is the machine state *before* invocation `i` runs.
#[derive(Debug)]
pub struct CheckpointLibrary {
    snapshots: BTreeMap<usize, Cache>,
}

impl CheckpointLibrary {
    /// Build checkpoints at the given invocation boundaries by
    /// replaying `launches` through the functional engine.
    ///
    /// `boundaries` is typically the set of selected-interval start
    /// indices. Index 0 yields a cold cache.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] if a launch fails to execute (a
    /// malformed binary).
    pub fn build(
        kernels: &[DecodedKernel],
        launches: &[LaunchDescriptor],
        cache_config: CacheConfig,
        boundaries: &[usize],
    ) -> Result<CheckpointLibrary, ExecError> {
        let mut wanted: Vec<usize> = boundaries.to_vec();
        wanted.sort_unstable();
        wanted.dedup();

        let mut snapshots = BTreeMap::new();
        let mut cache = Cache::new(cache_config);
        let mut trace = TraceBuffer::new();
        let mut next = wanted.iter().copied().peekable();

        for (i, launch) in launches.iter().enumerate() {
            while next.peek() == Some(&i) {
                snapshots.insert(i, cache.clone());
                next.next();
            }
            let kernel = &kernels[launch.kernel_index];
            Executor {
                cache: &mut cache,
                trace: &mut trace,
                config: ExecConfig::default(),
            }
            .execute_launch(kernel, &launch.args, launch.global_work_size)?;
        }
        // Boundaries at or past the end of the trace.
        for b in next {
            snapshots.insert(b.min(launches.len()), cache.clone());
        }
        Ok(CheckpointLibrary { snapshots })
    }

    /// The warm cache captured before invocation `index`, if one was
    /// requested.
    pub fn cache_before(&self, index: usize) -> Option<&Cache> {
        self.snapshots.get(&index)
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no snapshots were captured.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detailed::{DetailedConfig, DetailedSimulator};
    use crate::jit::compile_kernel;
    use crate::topology::GpuGeneration;
    use gen_isa::ExecSize;
    use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

    fn streaming_kernel() -> DecodedKernel {
        let mut ir = KernelIr::new("stream", 2);
        ir.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            IrOp::Load {
                arg: 1,
                bytes: 64,
                width: ExecSize::S16,
                pattern: AccessPattern::Linear,
            },
            IrOp::Compute {
                ops: 4,
                width: ExecSize::S16,
            },
            IrOp::LoopEnd,
        ];
        compile_kernel(&ir).unwrap().flatten()
    }

    fn launches(n: usize) -> Vec<LaunchDescriptor> {
        (0..n)
            .map(|_| LaunchDescriptor {
                kernel_index: 0,
                args: vec![ArgValue::Scalar(20), ArgValue::Buffer(0)],
                global_work_size: 64,
            })
            .collect()
    }

    #[test]
    fn snapshots_captured_at_requested_boundaries() {
        let kernels = vec![streaming_kernel()];
        let lib =
            CheckpointLibrary::build(&kernels, &launches(6), CacheConfig::default(), &[0, 3, 6])
                .unwrap();
        assert_eq!(lib.len(), 3);
        assert!(lib.cache_before(0).is_some());
        assert!(lib.cache_before(3).is_some());
        assert!(lib.cache_before(1).is_none());
    }

    #[test]
    fn warm_checkpoint_reduces_sample_misses() {
        let kernels = vec![streaming_kernel()];
        let ls = launches(6);
        let lib = CheckpointLibrary::build(&kernels, &ls, CacheConfig::default(), &[0, 3]).unwrap();
        let topo = GpuGeneration::IvyBridgeHd4000.topology();

        // Detailed-simulate invocation 3 cold vs from the checkpoint.
        let cold = {
            let mut sim = DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default());
            sim.simulate_launch(&kernels[0], &ls[3].args, 64).unwrap()
        };
        let warm = {
            let mut sim = DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default());
            sim.restore_cache(lib.cache_before(3).unwrap().clone());
            sim.simulate_launch(&kernels[0], &ls[3].args, 64).unwrap()
        };
        assert!(
            warm.stats.cache_misses < cold.stats.cache_misses,
            "checkpoint removes cold-start misses: warm {} vs cold {}",
            warm.stats.cache_misses,
            cold.stats.cache_misses
        );
        assert!(warm.cycles <= cold.cycles);
    }

    #[test]
    fn warm_start_is_bit_identical_under_sharding() {
        // A restored checkpoint is just initial master-cache state;
        // the epoch-sharded schedule must reproduce the serial result
        // from a warm start exactly like it does from a cold one.
        let kernels = vec![streaming_kernel()];
        let ls = launches(6);
        let lib = CheckpointLibrary::build(&kernels, &ls, CacheConfig::default(), &[3]).unwrap();
        let topo = GpuGeneration::IvyBridgeHd4000.topology();
        let run = |workers: usize| {
            let mut sim = DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default())
                .with_workers(workers);
            sim.restore_cache(lib.cache_before(3).unwrap().clone());
            sim.simulate_launch(&kernels[0], &ls[3].args, 64).unwrap()
        };
        let serial = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), serial, "workers = {workers}");
        }
    }

    #[test]
    fn boundary_past_the_trace_snapshots_final_state() {
        let kernels = vec![streaming_kernel()];
        let lib = CheckpointLibrary::build(&kernels, &launches(2), CacheConfig::default(), &[10])
            .unwrap();
        assert_eq!(lib.len(), 1);
        assert!(lib.cache_before(2).is_some(), "clamped to end of trace");
    }
}
