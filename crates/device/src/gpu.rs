//! The [`Gpu`]: the complete device, implementing
//! [`ocl_runtime::Device`].
//!
//! GT-Pin attaches at two points, both modelled here:
//!
//! 1. a [`BinaryRewriter`] on the driver (set via
//!    [`Gpu::set_rewriter`]) instruments binaries at JIT time, and
//! 2. a [`LaunchObserver`] (set via [`Gpu::set_observer`]) is handed
//!    the trace buffer after every kernel invocation completes — the
//!    CPU post-processing step of Figure 1.

use ocl_runtime::api::{ArgValue, KernelId, SyncCall};
use ocl_runtime::device::{Device, DeviceError, KernelTiming};
use ocl_runtime::host::ProgramSource;

use crate::cache::{Cache, CacheConfig};
use crate::driver::{BinaryRewriter, GpuDriver, LaunchWatchdog};
use crate::executor::{ExecConfig, Executor};
use crate::memory::TraceBuffer;
use crate::stats::ExecutionStats;
use crate::timing::{TimingConfig, TimingModel};
use crate::topology::{GpuGeneration, GpuTopology};

/// Everything known about one completed kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchInfo {
    /// Position in launch order (0-based across the run).
    pub launch_index: u32,
    /// Which kernel ran.
    pub kernel: KernelId,
    /// Its name.
    pub kernel_name: String,
    /// Global work size of the launch.
    pub global_work_size: u64,
    /// Bound argument values.
    pub args: Vec<ArgValue>,
    /// Modelled wall-clock seconds (with trial noise).
    pub seconds: f64,
    /// Native performance counters for the launch (includes any
    /// instrumentation instructions).
    pub stats: ExecutionStats,
}

/// Receives the trace buffer after each kernel completes. This is
/// GT-Pin's CPU post-processing hook; the observer typically drains
/// counters and records, then the device resets the buffer.
pub trait LaunchObserver {
    /// Called after each kernel invocation completes on the GPU.
    fn on_kernel_complete(&mut self, info: &LaunchInfo, trace: &mut TraceBuffer);
}

/// Device configuration.
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Which generation to model.
    pub generation: GpuGeneration,
    /// Clock frequency; `None` means the generation's maximum.
    pub frequency_hz: Option<f64>,
    /// Trial seed for timing noise (a new seed models a new run on
    /// real hardware).
    pub trial_seed: u64,
    /// Relative timing-noise amplitude.
    pub noise: f64,
    /// Executor limits.
    pub exec: ExecConfig,
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig {
            generation: GpuGeneration::IvyBridgeHd4000,
            frequency_hz: None,
            trial_seed: 1,
            noise: 0.01,
            exec: ExecConfig::default(),
        }
    }
}

impl GpuConfig {
    /// The paper's main test system at maximum frequency.
    pub fn hd4000() -> GpuConfig {
        GpuConfig::default()
    }

    /// The Haswell validation system.
    pub fn hd4600() -> GpuConfig {
        GpuConfig {
            generation: GpuGeneration::HaswellHd4600,
            ..Default::default()
        }
    }

    /// Same machine, different trial.
    pub fn with_trial_seed(mut self, seed: u64) -> GpuConfig {
        self.trial_seed = seed;
        self
    }

    /// Same machine, scaled clock.
    pub fn with_frequency_hz(mut self, hz: f64) -> GpuConfig {
        self.frequency_hz = Some(hz);
        self
    }
}

/// The GPU device.
pub struct Gpu {
    topology: GpuTopology,
    driver: GpuDriver,
    cache: Cache,
    trace: TraceBuffer,
    timing: TimingModel,
    exec_config: ExecConfig,
    observer: Option<Box<dyn LaunchObserver>>,
    launches: Vec<LaunchInfo>,
    launch_index: u32,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("topology", &self.topology.name)
            .field("launches", &self.launches.len())
            .finish()
    }
}

impl Gpu {
    /// A device per `config`.
    pub fn new(config: GpuConfig) -> Gpu {
        let topology = config.generation.topology();
        let frequency_hz = config.frequency_hz.unwrap_or(topology.max_frequency_hz);
        let timing = TimingModel::new(
            topology,
            TimingConfig {
                frequency_hz,
                trial_seed: config.trial_seed,
                noise: config.noise,
                ..Default::default()
            },
        );
        Gpu {
            topology,
            driver: GpuDriver::new(),
            cache: Cache::new(CacheConfig::llc_slice(topology.llc_slice_kib)),
            trace: TraceBuffer::new(),
            timing,
            exec_config: config.exec,
            observer: None,
            launches: Vec::new(),
            launch_index: 0,
        }
    }

    /// The machine description.
    pub fn topology(&self) -> &GpuTopology {
        &self.topology
    }

    /// Attach a binary rewriter to the driver (GT-Pin hook 1).
    pub fn set_rewriter(&mut self, rewriter: Box<dyn BinaryRewriter>) {
        self.driver.set_rewriter(rewriter);
    }

    /// Attach a launch observer (GT-Pin hook 2).
    pub fn set_observer(&mut self, observer: Box<dyn LaunchObserver>) {
        self.observer = Some(observer);
    }

    /// Per-launch device-side records (the model's ground truth).
    pub fn launches(&self) -> &[LaunchInfo] {
        &self.launches
    }

    /// Aggregate native statistics across all launches so far.
    pub fn total_stats(&self) -> ExecutionStats {
        let mut total = ExecutionStats::default();
        for l in &self.launches {
            total.merge(&l.stats);
        }
        total
    }

    /// Driver access (instrumented binaries, original sizes).
    pub fn driver(&self) -> &GpuDriver {
        &self.driver
    }

    /// The timing model in force.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }
}

impl Device for Gpu {
    fn device_name(&self) -> String {
        self.topology.name.to_string()
    }

    fn build_program(&mut self, source: &ProgramSource) -> Result<(), DeviceError> {
        self.driver.build(source)
    }

    fn launch_kernel(
        &mut self,
        kernel: KernelId,
        args: &[ArgValue],
        global_work_size: u64,
    ) -> Result<KernelTiming, DeviceError> {
        if self.driver.num_kernels() == 0 {
            return Err(DeviceError::ProgramNotBuilt);
        }
        let decoded = self
            .driver
            .kernel(kernel.index())
            .ok_or(DeviceError::UnknownKernel { kernel })?;
        let kernel_name = decoded.name.clone();

        // Watchdog for hung launches. The hang is an injected fault;
        // recovery is retry-with-backoff on a virtual clock, so the
        // whole exchange replays bit-identically. One branch when
        // `GTPIN_FAULTS` is unset.
        if gtpin_faults::enabled() {
            let watchdog = LaunchWatchdog::default();
            let mut attempt = 0u32;
            let mut waited_virtual_ns = 0u64;
            while watchdog.hang_injected(self.launch_index as u64, attempt) {
                waited_virtual_ns += watchdog.wait_ns(attempt);
                attempt += 1;
                if attempt >= watchdog.max_attempts {
                    gtpin_faults::note("failed.launch_timeout", 1);
                    return Err(DeviceError::LaunchTimeout {
                        kernel: kernel_name,
                        attempts: attempt,
                        waited_virtual_ns,
                    });
                }
                gtpin_faults::note("recovered.launch_retry", 1);
                gtpin_obs::warn!(
                    "gpu: launch {} of `{kernel_name}` hung, retry {attempt}/{} \
                     after {waited_virtual_ns} virtual ns",
                    self.launch_index,
                    watchdog.max_attempts - 1
                );
            }
        }

        let stats = Executor {
            cache: &mut self.cache,
            trace: &mut self.trace,
            config: self.exec_config,
        }
        .execute_launch(decoded, args, global_work_size)
        .map_err(|e| DeviceError::Execution {
            kernel: kernel_name.clone(),
            detail: e.to_string(),
        })?;

        let seconds = self.timing.launch_seconds(&stats, self.launch_index);
        let info = LaunchInfo {
            launch_index: self.launch_index,
            kernel,
            kernel_name,
            global_work_size,
            args: args.to_vec(),
            seconds,
            stats,
        };
        self.launch_index += 1;

        if let Some(observer) = self.observer.as_mut() {
            observer.on_kernel_complete(&info, &mut self.trace);
        }
        self.trace.reset();
        self.launches.push(info);
        Ok(KernelTiming { seconds })
    }

    fn synchronize(&mut self, _call: SyncCall) {
        // Device work is executed eagerly in this model; a sync call
        // has nothing left to drain.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::ExecSize;
    use ocl_runtime::host::{HostScriptBuilder, ProgramSource};
    use ocl_runtime::ir::{IrOp, KernelIr, TripCount};
    use ocl_runtime::runtime::{OclRuntime, Schedule};

    fn program() -> ocl_runtime::host::HostProgram {
        let mut k = KernelIr::new("work", 1);
        k.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            IrOp::Compute {
                ops: 40,
                width: ExecSize::S16,
            },
            IrOp::LoopEnd,
        ];
        let source = ProgramSource { kernels: vec![k] };
        let mut b = HostScriptBuilder::new("app", source);
        for i in 1..=4u64 {
            b.set_arg(KernelId(0), 0, ArgValue::Scalar(50 * i));
            b.launch(KernelId(0), 512);
        }
        b.sync(SyncCall::Finish);
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_run_produces_timings_and_stats() {
        let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
        let report = rt.run(&program(), Schedule::Replay).unwrap();
        assert_eq!(report.cofluent.num_invocations(), 4);
        for inv in &report.cofluent.invocations {
            assert!(inv.seconds > 0.0);
        }
        let gpu = rt.into_device();
        assert_eq!(gpu.launches().len(), 4);
        assert!(gpu.total_stats().instructions > 0);
        // Larger trip count → more instructions.
        let l = gpu.launches();
        assert!(l[3].stats.instructions > l[0].stats.instructions);
    }

    #[test]
    fn launch_before_build_fails() {
        let mut gpu = Gpu::new(GpuConfig::hd4000());
        let err = gpu.launch_kernel(KernelId(0), &[], 16).unwrap_err();
        assert_eq!(err, DeviceError::ProgramNotBuilt);
    }

    #[test]
    fn observer_sees_every_launch_and_trace_resets() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Obs {
            seen: Rc<RefCell<Vec<u32>>>,
        }
        impl LaunchObserver for Obs {
            fn on_kernel_complete(&mut self, info: &LaunchInfo, trace: &mut TraceBuffer) {
                // The trace buffer is empty because nothing was
                // instrumented; it must still be delivered.
                assert_eq!(trace.num_slots(), 0);
                self.seen.borrow_mut().push(info.launch_index);
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut gpu = Gpu::new(GpuConfig::hd4000());
        gpu.set_observer(Box::new(Obs { seen: seen.clone() }));
        let mut rt = OclRuntime::new(gpu);
        rt.run(&program(), Schedule::Replay).unwrap();
        assert_eq!(*seen.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn different_trials_differ_only_in_noise() {
        let run_with = |seed| {
            let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000().with_trial_seed(seed)));
            rt.run(&program(), Schedule::Replay).unwrap().cofluent
        };
        let a = run_with(1);
        let b = run_with(2);
        let gpu_a: Vec<u64> = a.invocations.iter().map(|i| i.global_work_size).collect();
        let gpu_b: Vec<u64> = b.invocations.iter().map(|i| i.global_work_size).collect();
        assert_eq!(gpu_a, gpu_b, "work identical across trials");
        let t_a: f64 = a.total_kernel_seconds();
        let t_b: f64 = b.total_kernel_seconds();
        assert!(t_a != t_b, "timing noise differs across trials");
        assert!((t_a / t_b - 1.0).abs() < 0.1, "but only slightly");
    }

    #[test]
    fn frequency_scaling_slows_compute_bound_work() {
        let run_at = |hz| {
            let cfg = GpuConfig::hd4000().with_frequency_hz(hz);
            let mut rt = OclRuntime::new(Gpu::new(GpuConfig { noise: 0.0, ..cfg }));
            rt.run(&program(), Schedule::Replay)
                .unwrap()
                .cofluent
                .total_kernel_seconds()
        };
        let fast = run_at(1.15e9);
        let slow = run_at(0.35e9);
        assert!(slow > 2.0 * fast, "compute-bound app slows with the clock");
    }
}
