//! The fast functional execution engine: runs GEN kernel binaries
//! over an NDRange, one hardware thread at a time, with real register
//! and flag state.
//!
//! The engine is what makes GT-Pin's instrumentation *real* in this
//! model: injected instructions execute here like any other code,
//! accumulating counters in the trace buffer via `send.atomic_add`
//! messages. The engine also maintains native performance counters
//! ([`ExecutionStats`]) used by the timing model and as ground truth
//! in tests.

use gen_isa::{DecodedKernel, Opcode, NUM_LANES};
use ocl_runtime::api::ArgValue;

use crate::cache::Cache;
use crate::machine::{step, StepOutcome, ThreadState};
use crate::memory::TraceBuffer;
use crate::stats::ExecutionStats;

/// SIMD lanes one hardware thread covers (dispatch width).
pub const DISPATCH_WIDTH: u64 = NUM_LANES as u64;

/// Per-opcode issue cost in cycles (the compute term of the timing
/// model). Extended math is the slow path; sends pay an issue cost
/// here plus memory time modelled separately.
pub fn issue_cost(opcode: Opcode) -> u64 {
    use Opcode::*;
    match opcode {
        Inv | Sqrt | Exp | Log | Sin | Cos => 4,
        Send | Sendc => 2,
        Mad | Lrp | Dp4 => 2,
        _ => 1,
    }
}

/// Issue cost of a concrete instruction. Atomic messages to the
/// CPU/GPU-shared trace buffer serialize against every other
/// hardware thread, so they cost far more than ordinary sends —
/// this contention is the dominant component of GT-Pin's observed
/// 2–10× profiling overhead (Section III-C of the paper).
pub fn instruction_cost(instr: &gen_isa::Instruction) -> u64 {
    if let Some(desc) = instr.send {
        if desc.surface == gen_isa::Surface::TraceBuffer {
            return match desc.op {
                gen_isa::SendOp::AtomicAdd => 24,
                gen_isa::SendOp::Write => 12,
                _ => 4,
            };
        }
    }
    issue_cost(instr.opcode)
}

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A thread exceeded the per-thread instruction budget
    /// (runaway-loop guard).
    BudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// The instruction pointer left the stream without an `eot`.
    RanOffEnd {
        /// Where it ended up.
        ip: i64,
    },
    /// `ret`/`call` executed with no subroutine support.
    StrayReturn {
        /// Offending instruction index.
        ip: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BudgetExceeded { budget } => {
                write!(f, "thread exceeded instruction budget of {budget}")
            }
            ExecError::RanOffEnd { ip } => write!(f, "instruction pointer {ip} left the stream"),
            ExecError::StrayReturn { ip } => write!(f, "stray ret/call at instruction {ip}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execution-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Per-thread dynamic instruction budget.
    pub thread_budget: u64,
    /// Worker threads for hardware-thread fan-out (`GTPIN_THREADS`
    /// by default); `1` is the plain serial loop. Results are
    /// bitwise identical at every value.
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            thread_budget: 8_000_000,
            threads: gtpin_par::configured_threads(),
        }
    }
}

/// Executes kernel launches against shared device state (cache,
/// trace buffer).
pub struct Executor<'d> {
    /// Device cache fed by global sends.
    pub cache: &'d mut Cache,
    /// GT-Pin trace buffer fed by trace-surface sends.
    pub trace: &'d mut TraceBuffer,
    /// Limits.
    pub config: ExecConfig,
}

/// Whether any instruction reads the trace buffer back into a
/// register. Such kernels see other hardware threads' counter writes
/// in serial execution, so they cannot run against private shards —
/// the executor falls back to the serial loop for them.
fn reads_trace_buffer(kernel: &DecodedKernel) -> bool {
    kernel.instrs.iter().any(|i| {
        matches!(
            i.send,
            Some(d) if d.surface == gen_isa::Surface::TraceBuffer && d.op == gen_isa::SendOp::Read
        )
    })
}

/// Everything one hardware thread produced while running against
/// private state: its counters, its trace-buffer shard, and the
/// global-memory access log the main thread replays on the shared
/// cache.
struct ThreadRun {
    result: Result<(), ExecError>,
    stats: ExecutionStats,
    shard: TraceBuffer,
    accesses: Vec<(u64, u32)>,
}

impl<'d> Executor<'d> {
    /// Execute one kernel launch over `global_work_size` work items;
    /// returns aggregated statistics across hardware threads.
    ///
    /// With `config.threads > 1` the hardware threads fan out across
    /// workers, each against a scratch cache and a private trace
    /// shard; shards and access logs merge back in hardware-thread
    /// order, so statistics, cache state, and trace contents are
    /// bitwise identical to the serial loop. Kernels that read the
    /// trace buffer back into registers depend on cross-thread write
    /// order and run serially regardless.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on runaway loops, bad control flow, or
    /// stray returns — all of which indicate a malformed binary. On
    /// error the cache and trace buffer hold the effects of every
    /// hardware thread before the (lowest-numbered) failing one plus
    /// the failing thread's partial run — the same state the serial
    /// loop leaves.
    pub fn execute_launch(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        global_work_size: u64,
    ) -> Result<ExecutionStats, ExecError> {
        let num_threads = global_work_size.div_ceil(DISPATCH_WIDTH).max(1);
        let mut stats = ExecutionStats {
            hw_threads: num_threads,
            ..Default::default()
        };
        let workers = self.config.threads.min(num_threads as usize);
        let serial = workers <= 1 || reads_trace_buffer(kernel);
        let mut span = gtpin_obs::span("executor.launch");
        if span.active() {
            span.arg_str("kernel", kernel.name.clone());
            span.arg_u64("hw_threads", num_threads);
            span.arg_u64("workers", if serial { 1 } else { workers as u64 });
        }
        let records_before = self.trace.records().len() as u64;
        let dropped_before = self.trace.dropped_records();
        let appended_before = self.trace.appended_records();
        let early_drains_before = self.trace.early_drains();
        if serial {
            for t in 0..num_threads {
                run_thread(
                    kernel,
                    args,
                    t,
                    self.config.thread_budget,
                    self.cache,
                    self.trace,
                    &mut stats,
                    None,
                )?;
            }
            self.finalize_trace_accounting(
                &mut stats,
                records_before,
                dropped_before,
                early_drains_before,
            );
            self.note_launch_telemetry(&mut span, &stats, records_before, dropped_before);
            return Ok(stats);
        }

        let budget = self.config.thread_budget;
        let proto_cache = self.cache.clone();
        let record_cap = self.trace.record_capacity();
        let faults_on = gtpin_faults::enabled();
        let runs = gtpin_par::parallel_indexed(num_threads as usize, workers, |t| {
            let mut cache = proto_cache.clone();
            let mut shard = TraceBuffer::new()
                .with_record_capacity(record_cap)
                .with_fault_salt(t as u64 + 1);
            if faults_on
                && gtpin_faults::should_inject(gtpin_faults::site::SHARD_OVERFLOW, t as u64)
            {
                // Injected shard overflow: shrink the live stream so
                // the shard early-drains. Records spill instead of
                // dropping, so the merged trace is unchanged — the
                // recovery the fault exists to prove.
                shard = shard.with_soft_capacity(8);
            }
            let mut tstats = ExecutionStats::default();
            let mut accesses = Vec::new();
            let result = run_thread(
                kernel,
                args,
                t as u64,
                budget,
                &mut cache,
                &mut shard,
                &mut tstats,
                Some(&mut accesses),
            );
            ThreadRun {
                result,
                stats: tstats,
                shard,
                accesses,
            }
        });

        let obs = gtpin_obs::enabled();
        let mut drain = gtpin_obs::span("executor.drain");
        let mut replayed_accesses = 0u64;
        for run in runs {
            // Replay this thread's global accesses on the shared
            // cache: hit/miss counts and cache state come out exactly
            // as the serial loop's (the scratch-cache counts in the
            // worker's stats are discarded below).
            let mut hits = 0u64;
            let mut misses = 0u64;
            for &(addr, bytes) in &run.accesses {
                let (h, m) = self.cache.access(addr, bytes);
                hits += h as u64;
                misses += m as u64;
            }
            if obs {
                replayed_accesses += run.accesses.len() as u64;
                gtpin_obs::hist_ns("executor.shard_records", run.shard.records().len() as u64);
            }
            self.trace.merge_shard(run.shard);
            run.result?;
            let mut s = run.stats;
            s.cache_hits = hits;
            s.cache_misses = misses;
            stats.merge(&s);
        }
        if drain.active() {
            drain.arg_u64("replayed_accesses", replayed_accesses);
            gtpin_obs::counter_add("executor.cache_replays", replayed_accesses);
        }
        drop(drain);

        // Conservation check on the shard-drain merge path: every
        // record a hardware thread appended is now either stored or
        // counted as dropped. A violation is a bug in the merge —
        // fail loudly in debug builds, count it in release builds so
        // long characterization runs degrade instead of aborting.
        let appended_delta = self.trace.appended_records() - appended_before;
        let stored_delta = self.trace.records().len() as u64 - records_before;
        let dropped_delta = self.trace.dropped_records() - dropped_before;
        if appended_delta != stored_delta + dropped_delta {
            #[cfg(debug_assertions)]
            panic!(
                "shard-drain conservation violated: {appended_delta} appended != \
                 {stored_delta} stored + {dropped_delta} dropped"
            );
            #[cfg(not(debug_assertions))]
            {
                gtpin_obs::counter_add("executor.conservation_violations", 1);
                gtpin_faults::note("violation.trace_conservation", 1);
            }
        }

        self.finalize_trace_accounting(
            &mut stats,
            records_before,
            dropped_before,
            early_drains_before,
        );
        self.note_launch_telemetry(&mut span, &stats, records_before, dropped_before);
        Ok(stats)
    }

    /// Post-launch trace accounting: quarantine checksum-stale
    /// records (fault-armed runs only — the scan is behind the single
    /// `GTPIN_FAULTS` branch) and surface drop/drain/quarantine
    /// deltas in the launch statistics.
    fn finalize_trace_accounting(
        &mut self,
        stats: &mut ExecutionStats,
        records_before: u64,
        dropped_before: u64,
        early_drains_before: u64,
    ) {
        if gtpin_faults::enabled() {
            let quarantined = self.trace.quarantine_invalid(records_before as usize);
            if quarantined > 0 {
                stats.trace_quarantined = quarantined;
                gtpin_faults::note("recovered.record_quarantine", quarantined);
                gtpin_obs::counter_add("executor.trace_quarantined", quarantined);
                gtpin_obs::warn!(
                    "executor: quarantined {quarantined} corrupted trace record(s) before drain"
                );
            }
        }
        stats.trace_dropped = self.trace.dropped_records() - dropped_before;
        stats.trace_early_drains = self.trace.early_drains() - early_drains_before;
    }

    /// Attach per-launch trace-buffer fill/drop and overhead numbers
    /// to the launch span and the process-wide counters. A no-op
    /// (beyond one branch) when telemetry is disabled.
    fn note_launch_telemetry(
        &self,
        span: &mut gtpin_obs::SpanGuard<'_>,
        stats: &ExecutionStats,
        records_before: u64,
        dropped_before: u64,
    ) {
        if !span.active() {
            return;
        }
        let records = self.trace.records().len() as u64 - records_before;
        let dropped = self.trace.dropped_records() - dropped_before;
        span.arg_u64("trace_records", records);
        span.arg_u64("trace_dropped", dropped);
        span.arg_u64("trace_bytes", stats.trace_bytes);
        span.arg_f64("overhead_ratio", stats.overhead_ratio());
        gtpin_obs::counter_add("executor.launches", 1);
        gtpin_obs::counter_add("executor.trace_records", records);
        gtpin_obs::counter_add("executor.trace_dropped", dropped);
        gtpin_obs::counter_add("executor.trace_bytes", stats.trace_bytes);
    }
}

/// Run one hardware thread to completion against the given cache and
/// trace buffer (shared in serial execution, private in parallel).
#[allow(clippy::too_many_arguments)]
fn run_thread(
    kernel: &DecodedKernel,
    args: &[ArgValue],
    thread_id: u64,
    thread_budget: u64,
    cache: &mut Cache,
    trace: &mut TraceBuffer,
    stats: &mut ExecutionStats,
    mut access_log: Option<&mut Vec<(u64, u32)>>,
) -> Result<(), ExecError> {
    let mut st = ThreadState::new(thread_id, args);
    let mut ip: i64 = 0;
    let mut executed: u64 = 0;
    let instrs = &kernel.instrs;

    loop {
        if executed >= thread_budget {
            return Err(ExecError::BudgetExceeded {
                budget: thread_budget,
            });
        }
        if ip < 0 || ip as usize >= instrs.len() {
            return Err(ExecError::RanOffEnd { ip });
        }
        let instr = &instrs[ip as usize];
        executed += 1;
        let cost = instruction_cost(instr);
        st.issue_cycles += cost;
        stats.count_instruction(instr.opcode.category(), instr.exec_size, cost);
        if matches!(instr.send, Some(d) if d.surface == gen_isa::Surface::TraceBuffer) {
            stats.trace_cycles += cost;
        }

        match step(
            &mut st,
            instr,
            cache,
            trace,
            stats,
            access_log.as_deref_mut(),
        ) {
            StepOutcome::Done => break,
            StepOutcome::Fault => return Err(ExecError::StrayReturn { ip: ip as usize }),
            StepOutcome::Branch(off) => ip += 1 + off as i64,
            StepOutcome::Next => ip += 1,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::jit::compile_kernel;
    use gen_isa::ExecSize;
    use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

    fn run(
        ir_body: Vec<IrOp>,
        num_args: u8,
        args: &[ArgValue],
        gws: u64,
    ) -> (ExecutionStats, TraceBuffer) {
        let mut ir = KernelIr::new("t", num_args);
        ir.body = ir_body;
        let bin = compile_kernel(&ir).unwrap();
        let flat = bin.flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let stats = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&flat, args, gws)
        .unwrap();
        (stats, trace)
    }

    #[test]
    fn one_thread_per_sixteen_work_items() {
        let (s, _) = run(
            vec![IrOp::Compute {
                ops: 1,
                width: ExecSize::S16,
            }],
            0,
            &[],
            64,
        );
        assert_eq!(s.hw_threads, 4);
        let (s, _) = run(vec![], 0, &[], 1);
        assert_eq!(s.hw_threads, 1, "tiny launches still dispatch one thread");
    }

    #[test]
    fn loop_trip_count_follows_argument() {
        let body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            IrOp::Compute {
                ops: 10,
                width: ExecSize::S16,
            },
            IrOp::LoopEnd,
        ];
        let (s5, _) = run(body.clone(), 1, &[ArgValue::Scalar(5)], 16);
        let (s10, _) = run(body, 1, &[ArgValue::Scalar(10)], 16);
        // Each iteration: 10 compute + add + cmp + brc = 13.
        let diff = s10.instructions - s5.instructions;
        assert_eq!(diff, 5 * 13, "five extra iterations of 13 instructions");
    }

    #[test]
    fn instruction_count_scales_with_threads() {
        let body = vec![IrOp::Compute {
            ops: 7,
            width: ExecSize::S8,
        }];
        let (s1, _) = run(body.clone(), 0, &[], 16);
        let (s4, _) = run(body, 0, &[], 64);
        assert_eq!(s4.instructions, 4 * s1.instructions);
    }

    #[test]
    fn memory_bytes_accounted_per_execution() {
        let body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Const(3),
            },
            IrOp::Load {
                arg: 0,
                bytes: 64,
                width: ExecSize::S16,
                pattern: AccessPattern::Linear,
            },
            IrOp::Store {
                arg: 1,
                bytes: 32,
                width: ExecSize::S16,
                pattern: AccessPattern::Linear,
            },
            IrOp::LoopEnd,
        ];
        let (s, _) = run(body, 2, &[ArgValue::Buffer(0), ArgValue::Buffer(1)], 16);
        assert_eq!(s.bytes_read, 3 * 64);
        assert_eq!(s.bytes_written, 3 * 32);
        assert_eq!(s.global_sends, 6);
    }

    #[test]
    fn gather_misses_more_than_linear() {
        let mk = |pattern| {
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(200),
                },
                IrOp::Load {
                    arg: 0,
                    bytes: 16,
                    width: ExecSize::S16,
                    pattern,
                },
                IrOp::LoopEnd,
            ]
        };
        let (lin, _) = run(mk(AccessPattern::Linear), 1, &[ArgValue::Buffer(0)], 16);
        let (gat, _) = run(mk(AccessPattern::Gather), 1, &[ArgValue::Buffer(0)], 16);
        assert!(
            gat.cache_misses > lin.cache_misses,
            "gather ({}) should miss more than linear ({})",
            gat.cache_misses,
            lin.cache_misses
        );
    }

    #[test]
    fn runaway_loop_hits_budget_guard() {
        let mut ir = KernelIr::new("r", 0);
        ir.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Const(1 << 30),
            },
            IrOp::Compute {
                ops: 1,
                width: ExecSize::S1,
            },
            IrOp::LoopEnd,
        ];
        let bin = compile_kernel(&ir).unwrap().flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let err = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig {
                thread_budget: 1000,
                ..Default::default()
            },
        }
        .execute_launch(&bin, &[], 16)
        .unwrap_err();
        assert_eq!(err, ExecError::BudgetExceeded { budget: 1000 });
    }

    #[test]
    fn if_region_skipped_when_condition_fails() {
        let body = vec![
            IrOp::IfArgLt { arg: 0, value: 100 },
            IrOp::Compute {
                ops: 50,
                width: ExecSize::S16,
            },
            IrOp::EndIf,
        ];
        let (taken, _) = run(body.clone(), 1, &[ArgValue::Scalar(5)], 16);
        let (skipped, _) = run(body, 1, &[ArgValue::Scalar(500)], 16);
        assert!(taken.instructions > skipped.instructions + 40);
    }

    #[test]
    fn trace_buffer_sends_accumulate_counters() {
        // Hand-build a binary with instrumentation-style counter sends.
        use gen_isa::builder::KernelBuilder;
        use gen_isa::{Reg, Src, Surface};
        let mut b = KernelBuilder::new("counter");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S1, Reg(100), Src::Imm(3)) // slot
            .mov(ExecSize::S1, Reg(101), Src::Imm(1)) // increment
            .atomic_add(Reg(100), Reg(101), Surface::TraceBuffer)
            .eot();
        let flat = b.build().unwrap().flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&flat, &[], 8 * 16)
        .unwrap();
        assert_eq!(trace.slot(3), 8, "one increment per hardware thread");
    }

    #[test]
    fn trace_traffic_not_counted_as_app_bytes() {
        use gen_isa::builder::KernelBuilder;
        use gen_isa::{Reg, Src, Surface};
        let mut b = KernelBuilder::new("t");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S1, Reg(100), Src::Imm(0))
            .mov(ExecSize::S1, Reg(101), Src::Imm(1))
            .atomic_add(Reg(100), Reg(101), Surface::TraceBuffer)
            .eot();
        let flat = b.build().unwrap().flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let stats = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&flat, &[], 16)
        .unwrap();
        assert_eq!(stats.bytes_read + stats.bytes_written, 0);
        assert_eq!(stats.global_sends, 0);
    }

    fn run_with_threads(
        ir_body: Vec<IrOp>,
        num_args: u8,
        args: &[ArgValue],
        gws: u64,
        threads: usize,
    ) -> (ExecutionStats, TraceBuffer, Cache) {
        let mut ir = KernelIr::new("t", num_args);
        ir.body = ir_body;
        let bin = compile_kernel(&ir).unwrap();
        let flat = bin.flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let stats = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig {
                threads,
                ..Default::default()
            },
        }
        .execute_launch(&flat, args, gws)
        .unwrap();
        (stats, trace, cache)
    }

    #[test]
    fn parallel_launch_is_bit_identical_to_serial() {
        let body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Const(7),
            },
            IrOp::Compute {
                ops: 3,
                width: ExecSize::S16,
            },
            IrOp::Load {
                arg: 0,
                bytes: 64,
                width: ExecSize::S16,
                pattern: AccessPattern::Gather,
            },
            IrOp::Store {
                arg: 1,
                bytes: 32,
                width: ExecSize::S16,
                pattern: AccessPattern::Linear,
            },
            IrOp::LoopEnd,
        ];
        let args = [ArgValue::Buffer(0), ArgValue::Buffer(1)];
        let (s1, t1, c1) = run_with_threads(body.clone(), 2, &args, 8 * 16, 1);
        for threads in 2..=5 {
            let (sp, tp, cp) = run_with_threads(body.clone(), 2, &args, 8 * 16, threads);
            assert_eq!(sp, s1, "stats at {threads} threads");
            assert_eq!(tp.records(), t1.records());
            assert_eq!(tp.num_slots(), t1.num_slots());
            assert_eq!(
                cp.stats(),
                c1.stats(),
                "replayed cache state at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_trace_shards_merge_to_serial_counters() {
        use gen_isa::builder::KernelBuilder;
        use gen_isa::{Reg, Src, Surface};
        let mut b = KernelBuilder::new("counter");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S1, Reg(100), Src::Imm(3))
            .mov(ExecSize::S1, Reg(101), Src::Imm(1))
            .atomic_add(Reg(100), Reg(101), Surface::TraceBuffer)
            .eot();
        let flat = b.build().unwrap().flatten();
        for threads in [1usize, 4] {
            let mut cache = Cache::new(CacheConfig::default());
            let mut trace = TraceBuffer::new();
            let stats = Executor {
                cache: &mut cache,
                trace: &mut trace,
                config: ExecConfig {
                    threads,
                    ..Default::default()
                },
            }
            .execute_launch(&flat, &[], 8 * 16)
            .unwrap();
            assert_eq!(trace.slot(3), 8, "threads = {threads}");
            assert_eq!(stats.trace_bytes, 8 * 64);
        }
    }

    #[test]
    fn budget_error_surfaces_from_parallel_path() {
        let mut ir = KernelIr::new("r", 0);
        ir.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Const(1 << 30),
            },
            IrOp::Compute {
                ops: 1,
                width: ExecSize::S1,
            },
            IrOp::LoopEnd,
        ];
        let bin = compile_kernel(&ir).unwrap().flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let err = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig {
                thread_budget: 1000,
                threads: 4,
            },
        }
        .execute_launch(&bin, &[], 4 * 16)
        .unwrap_err();
        assert_eq!(err, ExecError::BudgetExceeded { budget: 1000 });
    }

    #[test]
    fn execution_is_deterministic() {
        let body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Const(9),
            },
            IrOp::Compute {
                ops: 5,
                width: ExecSize::S16,
            },
            IrOp::Load {
                arg: 0,
                bytes: 64,
                width: ExecSize::S16,
                pattern: AccessPattern::Gather,
            },
            IrOp::LoopEnd,
        ];
        let (a, _) = run(body.clone(), 1, &[ArgValue::Buffer(2)], 128);
        let (b, _) = run(body, 1, &[ArgValue::Buffer(2)], 128);
        assert_eq!(a, b);
    }
}
