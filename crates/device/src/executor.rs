//! The fast functional execution engine: runs GEN kernel binaries
//! over an NDRange, one hardware thread at a time, with real register
//! and flag state.
//!
//! The engine is what makes GT-Pin's instrumentation *real* in this
//! model: injected instructions execute here like any other code,
//! accumulating counters in the trace buffer via `send.atomic_add`
//! messages. The engine also maintains native performance counters
//! ([`ExecutionStats`]) used by the timing model and as ground truth
//! in tests.

use gen_isa::{DecodedKernel, Opcode, NUM_LANES};
use ocl_runtime::api::ArgValue;

use crate::cache::Cache;
use crate::machine::{step, StepOutcome, ThreadState};
use crate::memory::TraceBuffer;
use crate::stats::ExecutionStats;

/// SIMD lanes one hardware thread covers (dispatch width).
pub const DISPATCH_WIDTH: u64 = NUM_LANES as u64;

/// Per-opcode issue cost in cycles (the compute term of the timing
/// model). Extended math is the slow path; sends pay an issue cost
/// here plus memory time modelled separately.
pub fn issue_cost(opcode: Opcode) -> u64 {
    use Opcode::*;
    match opcode {
        Inv | Sqrt | Exp | Log | Sin | Cos => 4,
        Send | Sendc => 2,
        Mad | Lrp | Dp4 => 2,
        _ => 1,
    }
}

/// Issue cost of a concrete instruction. Atomic messages to the
/// CPU/GPU-shared trace buffer serialize against every other
/// hardware thread, so they cost far more than ordinary sends —
/// this contention is the dominant component of GT-Pin's observed
/// 2–10× profiling overhead (Section III-C of the paper).
pub fn instruction_cost(instr: &gen_isa::Instruction) -> u64 {
    if let Some(desc) = instr.send {
        if desc.surface == gen_isa::Surface::TraceBuffer {
            return match desc.op {
                gen_isa::SendOp::AtomicAdd => 24,
                gen_isa::SendOp::Write => 12,
                _ => 4,
            };
        }
    }
    issue_cost(instr.opcode)
}

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A thread exceeded the per-thread instruction budget
    /// (runaway-loop guard).
    BudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// The instruction pointer left the stream without an `eot`.
    RanOffEnd {
        /// Where it ended up.
        ip: i64,
    },
    /// `ret`/`call` executed with no subroutine support.
    StrayReturn {
        /// Offending instruction index.
        ip: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BudgetExceeded { budget } => {
                write!(f, "thread exceeded instruction budget of {budget}")
            }
            ExecError::RanOffEnd { ip } => write!(f, "instruction pointer {ip} left the stream"),
            ExecError::StrayReturn { ip } => write!(f, "stray ret/call at instruction {ip}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execution-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Per-thread dynamic instruction budget.
    pub thread_budget: u64,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig { thread_budget: 8_000_000 }
    }
}

/// Executes kernel launches against shared device state (cache,
/// trace buffer).
pub struct Executor<'d> {
    /// Device cache fed by global sends.
    pub cache: &'d mut Cache,
    /// GT-Pin trace buffer fed by trace-surface sends.
    pub trace: &'d mut TraceBuffer,
    /// Limits.
    pub config: ExecConfig,
}

impl<'d> Executor<'d> {
    /// Execute one kernel launch over `global_work_size` work items;
    /// returns aggregated statistics across hardware threads.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on runaway loops, bad control flow, or
    /// stray returns — all of which indicate a malformed binary.
    pub fn execute_launch(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        global_work_size: u64,
    ) -> Result<ExecutionStats, ExecError> {
        let num_threads = global_work_size.div_ceil(DISPATCH_WIDTH).max(1);
        let mut stats = ExecutionStats { hw_threads: num_threads, ..Default::default() };
        for t in 0..num_threads {
            self.execute_thread(kernel, args, t, &mut stats)?;
        }
        Ok(stats)
    }

    fn execute_thread(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        thread_id: u64,
        stats: &mut ExecutionStats,
    ) -> Result<(), ExecError> {
        let mut st = ThreadState::new(thread_id, args);
        let mut ip: i64 = 0;
        let mut executed: u64 = 0;
        let instrs = &kernel.instrs;

        loop {
            if executed >= self.config.thread_budget {
                return Err(ExecError::BudgetExceeded { budget: self.config.thread_budget });
            }
            if ip < 0 || ip as usize >= instrs.len() {
                return Err(ExecError::RanOffEnd { ip });
            }
            let instr = &instrs[ip as usize];
            executed += 1;
            let cost = instruction_cost(instr);
            st.issue_cycles += cost;
            stats.count_instruction(instr.opcode.category(), instr.exec_size, cost);

            match step(&mut st, instr, self.cache, self.trace, stats) {
                StepOutcome::Done => break,
                StepOutcome::Fault => return Err(ExecError::StrayReturn { ip: ip as usize }),
                StepOutcome::Branch(off) => ip += 1 + off as i64,
                StepOutcome::Next => ip += 1,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::jit::compile_kernel;
    use gen_isa::ExecSize;
    use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

    fn run(
        ir_body: Vec<IrOp>,
        num_args: u8,
        args: &[ArgValue],
        gws: u64,
    ) -> (ExecutionStats, TraceBuffer) {
        let mut ir = KernelIr::new("t", num_args);
        ir.body = ir_body;
        let bin = compile_kernel(&ir).unwrap();
        let flat = bin.flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let stats = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&flat, args, gws)
        .unwrap();
        (stats, trace)
    }

    #[test]
    fn one_thread_per_sixteen_work_items() {
        let (s, _) = run(vec![IrOp::Compute { ops: 1, width: ExecSize::S16 }], 0, &[], 64);
        assert_eq!(s.hw_threads, 4);
        let (s, _) = run(vec![], 0, &[], 1);
        assert_eq!(s.hw_threads, 1, "tiny launches still dispatch one thread");
    }

    #[test]
    fn loop_trip_count_follows_argument() {
        let body = vec![
            IrOp::LoopBegin { trip: TripCount::Arg(0) },
            IrOp::Compute { ops: 10, width: ExecSize::S16 },
            IrOp::LoopEnd,
        ];
        let (s5, _) = run(body.clone(), 1, &[ArgValue::Scalar(5)], 16);
        let (s10, _) = run(body, 1, &[ArgValue::Scalar(10)], 16);
        // Each iteration: 10 compute + add + cmp + brc = 13.
        let diff = s10.instructions - s5.instructions;
        assert_eq!(diff, 5 * 13, "five extra iterations of 13 instructions");
    }

    #[test]
    fn instruction_count_scales_with_threads() {
        let body = vec![IrOp::Compute { ops: 7, width: ExecSize::S8 }];
        let (s1, _) = run(body.clone(), 0, &[], 16);
        let (s4, _) = run(body, 0, &[], 64);
        assert_eq!(s4.instructions, 4 * s1.instructions);
    }

    #[test]
    fn memory_bytes_accounted_per_execution() {
        let body = vec![
            IrOp::LoopBegin { trip: TripCount::Const(3) },
            IrOp::Load { arg: 0, bytes: 64, width: ExecSize::S16, pattern: AccessPattern::Linear },
            IrOp::Store { arg: 1, bytes: 32, width: ExecSize::S16, pattern: AccessPattern::Linear },
            IrOp::LoopEnd,
        ];
        let (s, _) = run(body, 2, &[ArgValue::Buffer(0), ArgValue::Buffer(1)], 16);
        assert_eq!(s.bytes_read, 3 * 64);
        assert_eq!(s.bytes_written, 3 * 32);
        assert_eq!(s.global_sends, 6);
    }

    #[test]
    fn gather_misses_more_than_linear() {
        let mk = |pattern| {
            vec![
                IrOp::LoopBegin { trip: TripCount::Const(200) },
                IrOp::Load { arg: 0, bytes: 16, width: ExecSize::S16, pattern },
                IrOp::LoopEnd,
            ]
        };
        let (lin, _) = run(mk(AccessPattern::Linear), 1, &[ArgValue::Buffer(0)], 16);
        let (gat, _) = run(mk(AccessPattern::Gather), 1, &[ArgValue::Buffer(0)], 16);
        assert!(
            gat.cache_misses > lin.cache_misses,
            "gather ({}) should miss more than linear ({})",
            gat.cache_misses,
            lin.cache_misses
        );
    }

    #[test]
    fn runaway_loop_hits_budget_guard() {
        let mut ir = KernelIr::new("r", 0);
        ir.body = vec![
            IrOp::LoopBegin { trip: TripCount::Const(1 << 30) },
            IrOp::Compute { ops: 1, width: ExecSize::S1 },
            IrOp::LoopEnd,
        ];
        let bin = compile_kernel(&ir).unwrap().flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let err = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig { thread_budget: 1000 },
        }
        .execute_launch(&bin, &[], 16)
        .unwrap_err();
        assert_eq!(err, ExecError::BudgetExceeded { budget: 1000 });
    }

    #[test]
    fn if_region_skipped_when_condition_fails() {
        let body = vec![
            IrOp::IfArgLt { arg: 0, value: 100 },
            IrOp::Compute { ops: 50, width: ExecSize::S16 },
            IrOp::EndIf,
        ];
        let (taken, _) = run(body.clone(), 1, &[ArgValue::Scalar(5)], 16);
        let (skipped, _) = run(body, 1, &[ArgValue::Scalar(500)], 16);
        assert!(taken.instructions > skipped.instructions + 40);
    }

    #[test]
    fn trace_buffer_sends_accumulate_counters() {
        // Hand-build a binary with instrumentation-style counter sends.
        use gen_isa::builder::KernelBuilder;
        use gen_isa::{Reg, Src, Surface};
        let mut b = KernelBuilder::new("counter");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S1, Reg(100), Src::Imm(3)) // slot
            .mov(ExecSize::S1, Reg(101), Src::Imm(1)) // increment
            .atomic_add(Reg(100), Reg(101), Surface::TraceBuffer)
            .eot();
        let flat = b.build().unwrap().flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&flat, &[], 8 * 16)
        .unwrap();
        assert_eq!(trace.slot(3), 8, "one increment per hardware thread");
    }

    #[test]
    fn trace_traffic_not_counted_as_app_bytes() {
        use gen_isa::builder::KernelBuilder;
        use gen_isa::{Reg, Src, Surface};
        let mut b = KernelBuilder::new("t");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S1, Reg(100), Src::Imm(0))
            .mov(ExecSize::S1, Reg(101), Src::Imm(1))
            .atomic_add(Reg(100), Reg(101), Surface::TraceBuffer)
            .eot();
        let flat = b.build().unwrap().flatten();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let stats = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&flat, &[], 16)
        .unwrap();
        assert_eq!(stats.bytes_read + stats.bytes_written, 0);
        assert_eq!(stats.global_sends, 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let body = vec![
            IrOp::LoopBegin { trip: TripCount::Const(9) },
            IrOp::Compute { ops: 5, width: ExecSize::S16 },
            IrOp::Load { arg: 0, bytes: 64, width: ExecSize::S16, pattern: AccessPattern::Gather },
            IrOp::LoopEnd,
        ];
        let (a, _) = run(body.clone(), 1, &[ArgValue::Buffer(2)], 128);
        let (b, _) = run(body, 1, &[ArgValue::Buffer(2)], 128);
        assert_eq!(a, b);
    }
}
