//! The GPU driver: JIT compilation plus the binary-rewriter hook.
//!
//! In Figure 1 of the paper, GT-Pin modifies the driver so that after
//! the JIT produces a machine-specific binary, the binary is diverted
//! to the GT-Pin binary re-writer instead of going straight to the
//! GPU. [`GpuDriver`] reproduces that hook: when a rewriter is
//! attached, every freshly compiled kernel binary passes through it
//! as bytes, and whatever comes back is what the GPU executes.

use gen_isa::encode::{decode_stream, leaders};
use gen_isa::DecodedKernel;
use ocl_runtime::device::DeviceError;
use ocl_runtime::host::ProgramSource;

use crate::jit::compile_kernel;

/// Build attempts per kernel: one initial try plus bounded retries
/// on *transient* JIT failures (structural errors surface at once).
const JIT_BUILD_ATTEMPTS: u32 = 3;

/// Watchdog for hung kernel launches, on a **virtual** clock: waits
/// and backoff are pure u64 nanosecond arithmetic, never wall time,
/// so a trial that hits the watchdog replays bit-identically.
///
/// The hang itself is injected (`GTPIN_FAULTS` site
/// `driver.launch_hang`); recovery is bounded retry with exponential
/// backoff, and exhaustion surfaces as
/// [`DeviceError::LaunchTimeout`].
#[derive(Debug, Clone, Copy)]
pub struct LaunchWatchdog {
    /// Virtual nanoseconds the watchdog waits before declaring one
    /// attempt hung.
    pub timeout_virtual_ns: u64,
    /// Total launch attempts before giving up.
    pub max_attempts: u32,
    /// Base backoff added after attempt `n` is `backoff << n`.
    pub backoff_base_ns: u64,
}

impl Default for LaunchWatchdog {
    fn default() -> LaunchWatchdog {
        LaunchWatchdog {
            timeout_virtual_ns: 10_000_000, // 10 virtual ms
            max_attempts: 4,
            backoff_base_ns: 1_000_000, // 1 virtual ms
        }
    }
}

impl LaunchWatchdog {
    /// Does the injected hang fire for this `(launch, attempt)` pair?
    /// Deterministic per plan seed; each retry draws independently,
    /// so any rate below 1 converges within a few attempts.
    pub fn hang_injected(&self, launch_index: u64, attempt: u32) -> bool {
        gtpin_faults::should_inject(
            gtpin_faults::site::LAUNCH_HANG,
            (launch_index << 8) | attempt as u64,
        )
    }

    /// Virtual nanoseconds burned by a hung attempt `n`: the full
    /// timeout plus the exponential backoff before the retry.
    pub fn wait_ns(&self, attempt: u32) -> u64 {
        self.timeout_virtual_ns + (self.backoff_base_ns << attempt.min(16))
    }
}

/// A binary rewriter attached to the driver (GT-Pin's engine, in
/// practice). The rewriter receives the encoded kernel binary and
/// returns a replacement binary.
pub trait BinaryRewriter {
    /// Rewrite the freshly JIT-compiled binary of kernel
    /// `kernel_index`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description; the driver surfaces it
    /// as a JIT failure.
    fn rewrite(&mut self, kernel_index: usize, binary: &[u8]) -> Result<Vec<u8>, String>;
}

/// Decode an encoded kernel container straight to the flattened,
/// executable view.
///
/// # Errors
///
/// Propagates [`gen_isa::DecodeError`] as a string.
pub fn decode_flat(bytes: &[u8]) -> Result<DecodedKernel, String> {
    let stream = decode_stream(bytes).map_err(|e| e.to_string())?;
    let bb_starts = leaders(&stream.instrs).map_err(|e| e.to_string())?;
    Ok(DecodedKernel {
        name: stream.name,
        metadata: stream.metadata,
        instrs: stream.instrs,
        bb_starts,
    })
}

/// The driver: owns JIT-compiled (and possibly rewritten) kernels.
#[derive(Default)]
pub struct GpuDriver {
    rewriter: Option<Box<dyn BinaryRewriter>>,
    kernels: Vec<DecodedKernel>,
    original_instruction_counts: Vec<usize>,
}

impl std::fmt::Debug for GpuDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuDriver")
            .field("kernels", &self.kernels.len())
            .field("rewriter_attached", &self.rewriter.is_some())
            .finish()
    }
}

impl GpuDriver {
    /// A driver with no rewriter attached.
    pub fn new() -> GpuDriver {
        GpuDriver::default()
    }

    /// Attach a binary rewriter; subsequent `clBuildProgram`s divert
    /// every kernel binary through it.
    pub fn set_rewriter(&mut self, rewriter: Box<dyn BinaryRewriter>) {
        self.rewriter = Some(rewriter);
    }

    /// Whether a rewriter is attached.
    pub fn has_rewriter(&self) -> bool {
        self.rewriter.is_some()
    }

    /// JIT-compile a program (and run the rewriter, if attached).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Jit`] on lowering, rewriting, or
    /// re-decoding failures.
    pub fn build(&mut self, source: &ProgramSource) -> Result<(), DeviceError> {
        let mut binaries = Vec::with_capacity(source.kernels.len());
        for ir in &source.kernels {
            // Transient build failures (only ever injected) get a
            // bounded retry; real lowering errors surface on the
            // first attempt, exactly as before.
            let mut attempt = 0u32;
            let binary = loop {
                match compile_kernel(ir) {
                    Ok(b) => break b,
                    Err(e) if e.is_transient() && attempt + 1 < JIT_BUILD_ATTEMPTS => {
                        attempt += 1;
                        gtpin_faults::note("recovered.jit_retry", 1);
                        gtpin_obs::warn!(
                            "driver: transient JIT failure for `{}`, retry {attempt}/{}",
                            ir.name,
                            JIT_BUILD_ATTEMPTS - 1
                        );
                    }
                    Err(e) => {
                        return Err(DeviceError::Jit {
                            kernel: ir.name.clone(),
                            detail: e.to_string(),
                        })
                    }
                }
            };
            binaries.push(binary);
        }
        self.kernels.clear();
        self.original_instruction_counts.clear();
        for (i, binary) in binaries.into_iter().enumerate() {
            let name = binary.name.clone();
            let mut bytes = binary.encode();
            self.original_instruction_counts
                .push(binary.static_instruction_count());
            if let Some(rw) = self.rewriter.as_mut() {
                bytes = rw.rewrite(i, &bytes).map_err(|detail| DeviceError::Jit {
                    kernel: name.clone(),
                    detail,
                })?;
            }
            let flat = decode_flat(&bytes).map_err(|detail| DeviceError::Jit {
                kernel: name.clone(),
                detail,
            })?;
            self.kernels.push(flat);
        }
        Ok(())
    }

    /// Number of built kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// The executable form of kernel `index`.
    pub fn kernel(&self, index: usize) -> Option<&DecodedKernel> {
        self.kernels.get(index)
    }

    /// Static instruction count of kernel `index` *before* any
    /// rewriting (used for instrumentation-overhead accounting).
    pub fn original_instruction_count(&self, index: usize) -> Option<usize> {
        self.original_instruction_counts.get(index).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::ExecSize;
    use ocl_runtime::ir::{IrOp, KernelIr};

    fn source() -> ProgramSource {
        let mut k = KernelIr::new("k", 0);
        k.body = vec![IrOp::Compute {
            ops: 4,
            width: ExecSize::S16,
        }];
        ProgramSource { kernels: vec![k] }
    }

    struct NopRewriter {
        calls: std::rc::Rc<std::cell::RefCell<usize>>,
    }

    impl BinaryRewriter for NopRewriter {
        fn rewrite(&mut self, _kernel_index: usize, binary: &[u8]) -> Result<Vec<u8>, String> {
            *self.calls.borrow_mut() += 1;
            Ok(binary.to_vec())
        }
    }

    #[test]
    fn build_without_rewriter_produces_executable_kernels() {
        let mut d = GpuDriver::new();
        d.build(&source()).unwrap();
        assert_eq!(d.num_kernels(), 1);
        let k = d.kernel(0).unwrap();
        assert_eq!(k.name, "k");
        assert_eq!(Some(k.instrs.len()), d.original_instruction_count(0));
    }

    #[test]
    fn rewriter_sees_every_kernel() {
        let calls = std::rc::Rc::new(std::cell::RefCell::new(0));
        let mut d = GpuDriver::new();
        d.set_rewriter(Box::new(NopRewriter {
            calls: calls.clone(),
        }));
        assert!(d.has_rewriter());
        let mut src = source();
        src.kernels.push(KernelIr::new("k2", 0));
        d.build(&src).unwrap();
        assert_eq!(*calls.borrow(), 2);
    }

    #[test]
    fn rewriter_failure_surfaces_as_jit_error() {
        struct Failing;
        impl BinaryRewriter for Failing {
            fn rewrite(&mut self, _: usize, _: &[u8]) -> Result<Vec<u8>, String> {
                Err("boom".into())
            }
        }
        let mut d = GpuDriver::new();
        d.set_rewriter(Box::new(Failing));
        let err = d.build(&source()).unwrap_err();
        assert!(matches!(err, DeviceError::Jit { .. }), "{err}");
    }

    #[test]
    fn corrupt_rewriter_output_rejected() {
        struct Corrupting;
        impl BinaryRewriter for Corrupting {
            fn rewrite(&mut self, _: usize, b: &[u8]) -> Result<Vec<u8>, String> {
                Ok(b[..b.len() - 3].to_vec())
            }
        }
        let mut d = GpuDriver::new();
        d.set_rewriter(Box::new(Corrupting));
        assert!(d.build(&source()).is_err());
    }

    #[test]
    fn rebuild_replaces_kernels() {
        let mut d = GpuDriver::new();
        d.build(&source()).unwrap();
        let mut bigger = source();
        bigger.kernels.push(KernelIr::new("extra", 0));
        d.build(&bigger).unwrap();
        assert_eq!(d.num_kernels(), 2);
    }
}
