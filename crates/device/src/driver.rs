//! The GPU driver: JIT compilation plus the binary-rewriter hook.
//!
//! In Figure 1 of the paper, GT-Pin modifies the driver so that after
//! the JIT produces a machine-specific binary, the binary is diverted
//! to the GT-Pin binary re-writer instead of going straight to the
//! GPU. [`GpuDriver`] reproduces that hook: when a rewriter is
//! attached, every freshly compiled kernel binary passes through it
//! as bytes, and whatever comes back is what the GPU executes.

use gen_isa::encode::{decode_stream, leaders};
use gen_isa::DecodedKernel;
use ocl_runtime::device::DeviceError;
use ocl_runtime::host::ProgramSource;

use crate::jit::compile_program;

/// A binary rewriter attached to the driver (GT-Pin's engine, in
/// practice). The rewriter receives the encoded kernel binary and
/// returns a replacement binary.
pub trait BinaryRewriter {
    /// Rewrite the freshly JIT-compiled binary of kernel
    /// `kernel_index`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description; the driver surfaces it
    /// as a JIT failure.
    fn rewrite(&mut self, kernel_index: usize, binary: &[u8]) -> Result<Vec<u8>, String>;
}

/// Decode an encoded kernel container straight to the flattened,
/// executable view.
///
/// # Errors
///
/// Propagates [`gen_isa::DecodeError`] as a string.
pub fn decode_flat(bytes: &[u8]) -> Result<DecodedKernel, String> {
    let stream = decode_stream(bytes).map_err(|e| e.to_string())?;
    let bb_starts = leaders(&stream.instrs).map_err(|e| e.to_string())?;
    Ok(DecodedKernel {
        name: stream.name,
        metadata: stream.metadata,
        instrs: stream.instrs,
        bb_starts,
    })
}

/// The driver: owns JIT-compiled (and possibly rewritten) kernels.
#[derive(Default)]
pub struct GpuDriver {
    rewriter: Option<Box<dyn BinaryRewriter>>,
    kernels: Vec<DecodedKernel>,
    original_instruction_counts: Vec<usize>,
}

impl std::fmt::Debug for GpuDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuDriver")
            .field("kernels", &self.kernels.len())
            .field("rewriter_attached", &self.rewriter.is_some())
            .finish()
    }
}

impl GpuDriver {
    /// A driver with no rewriter attached.
    pub fn new() -> GpuDriver {
        GpuDriver::default()
    }

    /// Attach a binary rewriter; subsequent `clBuildProgram`s divert
    /// every kernel binary through it.
    pub fn set_rewriter(&mut self, rewriter: Box<dyn BinaryRewriter>) {
        self.rewriter = Some(rewriter);
    }

    /// Whether a rewriter is attached.
    pub fn has_rewriter(&self) -> bool {
        self.rewriter.is_some()
    }

    /// JIT-compile a program (and run the rewriter, if attached).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Jit`] on lowering, rewriting, or
    /// re-decoding failures.
    pub fn build(&mut self, source: &ProgramSource) -> Result<(), DeviceError> {
        let binaries = compile_program(source).map_err(|e| DeviceError::Jit {
            kernel: String::new(),
            detail: e.to_string(),
        })?;
        self.kernels.clear();
        self.original_instruction_counts.clear();
        for (i, binary) in binaries.into_iter().enumerate() {
            let name = binary.name.clone();
            let mut bytes = binary.encode();
            self.original_instruction_counts
                .push(binary.static_instruction_count());
            if let Some(rw) = self.rewriter.as_mut() {
                bytes = rw.rewrite(i, &bytes).map_err(|detail| DeviceError::Jit {
                    kernel: name.clone(),
                    detail,
                })?;
            }
            let flat = decode_flat(&bytes).map_err(|detail| DeviceError::Jit {
                kernel: name.clone(),
                detail,
            })?;
            self.kernels.push(flat);
        }
        Ok(())
    }

    /// Number of built kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// The executable form of kernel `index`.
    pub fn kernel(&self, index: usize) -> Option<&DecodedKernel> {
        self.kernels.get(index)
    }

    /// Static instruction count of kernel `index` *before* any
    /// rewriting (used for instrumentation-overhead accounting).
    pub fn original_instruction_count(&self, index: usize) -> Option<usize> {
        self.original_instruction_counts.get(index).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::ExecSize;
    use ocl_runtime::ir::{IrOp, KernelIr};

    fn source() -> ProgramSource {
        let mut k = KernelIr::new("k", 0);
        k.body = vec![IrOp::Compute {
            ops: 4,
            width: ExecSize::S16,
        }];
        ProgramSource { kernels: vec![k] }
    }

    struct NopRewriter {
        calls: std::rc::Rc<std::cell::RefCell<usize>>,
    }

    impl BinaryRewriter for NopRewriter {
        fn rewrite(&mut self, _kernel_index: usize, binary: &[u8]) -> Result<Vec<u8>, String> {
            *self.calls.borrow_mut() += 1;
            Ok(binary.to_vec())
        }
    }

    #[test]
    fn build_without_rewriter_produces_executable_kernels() {
        let mut d = GpuDriver::new();
        d.build(&source()).unwrap();
        assert_eq!(d.num_kernels(), 1);
        let k = d.kernel(0).unwrap();
        assert_eq!(k.name, "k");
        assert_eq!(Some(k.instrs.len()), d.original_instruction_count(0));
    }

    #[test]
    fn rewriter_sees_every_kernel() {
        let calls = std::rc::Rc::new(std::cell::RefCell::new(0));
        let mut d = GpuDriver::new();
        d.set_rewriter(Box::new(NopRewriter {
            calls: calls.clone(),
        }));
        assert!(d.has_rewriter());
        let mut src = source();
        src.kernels.push(KernelIr::new("k2", 0));
        d.build(&src).unwrap();
        assert_eq!(*calls.borrow(), 2);
    }

    #[test]
    fn rewriter_failure_surfaces_as_jit_error() {
        struct Failing;
        impl BinaryRewriter for Failing {
            fn rewrite(&mut self, _: usize, _: &[u8]) -> Result<Vec<u8>, String> {
                Err("boom".into())
            }
        }
        let mut d = GpuDriver::new();
        d.set_rewriter(Box::new(Failing));
        let err = d.build(&source()).unwrap_err();
        assert!(matches!(err, DeviceError::Jit { .. }), "{err}");
    }

    #[test]
    fn corrupt_rewriter_output_rejected() {
        struct Corrupting;
        impl BinaryRewriter for Corrupting {
            fn rewrite(&mut self, _: usize, b: &[u8]) -> Result<Vec<u8>, String> {
                Ok(b[..b.len() - 3].to_vec())
            }
        }
        let mut d = GpuDriver::new();
        d.set_rewriter(Box::new(Corrupting));
        assert!(d.build(&source()).is_err());
    }

    #[test]
    fn rebuild_replaces_kernels() {
        let mut d = GpuDriver::new();
        d.build(&source()).unwrap();
        let mut bigger = source();
        bigger.kernels.push(KernelIr::new("extra", 0));
        d.build(&bigger).unwrap();
        assert_eq!(d.num_kernels(), 2);
    }
}
