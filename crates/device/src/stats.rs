//! Device-side execution statistics — the model's "hardware
//! performance counters". GT-Pin computes its own numbers through
//! injected instructions; these native counters are the ground truth
//! the tool is tested against, and the input to the timing model.

use gen_isa::{ExecSize, OpcodeCategory};
use serde::{Deserialize, Serialize};

/// Counters for one kernel launch, aggregated across hardware
/// threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Dynamic instructions executed (including any instrumentation).
    pub instructions: u64,
    /// Dynamic instructions per opcode category, indexed per
    /// [`OpcodeCategory::ALL`].
    pub per_category: [u64; 5],
    /// Dynamic instructions per SIMD width, indexed per
    /// [`ExecSize::ALL`].
    pub per_width: [u64; 5],
    /// Application-visible bytes read from global memory.
    pub bytes_read: u64,
    /// Application-visible bytes written to global memory.
    pub bytes_written: u64,
    /// Global-memory send messages issued.
    pub global_sends: u64,
    /// Cache hits among global sends.
    pub cache_hits: u64,
    /// Cache misses among global sends.
    pub cache_misses: u64,
    /// Hardware threads the launch dispatched.
    pub hw_threads: u64,
    /// Weighted issue cycles (latency-weighted instruction cost) —
    /// the compute term of the timing model.
    pub issue_cycles: u64,
    /// Bytes moved to the CPU/GPU-shared trace buffer by
    /// instrumentation (uncached round trips; zero for
    /// uninstrumented binaries). This traffic is what makes GT-Pin
    /// profiling runs 2–10× slower than native execution.
    pub trace_bytes: u64,
    /// Issue cycles spent on instrumentation sends to the trace
    /// buffer — the subset of [`ExecutionStats::issue_cycles`] the
    /// application would not pay natively.
    pub trace_cycles: u64,
    /// Trace records dropped because the buffer was full — honest
    /// data-loss accounting, always zero in fault-free runs with the
    /// default capacity.
    pub trace_dropped: u64,
    /// Trace records quarantined by the CPU-side checksum drain
    /// (corrupted in flight; zero unless corruption occurred).
    pub trace_quarantined: u64,
    /// Early shard drains taken when a per-thread trace shard hit its
    /// soft capacity (the records survive via spill — degradation,
    /// not loss).
    pub trace_early_drains: u64,
}

impl ExecutionStats {
    /// Record one executed instruction.
    pub fn count_instruction(
        &mut self,
        category: OpcodeCategory,
        width: ExecSize,
        issue_cost: u64,
    ) {
        self.instructions += 1;
        self.per_category[category_index(category)] += 1;
        self.per_width[width_index(width)] += 1;
        self.issue_cycles += issue_cost;
    }

    /// Merge another launch's counters into this one.
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.instructions += other.instructions;
        for i in 0..5 {
            self.per_category[i] += other.per_category[i];
            self.per_width[i] += other.per_width[i];
        }
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.global_sends += other.global_sends;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.hw_threads += other.hw_threads;
        self.issue_cycles += other.issue_cycles;
        self.trace_bytes += other.trace_bytes;
        self.trace_cycles += other.trace_cycles;
        self.trace_dropped += other.trace_dropped;
        self.trace_quarantined += other.trace_quarantined;
        self.trace_early_drains += other.trace_early_drains;
    }

    /// Instrumented-over-native slowdown on the compute term:
    /// `issue_cycles / (issue_cycles - trace_cycles)`. The paper
    /// reports this ratio in the 2–10× band for full instrumentation
    /// (Section III); uninstrumented launches report exactly 1.0.
    pub fn overhead_ratio(&self) -> f64 {
        let native = self.issue_cycles.saturating_sub(self.trace_cycles);
        if native == 0 || self.trace_cycles == 0 {
            return 1.0;
        }
        self.issue_cycles as f64 / native as f64
    }

    /// Fraction of instructions in the given category.
    pub fn category_fraction(&self, category: OpcodeCategory) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.per_category[category_index(category)] as f64 / self.instructions as f64
    }

    /// Fraction of instructions at the given SIMD width.
    pub fn width_fraction(&self, width: ExecSize) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.per_width[width_index(width)] as f64 / self.instructions as f64
    }
}

/// Index of a category in [`OpcodeCategory::ALL`].
pub fn category_index(category: OpcodeCategory) -> usize {
    OpcodeCategory::ALL
        .iter()
        .position(|&c| c == category)
        .expect("category is in ALL")
}

/// Index of a width in [`ExecSize::ALL`].
pub fn width_index(width: ExecSize) -> usize {
    ExecSize::ALL
        .iter()
        .position(|&w| w == width)
        .expect("width is in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_updates_all_views() {
        let mut s = ExecutionStats::default();
        s.count_instruction(OpcodeCategory::Computation, ExecSize::S16, 1);
        s.count_instruction(OpcodeCategory::Send, ExecSize::S8, 2);
        assert_eq!(s.instructions, 2);
        assert_eq!(
            s.per_category[category_index(OpcodeCategory::Computation)],
            1
        );
        assert_eq!(s.per_width[width_index(ExecSize::S8)], 1);
        assert_eq!(s.issue_cycles, 3);
        assert!((s.category_fraction(OpcodeCategory::Send) - 0.5).abs() < 1e-12);
        assert!((s.width_fraction(ExecSize::S16) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = ExecutionStats::default();
        a.count_instruction(OpcodeCategory::Move, ExecSize::S1, 1);
        a.bytes_read = 10;
        let mut b = ExecutionStats::default();
        b.count_instruction(OpcodeCategory::Move, ExecSize::S1, 1);
        b.bytes_written = 20;
        a.merge(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.bytes_read, 10);
        assert_eq!(a.bytes_written, 20);
    }

    #[test]
    fn overhead_ratio_covers_the_paper_band_and_degenerate_cases() {
        let mut s = ExecutionStats::default();
        assert_eq!(s.overhead_ratio(), 1.0, "empty stats");
        s.issue_cycles = 100;
        assert_eq!(s.overhead_ratio(), 1.0, "uninstrumented launch");
        s.trace_cycles = 75;
        assert!((s.overhead_ratio() - 4.0).abs() < 1e-12, "4x slowdown");
        s.trace_cycles = 100;
        assert_eq!(s.overhead_ratio(), 1.0, "all-trace degenerate case");
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = ExecutionStats::default();
        assert_eq!(s.category_fraction(OpcodeCategory::Move), 0.0);
        assert_eq!(s.width_fraction(ExecSize::S16), 0.0);
    }
}
