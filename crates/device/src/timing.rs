//! The analytic "native hardware" timing model.
//!
//! This model plays the role of the paper's real Ivy Bridge /
//! Haswell silicon: it converts a launch's execution statistics into
//! wall-clock seconds, sensitive to
//!
//! * **instruction mix** — via latency-weighted issue cycles,
//! * **occupancy** — launches with fewer hardware threads than EUs
//!   leave the machine underutilized,
//! * **frequency** — compute and L3 time scale with the clock; DRAM
//!   time does not (this is what makes the cross-frequency
//!   validation of Figure 8 non-trivial),
//! * **cache behaviour** — misses pay DRAM bandwidth,
//! * **per-trial noise** — a small seeded disturbance standing in
//!   for run-to-run variation on real hardware.

use serde::{Deserialize, Serialize};

use crate::stats::ExecutionStats;
use crate::topology::GpuTopology;

/// Timing-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// GPU frequency in Hz.
    pub frequency_hz: f64,
    /// Per-trial noise seed (real trials differ; replays of the same
    /// trial agree).
    pub trial_seed: u64,
    /// Relative noise amplitude (standard-deviation-ish; 0 disables).
    pub noise: f64,
    /// Fixed per-launch overhead in seconds (dispatch, walker setup).
    pub launch_overhead_s: f64,
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            frequency_hz: 1_150_000_000.0,
            trial_seed: 1,
            noise: 0.01,
            launch_overhead_s: 2.0e-6,
        }
    }
}

/// Converts [`ExecutionStats`] into seconds for a given machine.
#[derive(Debug, Clone, Copy)]
pub struct TimingModel {
    topology: GpuTopology,
    config: TimingConfig,
}

impl TimingModel {
    /// A model for `topology` under `config`.
    pub fn new(topology: GpuTopology, config: TimingConfig) -> TimingModel {
        TimingModel { topology, config }
    }

    /// The active configuration.
    pub fn config(&self) -> TimingConfig {
        self.config
    }

    /// Change the frequency (used by the cross-frequency validation).
    pub fn set_frequency(&mut self, hz: f64) {
        self.config.frequency_hz = hz;
    }

    /// Change the trial seed (a new "run" of the same machine).
    pub fn set_trial_seed(&mut self, seed: u64) {
        self.config.trial_seed = seed;
    }

    /// Effective instruction throughput divisor for a launch with
    /// `hw_threads` threads: how many issue cycles retire per GPU
    /// cycle across the machine.
    fn effective_parallelism(&self, hw_threads: u64) -> f64 {
        let eus = self.topology.execution_units as u64;
        let busy_eus = hw_threads.min(eus);
        // EUs with at least two resident threads hide latency well;
        // a single resident thread stalls more.
        let resident_per_eu = hw_threads.div_ceil(eus.max(1));
        let smt_efficiency = if resident_per_eu >= 2 { 1.0 } else { 0.6 };
        (busy_eus as f64 * smt_efficiency).max(0.6)
    }

    /// Seconds for one launch, noise-free.
    pub fn launch_seconds_ideal(&self, stats: &ExecutionStats) -> f64 {
        let parallel = self.effective_parallelism(stats.hw_threads);
        let compute_s = stats.issue_cycles as f64 / parallel / self.config.frequency_hz;
        let line = 64.0;
        let l3_bytes = stats.cache_hits as f64 * line;
        let l3_s = l3_bytes / (self.topology.l3_bytes_per_cycle * self.config.frequency_hz);
        let dram_bytes = stats.cache_misses as f64 * line;
        let dram_s = dram_bytes / self.topology.dram_bytes_per_second;
        // Instrumentation traffic to the CPU/GPU-shared trace buffer
        // bypasses the cache entirely.
        let trace_s = stats.trace_bytes as f64 / self.topology.dram_bytes_per_second;
        self.config.launch_overhead_s + compute_s + l3_s + dram_s + trace_s
    }

    /// Seconds for one launch including per-trial noise, keyed by the
    /// launch's position in the run.
    pub fn launch_seconds(&self, stats: &ExecutionStats, launch_index: u32) -> f64 {
        let ideal = self.launch_seconds_ideal(stats);
        ideal * self.noise_factor(launch_index)
    }

    fn noise_factor(&self, launch_index: u32) -> f64 {
        if self.config.noise == 0.0 {
            return 1.0;
        }
        // Sum of four uniforms, centred: approximately Gaussian in
        // [-2, 2] with unit-ish variance.
        let mut z = 0.0;
        for i in 0..4u64 {
            let h = mix(self.config.trial_seed, (launch_index as u64) << 3 | i);
            z += (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        }
        let centred = (z - 2.0) * 1.0; // [-2, 2]
        1.0 + self.config.noise * centred
    }
}

fn mix(seed: u64, x: u64) -> u64 {
    let mut v = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 30;
    v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v ^= v >> 27;
    v = v.wrapping_mul(0x94D0_49BB_1331_11EB);
    v ^= v >> 31;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GpuGeneration;

    fn model(freq: f64, seed: u64, noise: f64) -> TimingModel {
        TimingModel::new(
            GpuGeneration::IvyBridgeHd4000.topology(),
            TimingConfig {
                frequency_hz: freq,
                trial_seed: seed,
                noise,
                launch_overhead_s: 2.0e-6,
            },
        )
    }

    fn stats(issue: u64, threads: u64, hits: u64, misses: u64) -> ExecutionStats {
        ExecutionStats {
            instructions: issue,
            issue_cycles: issue,
            hw_threads: threads,
            cache_hits: hits,
            cache_misses: misses,
            ..Default::default()
        }
    }

    #[test]
    fn compute_time_scales_inversely_with_frequency() {
        let s = stats(1_000_000, 128, 0, 0);
        let fast = model(1.15e9, 1, 0.0).launch_seconds_ideal(&s);
        let slow = model(0.35e9, 1, 0.0).launch_seconds_ideal(&s);
        let ratio = (slow - 2e-6) / (fast - 2e-6);
        assert!((ratio - 1.15e9 / 0.35e9).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn dram_time_does_not_scale_with_frequency() {
        // Memory-dominated launch: almost all time is misses.
        let s = stats(100, 128, 0, 1_000_000);
        let fast = model(1.15e9, 1, 0.0).launch_seconds_ideal(&s);
        let slow = model(0.35e9, 1, 0.0).launch_seconds_ideal(&s);
        assert!(
            slow / fast < 1.1,
            "memory-bound kernels barely slow down: {}",
            slow / fast
        );
    }

    #[test]
    fn low_occupancy_launches_are_less_efficient() {
        let full = stats(1_000_000, 128, 0, 0);
        let tiny = stats(1_000_000, 1, 0, 0);
        let m = model(1.15e9, 1, 0.0);
        assert!(
            m.launch_seconds_ideal(&tiny) > 10.0 * m.launch_seconds_ideal(&full),
            "single-thread launches can't use 16 EUs"
        );
    }

    #[test]
    fn noise_is_small_bounded_and_trial_dependent() {
        let s = stats(1_000_000, 128, 1000, 1000);
        let m1 = model(1.15e9, 1, 0.01);
        let m2 = model(1.15e9, 2, 0.01);
        let ideal = m1.launch_seconds_ideal(&s);
        let mut differs = false;
        for i in 0..100 {
            let a = m1.launch_seconds(&s, i);
            let b = m2.launch_seconds(&s, i);
            assert!(
                (a / ideal - 1.0).abs() <= 0.02 + 1e-9,
                "noise bounded at 2σ"
            );
            if (a - b).abs() > 1e-15 {
                differs = true;
            }
        }
        assert!(differs, "different trials see different noise");
        assert_eq!(
            m1.launch_seconds(&s, 5),
            m1.launch_seconds(&s, 5),
            "same trial replays identically"
        );
    }

    #[test]
    fn haswell_outruns_ivy_bridge_on_wide_work() {
        let s = stats(10_000_000, 160, 0, 0);
        let ivy = TimingModel::new(
            GpuGeneration::IvyBridgeHd4000.topology(),
            TimingConfig {
                noise: 0.0,
                ..Default::default()
            },
        );
        let hsw = TimingModel::new(
            GpuGeneration::HaswellHd4600.topology(),
            TimingConfig {
                noise: 0.0,
                frequency_hz: 1.25e9,
                ..Default::default()
            },
        );
        assert!(hsw.launch_seconds_ideal(&s) < ivy.launch_seconds_ideal(&s));
    }
}
