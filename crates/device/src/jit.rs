//! The GPU driver's JIT: lowers kernel IR ("source") to GEN binaries.
//!
//! This is the compilation step that happens at `clBuildProgram` time
//! in Figure 1 of the paper — and the exact point where the GT-Pin
//! binary rewriter intercepts the machine-specific binary before it
//! reaches the GPU.
//!
//! # Register conventions
//!
//! | registers | use |
//! |---|---|
//! | `r0` | per-lane global work-item id (`thread_id * 16 + lane`) |
//! | `r1..r9` | kernel arguments (argument *i* in `r1+i`, broadcast) |
//! | `r16..r76` | data pool for generated arithmetic |
//! | `r80..r89` | address computation |
//! | `r90..r98` | computed trip counts |
//! | `r100..r108` | loop counters (by nesting depth) |
//! | `r120..r127` | **reserved for instrumentation** (never emitted) |
//!
//! Flag `f0` belongs to loop back-edges, `f1` to `if` branches and
//! generated `cmp`s.

use gen_isa::builder::KernelBuilder;
use gen_isa::{
    BlockId, CondMod, ExecSize, FlagReg, KernelBinary, Opcode, Reg, Src, Surface, Terminator,
};
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

/// First argument register.
pub const ARG_REG_BASE: u8 = 1;
/// Register holding per-lane global work-item ids.
pub const GID_REG: Reg = Reg(0);

/// JIT lowering failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitError {
    /// The IR failed its structural check.
    BadIr(String),
    /// Too many arguments to fit the register convention.
    TooManyArgs { num_args: u8 },
    /// Lowered code failed ISA validation (a JIT bug).
    Validation(String),
    /// An injected transient build failure (`GTPIN_FAULTS` site
    /// `jit.build_fail`). Retrying the same kernel may succeed —
    /// the driver's bounded retry loop recovers from these.
    Transient {
        /// The kernel whose build transiently failed.
        kernel: String,
    },
}

impl JitError {
    /// Is this failure worth retrying (as opposed to a structural
    /// error that will fail identically every time)?
    pub fn is_transient(&self) -> bool {
        matches!(self, JitError::Transient { .. })
    }
}

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitError::BadIr(s) => write!(f, "malformed kernel IR: {s}"),
            JitError::TooManyArgs { num_args } => {
                write!(
                    f,
                    "{num_args} arguments exceed the register convention (max 9)"
                )
            }
            JitError::Validation(s) => write!(f, "lowered binary failed validation: {s}"),
            JitError::Transient { kernel } => {
                write!(
                    f,
                    "transient build failure for kernel `{kernel}` (injected)"
                )
            }
        }
    }
}

impl std::error::Error for JitError {}

/// Register of argument `i`.
pub fn arg_reg(i: u8) -> Reg {
    Reg(ARG_REG_BASE + i)
}

struct LoopCtx {
    head: BlockId,
    counter: Reg,
    trip: Src,
}

struct IfCtx {
    end: BlockId,
}

struct Lowerer {
    b: KernelBuilder,
    cur: BlockId,
    data_cursor: usize,
    addr_cursor: usize,
    trip_cursor: u8,
    loops: Vec<LoopCtx>,
    ifs: Vec<IfCtx>,
}

const DATA_BASE: u8 = 16;
const DATA_POOL: usize = 60;
const ADDR_BASE: u8 = 80;
const ADDR_POOL: usize = 10;
const TRIP_BASE: u8 = 90;
const LOOP_COUNTER_BASE: u8 = 100;

impl Lowerer {
    fn data_reg(&mut self) -> Reg {
        let r = Reg(DATA_BASE + (self.data_cursor % DATA_POOL) as u8);
        self.data_cursor += 1;
        r
    }

    fn data_src(&self, back: usize) -> Src {
        let idx = (self.data_cursor + DATA_POOL - back) % DATA_POOL;
        Src::Reg(Reg(DATA_BASE + idx as u8))
    }

    fn addr_reg(&mut self) -> Reg {
        let r = Reg(ADDR_BASE + (self.addr_cursor % ADDR_POOL) as u8);
        self.addr_cursor += 1;
        r
    }

    fn innermost_counter(&self) -> Src {
        // Outside any loop, the per-lane work-item id plays the role
        // of the iteration variable (and keeps address operands in
        // registers so instructions never carry two immediates).
        self.loops
            .last()
            .map(|l| Src::Reg(l.counter))
            .unwrap_or(Src::Reg(GID_REG))
    }

    fn lower_op(&mut self, op: &IrOp) {
        match *op {
            IrOp::LoopBegin { trip } => {
                let depth = self.loops.len() as u8;
                let counter = Reg(LOOP_COUNTER_BASE + depth);
                let trip_src = match trip {
                    TripCount::Const(n) => Src::Imm(n.max(1)),
                    TripCount::Arg(a) => Src::Reg(arg_reg(a)),
                    TripCount::ArgShifted { arg, shift } => {
                        let t = Reg(TRIP_BASE + self.trip_cursor);
                        self.trip_cursor = (self.trip_cursor + 1) % 9;
                        self.b.block_mut(self.cur).alu2(
                            Opcode::Shr,
                            ExecSize::S1,
                            t,
                            Src::Reg(arg_reg(arg)),
                            Src::Imm(shift as u32),
                        );
                        Src::Reg(t)
                    }
                };
                // Counter bookkeeping runs at full width, as compiled
                // GEN code does — only the branch itself is scalar.
                self.b
                    .block_mut(self.cur)
                    .mov(ExecSize::S16, counter, Src::Imm(0));
                let head = self.b.new_block();
                self.b
                    .set_terminator(self.cur, Terminator::FallThrough(head));
                self.cur = head;
                self.loops.push(LoopCtx {
                    head,
                    counter,
                    trip: trip_src,
                });
            }
            IrOp::LoopEnd => {
                let ctx = self.loops.pop().expect("checked IR has matched loops");
                self.b
                    .block_mut(self.cur)
                    .add(
                        ExecSize::S16,
                        ctx.counter,
                        Src::Reg(ctx.counter),
                        Src::Imm(1),
                    )
                    .cmp(
                        ExecSize::S16,
                        CondMod::Lt,
                        FlagReg::F0,
                        Src::Reg(ctx.counter),
                        ctx.trip,
                    );
                let exit = self.b.new_block();
                self.b.set_terminator(
                    self.cur,
                    Terminator::CondJump {
                        flag: FlagReg::F0,
                        invert: false,
                        taken: ctx.head,
                        fallthrough: exit,
                    },
                );
                self.cur = exit;
            }
            IrOp::Compute { ops, width } => {
                const CYCLE: [Opcode; 7] = [
                    Opcode::Add,
                    Opcode::Mul,
                    Opcode::Mad,
                    Opcode::Min,
                    Opcode::Max,
                    Opcode::Sub,
                    Opcode::Avg,
                ];
                for i in 0..ops {
                    let opc = CYCLE[i as usize % CYCLE.len()];
                    let a = self.data_src(1);
                    let b = self.data_src(2);
                    let c = self.data_src(3);
                    let dst = self.data_reg();
                    let blk = self.b.block_mut(self.cur);
                    match opc.num_sources() {
                        3 => blk.alu3(opc, width, dst, a, b, c),
                        _ => blk.alu2(opc, width, dst, a, b),
                    };
                }
            }
            IrOp::MathCompute { ops, width } => {
                const CYCLE: [Opcode; 6] = [
                    Opcode::Inv,
                    Opcode::Sqrt,
                    Opcode::Exp,
                    Opcode::Log,
                    Opcode::Sin,
                    Opcode::Cos,
                ];
                for i in 0..ops {
                    let opc = CYCLE[i as usize % CYCLE.len()];
                    let a = self.data_src(1);
                    let dst = self.data_reg();
                    self.b.block_mut(self.cur).alu1(opc, width, dst, a);
                }
            }
            IrOp::Logic { ops, width } => {
                const CYCLE: [Opcode; 7] = [
                    Opcode::And,
                    Opcode::Or,
                    Opcode::Xor,
                    Opcode::Shl,
                    Opcode::Shr,
                    Opcode::Asr,
                    Opcode::Not,
                ];
                for i in 0..ops {
                    let opc = CYCLE[i as usize % CYCLE.len()];
                    let a = self.data_src(1);
                    let b = self.data_src(2);
                    let dst = self.data_reg();
                    let blk = self.b.block_mut(self.cur);
                    match opc.num_sources() {
                        1 => blk.alu1(opc, width, dst, a),
                        _ => blk.alu2(opc, width, dst, a, b),
                    };
                }
            }
            IrOp::Move { ops, width } => {
                for i in 0..ops {
                    let a = self.data_src(1);
                    let b = self.data_src(2);
                    let dst = self.data_reg();
                    let blk = self.b.block_mut(self.cur);
                    if i % 4 == 3 {
                        blk.alu2(Opcode::Sel, width, dst, a, b);
                    } else {
                        blk.mov(width, dst, a);
                    }
                }
            }
            IrOp::Load {
                arg,
                bytes,
                width,
                pattern,
            } => {
                let addr = self.lower_address(arg, bytes, pattern);
                let dst = self.data_reg();
                self.b
                    .block_mut(self.cur)
                    .send_read(width, dst, addr, Surface::Global, bytes);
            }
            IrOp::Store {
                arg,
                bytes,
                width,
                pattern,
            } => {
                let addr = self.lower_address(arg, bytes, pattern);
                let data = match self.data_src(1) {
                    Src::Reg(r) => r,
                    _ => Reg(DATA_BASE),
                };
                self.b
                    .block_mut(self.cur)
                    .send_write(width, addr, data, Surface::Global, bytes);
            }
            IrOp::IfArgLt { arg, value } => {
                self.b.block_mut(self.cur).cmp(
                    ExecSize::S16,
                    CondMod::Lt,
                    FlagReg::F1,
                    Src::Reg(arg_reg(arg)),
                    Src::Imm(value),
                );
                let then_block = self.b.new_block();
                let end_block = self.b.new_block();
                // Branch *around* the then-region when the condition
                // fails; then-region is next in layout.
                self.b.set_terminator(
                    self.cur,
                    Terminator::CondJump {
                        flag: FlagReg::F1,
                        invert: true,
                        taken: end_block,
                        fallthrough: then_block,
                    },
                );
                self.cur = then_block;
                self.ifs.push(IfCtx { end: end_block });
            }
            IrOp::EndIf => {
                let ctx = self.ifs.pop().expect("checked IR has matched ifs");
                self.b
                    .set_terminator(self.cur, Terminator::FallThrough(ctx.end));
                self.cur = ctx.end;
            }
        }
    }

    /// Emit address computation for a memory access; returns the
    /// address register.
    fn lower_address(&mut self, arg: u8, bytes: u32, pattern: AccessPattern) -> Reg {
        let addr = self.addr_reg();
        let counter = self.innermost_counter();
        let blk = self.b.block_mut(self.cur);
        // addr = arg_base + gid * 4
        blk.mad(
            ExecSize::S16,
            addr,
            Src::Reg(GID_REG),
            Src::Imm(4),
            Src::Reg(arg_reg(arg)),
        );
        match pattern {
            AccessPattern::Linear => {
                // addr += iter * bytes (consecutive chunks per iteration)
                blk.mad(
                    ExecSize::S16,
                    addr,
                    counter,
                    Src::Imm(bytes.max(1)),
                    Src::Reg(addr),
                );
            }
            AccessPattern::Strided(stride) => {
                blk.mad(
                    ExecSize::S16,
                    addr,
                    counter,
                    Src::Imm(stride),
                    Src::Reg(addr),
                );
            }
            AccessPattern::Gather => {
                let h = self.addr_reg();
                let blk = self.b.block_mut(self.cur);
                blk.alu2(
                    Opcode::Mul,
                    ExecSize::S16,
                    h,
                    counter,
                    Src::Imm(0x9E37_79B1),
                );
                blk.alu2(
                    Opcode::Xor,
                    ExecSize::S16,
                    h,
                    Src::Reg(h),
                    Src::Reg(GID_REG),
                );
                blk.alu2(
                    Opcode::And,
                    ExecSize::S16,
                    h,
                    Src::Reg(h),
                    Src::Imm(0x003F_FFC0),
                );
                blk.add(ExecSize::S16, addr, Src::Reg(addr), Src::Reg(h));
            }
        }
        addr
    }
}

/// Lower one kernel IR to a GEN binary.
///
/// # Errors
///
/// Returns [`JitError::BadIr`] when the IR is structurally invalid,
/// [`JitError::TooManyArgs`] past the register convention, and
/// [`JitError::Validation`] if the produced binary fails ISA
/// validation (which would be a JIT bug).
pub fn compile_kernel(ir: &KernelIr) -> Result<KernelBinary, JitError> {
    if gtpin_faults::enabled() {
        // Each build attempt of the same kernel draws an independent
        // (but replay-identical) decision: the occurrence counter
        // advances per attempt, so a bounded retry loop converges at
        // any rate below 1.
        let id = gtpin_faults::hash_str(&ir.name);
        let attempt = gtpin_faults::occurrence(gtpin_faults::site::JIT_FAIL, id);
        if gtpin_faults::should_inject(gtpin_faults::site::JIT_FAIL, id ^ (attempt + 1)) {
            return Err(JitError::Transient {
                kernel: ir.name.clone(),
            });
        }
    }
    ir.check().map_err(|e| JitError::BadIr(e.to_string()))?;
    if ir.num_args > 9 {
        return Err(JitError::TooManyArgs {
            num_args: ir.num_args,
        });
    }

    let mut b = KernelBuilder::new(ir.name.clone());
    b.set_num_args(ir.num_args);
    let entry = b.entry_block();
    let mut lo = Lowerer {
        b,
        cur: entry,
        data_cursor: 0,
        addr_cursor: 0,
        trip_cursor: 0,
        loops: Vec::new(),
        ifs: Vec::new(),
    };
    // Seed the data pool so generated arithmetic has varied inputs.
    lo.b.block_mut(entry)
        .mov(ExecSize::S16, Reg(DATA_BASE), Src::Reg(GID_REG))
        .add(
            ExecSize::S16,
            Reg(DATA_BASE + 1),
            Src::Reg(GID_REG),
            Src::Imm(0x55),
        );
    lo.data_cursor = 2;

    for op in &ir.body {
        lo.lower_op(op);
    }
    lo.b.block_mut(lo.cur).eot();
    lo.b.build()
        .map_err(|e| JitError::Validation(e.to_string()))
}

/// Lower every kernel of a program source.
///
/// # Errors
///
/// Propagates the first kernel's [`JitError`].
pub fn compile_program(
    source: &ocl_runtime::host::ProgramSource,
) -> Result<Vec<KernelBinary>, JitError> {
    source.kernels.iter().map(compile_kernel).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::validate::validate;

    fn ir_with(body: Vec<IrOp>, num_args: u8) -> KernelIr {
        let mut k = KernelIr::new("k", num_args);
        k.body = body;
        k
    }

    #[test]
    fn straight_line_kernel_compiles_and_validates() {
        let k = compile_kernel(&ir_with(
            vec![IrOp::Compute {
                ops: 10,
                width: ExecSize::S16,
            }],
            0,
        ))
        .unwrap();
        assert!(validate(&k).is_ok());
        // 2 seeds + 10 compute + eot
        assert_eq!(k.static_instruction_count(), 13);
        assert_eq!(k.num_blocks(), 1);
    }

    #[test]
    fn loop_creates_head_and_exit_blocks() {
        let k = compile_kernel(&ir_with(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(4),
                },
                IrOp::Compute {
                    ops: 2,
                    width: ExecSize::S8,
                },
                IrOp::LoopEnd,
            ],
            0,
        ))
        .unwrap();
        assert!(
            k.num_blocks() >= 3,
            "pre-loop, head, exit: {}",
            k.num_blocks()
        );
        let flat = k.flatten();
        assert!(
            flat.instrs
                .iter()
                .any(|i| i.opcode == Opcode::Brc && i.branch_offset < 0),
            "loop has a backward branch"
        );
    }

    #[test]
    fn if_region_lowered_with_inverted_branch() {
        let k = compile_kernel(&ir_with(
            vec![
                IrOp::IfArgLt { arg: 0, value: 5 },
                IrOp::Compute {
                    ops: 3,
                    width: ExecSize::S16,
                },
                IrOp::EndIf,
            ],
            1,
        ))
        .unwrap();
        let flat = k.flatten();
        let brc = flat
            .instrs
            .iter()
            .find(|i| i.opcode == Opcode::Brc)
            .expect("has a conditional branch");
        assert!(brc.pred.unwrap().invert, "branches around the then-region");
        assert!(brc.branch_offset > 0, "forward branch");
    }

    #[test]
    fn memory_ops_produce_global_sends() {
        let k = compile_kernel(&ir_with(
            vec![
                IrOp::Load {
                    arg: 0,
                    bytes: 64,
                    width: ExecSize::S16,
                    pattern: AccessPattern::Linear,
                },
                IrOp::Store {
                    arg: 1,
                    bytes: 32,
                    width: ExecSize::S8,
                    pattern: AccessPattern::Gather,
                },
            ],
            2,
        ))
        .unwrap();
        let flat = k.flatten();
        let reads: u64 = flat.instrs.iter().map(|i| i.app_bytes_read()).sum();
        let writes: u64 = flat.instrs.iter().map(|i| i.app_bytes_written()).sum();
        assert_eq!(reads, 64);
        assert_eq!(writes, 32);
    }

    #[test]
    fn app_code_never_touches_instrumentation_registers() {
        let k = compile_kernel(&ir_with(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::ArgShifted { arg: 0, shift: 3 },
                },
                IrOp::Compute {
                    ops: 50,
                    width: ExecSize::S16,
                },
                IrOp::Load {
                    arg: 1,
                    bytes: 64,
                    width: ExecSize::S16,
                    pattern: AccessPattern::Strided(256),
                },
                IrOp::LoopEnd,
            ],
            2,
        ))
        .unwrap();
        assert!(k.metadata.max_app_reg <= gen_isa::FIRST_INSTRUMENTATION_REG);
        assert!(!k.metadata.instrumented);
    }

    #[test]
    fn bad_ir_rejected() {
        let err = compile_kernel(&ir_with(vec![IrOp::LoopEnd], 0)).unwrap_err();
        assert!(matches!(err, JitError::BadIr(_)));
    }

    #[test]
    fn too_many_args_rejected() {
        let err = compile_kernel(&ir_with(vec![], 12)).unwrap_err();
        assert_eq!(err, JitError::TooManyArgs { num_args: 12 });
    }

    #[test]
    fn nested_loops_use_distinct_counters() {
        let k = compile_kernel(&ir_with(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(3),
                },
                IrOp::LoopBegin {
                    trip: TripCount::Const(5),
                },
                IrOp::Compute {
                    ops: 1,
                    width: ExecSize::S4,
                },
                IrOp::LoopEnd,
                IrOp::LoopEnd,
            ],
            0,
        ))
        .unwrap();
        let flat = k.flatten();
        let counters: std::collections::HashSet<u8> = flat
            .instrs
            .iter()
            .filter(|i| i.opcode == Opcode::Mov && matches!(i.srcs[0], Src::Imm(0)))
            .filter_map(|i| i.dst.map(|r| r.0))
            .filter(|&r| r >= LOOP_COUNTER_BASE)
            .collect();
        assert_eq!(counters.len(), 2, "two distinct loop counter registers");
    }
}
