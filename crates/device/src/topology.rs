//! GPU topologies: execution units, subslices, hardware threads.
//!
//! Figure 2 of the paper shows the test system: an Ivy Bridge
//! HD 4000 with 16 EUs in two subslices, 8 hardware threads per EU
//! (128 simultaneous hardware threads), peak 332.8 GFLOPS at a
//! maximum frequency of 1150 MHz. Section V-E adds the Haswell
//! HD 4600 with 20 EUs.

use serde::{Deserialize, Serialize};

/// A named GPU generation with a stock topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// Ivy Bridge HD 4000: 16 EUs, two subslices (the paper's main
    /// test system).
    IvyBridgeHd4000,
    /// Haswell HD 4600: 20 EUs (the paper's cross-generation
    /// validation target).
    HaswellHd4600,
}

impl GpuGeneration {
    /// The stock topology of this generation.
    pub fn topology(self) -> GpuTopology {
        match self {
            GpuGeneration::IvyBridgeHd4000 => GpuTopology {
                name: "Intel HD 4000 (Ivy Bridge)",
                execution_units: 16,
                subslices: 2,
                threads_per_eu: 8,
                max_frequency_hz: 1_150_000_000.0,
                llc_slice_kib: 256,
                dram_bytes_per_second: 12.0e9,
                l3_bytes_per_cycle: 64.0,
            },
            GpuGeneration::HaswellHd4600 => GpuTopology {
                name: "Intel HD 4600 (Haswell)",
                execution_units: 20,
                subslices: 2,
                threads_per_eu: 7,
                max_frequency_hz: 1_250_000_000.0,
                llc_slice_kib: 256,
                dram_bytes_per_second: 14.0e9,
                l3_bytes_per_cycle: 64.0,
            },
        }
    }
}

impl std::fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.topology().name)
    }
}

/// The machine parameters the execution and timing models consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuTopology {
    /// Human-readable name.
    pub name: &'static str,
    /// Number of execution units.
    pub execution_units: u32,
    /// Number of subslices the EUs are organized into.
    pub subslices: u32,
    /// SMT hardware threads per EU.
    pub threads_per_eu: u32,
    /// Maximum GPU frequency in Hz.
    pub max_frequency_hz: f64,
    /// Last-level-cache slice size in KiB.
    pub llc_slice_kib: u32,
    /// Sustained DRAM bandwidth in bytes/second (frequency
    /// independent).
    pub dram_bytes_per_second: f64,
    /// L3 bandwidth in bytes per GPU cycle (scales with frequency).
    pub l3_bytes_per_cycle: f64,
}

impl GpuTopology {
    /// Total simultaneous hardware threads (EUs × threads/EU); 128 on
    /// the HD 4000.
    pub fn total_hw_threads(&self) -> u32 {
        self.execution_units * self.threads_per_eu
    }

    /// EUs per subslice.
    pub fn eus_per_subslice(&self) -> u32 {
        self.execution_units / self.subslices
    }

    /// Pricing knobs for the static cycle estimator
    /// ([`gtpin_analyze::StaticCost`]), derived from this topology so
    /// the same kernel prices differently across generations:
    ///
    /// * the send base cost grows with hardware-thread pressure (more
    ///   threads contending for the same message gateway);
    /// * the payload bandwidth divisor is the per-cycle DRAM budget,
    ///   `dram_bytes_per_second / max_frequency_hz`, floored at one
    ///   byte per cycle;
    /// * issue tables are fixed per [`gen_isa::OpcodeCategory`]: one
    ///   cycle for moves and logic, two for control and computation.
    ///
    /// All derived knobs are integers so estimates stay bit-stable.
    pub fn cost_params(&self) -> gtpin_analyze::CostParams {
        let send_base = 16 + u64::from(self.total_hw_threads() / 8);
        let bytes_per_cycle = (self.dram_bytes_per_second / self.max_frequency_hz) as u64;
        gtpin_analyze::CostParams {
            frequency_hz: self.max_frequency_hz,
            // Move, Logic, Control, Computation, Send (base).
            issue_cycles: [1, 1, 2, 2, send_base],
            extended_math_cycles: 6,
            send_bytes_per_cycle: bytes_per_cycle.max(1),
            native_simd_lanes: 4,
            assumed_trips: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hd4000_matches_the_paper() {
        let t = GpuGeneration::IvyBridgeHd4000.topology();
        assert_eq!(t.execution_units, 16);
        assert_eq!(t.subslices, 2);
        assert_eq!(t.eus_per_subslice(), 8);
        assert_eq!(t.threads_per_eu, 8);
        assert_eq!(
            t.total_hw_threads(),
            128,
            "128 simultaneous hardware threads"
        );
        assert!((t.max_frequency_hz - 1.15e9).abs() < 1.0);
    }

    #[test]
    fn cost_params_vary_across_generations() {
        let ivy = GpuGeneration::IvyBridgeHd4000.topology().cost_params();
        let hsw = GpuGeneration::HaswellHd4600.topology().cost_params();
        // 128 threads / 8 = 16 extra send cycles on Ivy Bridge; 140/8
        // = 17 on Haswell.
        assert_eq!(ivy.issue_cycles[4], 32);
        assert_eq!(hsw.issue_cycles[4], 33);
        // 12e9 / 1.15e9 ≈ 10 bytes per cycle; 14e9 / 1.25e9 ≈ 11.
        assert_eq!(ivy.send_bytes_per_cycle, 10);
        assert_eq!(hsw.send_bytes_per_cycle, 11);
        assert!(ivy != hsw);
    }

    #[test]
    fn hd4600_has_more_parallelism() {
        let ivy = GpuGeneration::IvyBridgeHd4000.topology();
        let hsw = GpuGeneration::HaswellHd4600.topology();
        assert_eq!(hsw.execution_units, 20);
        assert!(hsw.execution_units > ivy.execution_units);
    }
}
