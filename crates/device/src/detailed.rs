//! The detailed cycle-level simulator — the *slow* path whose cost
//! motivates the whole paper.
//!
//! Where the analytic model converts counters to seconds in O(1), this
//! simulator walks the machine cycle by cycle: threads are assigned
//! round-robin to EUs, each EU issues at most one instruction per
//! cycle from its resident SMT threads (in-order per thread, with a
//! per-register scoreboard), ALU results have multi-cycle latency,
//! extended math is slower still, and send results arrive after a
//! cache-hit or DRAM-miss delay. Architectural semantics are shared
//! with the functional engine (the internal `machine` module), so the two can
//! never diverge on results — only on time.
//!
//! Simulating a full program here is orders of magnitude slower than
//! native functional execution; simulating only the intervals subset
//! selection picks is the paper's remedy.

use gen_isa::{DecodedKernel, Opcode};
use ocl_runtime::api::ArgValue;

use crate::cache::{Cache, CacheConfig};
use crate::executor::{ExecError, DISPATCH_WIDTH};
use crate::machine::{step, StepOutcome, ThreadState};
use crate::memory::TraceBuffer;
use crate::stats::ExecutionStats;
use crate::topology::GpuTopology;

/// Latency parameters of the detailed pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetailedConfig {
    /// Result latency of ordinary ALU instructions.
    pub alu_latency: u64,
    /// Result latency of extended math.
    pub math_latency: u64,
    /// Send result latency on a cache hit.
    pub send_hit_latency: u64,
    /// Send result latency on a miss (DRAM round trip).
    pub send_miss_latency: u64,
    /// Per-thread dynamic instruction budget (runaway guard).
    pub thread_budget: u64,
}

impl Default for DetailedConfig {
    fn default() -> DetailedConfig {
        DetailedConfig {
            alu_latency: 4,
            math_latency: 16,
            send_hit_latency: 50,
            send_miss_latency: 300,
            thread_budget: 8_000_000,
        }
    }
}

/// What one detailed simulation produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedResult {
    /// Simulated GPU cycles for the launch (max across EUs, with a
    /// DRAM bandwidth floor).
    pub cycles: u64,
    /// Cycles converted to seconds at the simulated frequency.
    pub seconds: f64,
    /// Total issue cycles across EUs (each EU's busy cycles summed).
    pub busy_cycles: u64,
    /// Total cycles summed across the EUs that had work (the
    /// denominator of [`occupancy`](DetailedResult::occupancy)).
    pub eu_cycles: u64,
    /// Architectural statistics (identical to functional execution).
    pub stats: ExecutionStats,
}

impl DetailedResult {
    /// Fraction of EU-cycles that issued an instruction — the
    /// machine-utilization figure a designer reads off a detailed
    /// simulation.
    pub fn occupancy(&self) -> f64 {
        if self.eu_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.eu_cycles as f64
        }
    }
}

struct ThreadCtx {
    st: ThreadState,
    ip: i64,
    executed: u64,
    reg_ready: Vec<u64>,
    flag_ready: [u64; 2],
    done: bool,
}

impl ThreadCtx {
    fn new(thread_id: u64, args: &[ArgValue]) -> ThreadCtx {
        ThreadCtx {
            st: ThreadState::new(thread_id, args),
            ip: 0,
            executed: 0,
            reg_ready: vec![0; gen_isa::NUM_GRF as usize],
            flag_ready: [0; 2],
            done: false,
        }
    }

    /// Earliest cycle at which the next instruction's dependencies
    /// resolve, or `None` when the thread is done.
    fn ready_at(&self, kernel: &DecodedKernel) -> Option<u64> {
        if self.done {
            return None;
        }
        let instr = kernel.instrs.get(self.ip as usize)?;
        let mut at = 0u64;
        for r in instr.reads() {
            at = at.max(self.reg_ready[r.0 as usize]);
        }
        if let Some(p) = instr.pred {
            at = at.max(self.flag_ready[p.flag.index()]);
        }
        Some(at)
    }
}

/// The cycle-level simulator. Owns its own cache so detailed runs
/// don't disturb the native device's warm state.
pub struct DetailedSimulator {
    topology: GpuTopology,
    config: DetailedConfig,
    frequency_hz: f64,
    cache: Cache,
    trace: TraceBuffer,
}

impl DetailedSimulator {
    /// A simulator of `topology` at `frequency_hz`.
    pub fn new(
        topology: GpuTopology,
        frequency_hz: f64,
        config: DetailedConfig,
    ) -> DetailedSimulator {
        DetailedSimulator {
            topology,
            config,
            frequency_hz,
            cache: Cache::new(CacheConfig::llc_slice(topology.llc_slice_kib)),
            trace: TraceBuffer::new(),
        }
    }

    /// Start from a captured warm cache (a
    /// [`CheckpointLibrary`](crate::checkpoint::CheckpointLibrary)
    /// snapshot) instead of a cold machine — the PinPlay-style
    /// warm-up the CPU SimPoint toolchain uses before each sample.
    pub fn restore_cache(&mut self, cache: Cache) {
        self.cache = cache;
    }

    /// Simulate one kernel launch in detail.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on runaway loops or malformed control
    /// flow.
    pub fn simulate_launch(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        global_work_size: u64,
    ) -> Result<DetailedResult, ExecError> {
        let num_threads = global_work_size.div_ceil(DISPATCH_WIDTH).max(1);
        let num_eus = self.topology.execution_units as u64;
        let mut stats = ExecutionStats {
            hw_threads: num_threads,
            ..Default::default()
        };
        let mut max_cycles = 0u64;
        let mut busy_cycles = 0u64;
        let mut eu_cycles = 0u64;

        for eu in 0..num_eus.min(num_threads) {
            // Threads assigned round-robin to EUs.
            let thread_ids: Vec<u64> = (eu..num_threads).step_by(num_eus as usize).collect();
            let (cycles, busy) = self.simulate_eu(kernel, args, &thread_ids, &mut stats)?;
            max_cycles = max_cycles.max(cycles);
            busy_cycles += busy;
            eu_cycles += cycles;
        }

        // DRAM bandwidth floor: total miss traffic cannot beat the
        // memory system.
        let dram_bytes_per_cycle = self.topology.dram_bytes_per_second / self.frequency_hz;
        let dram_floor = (stats.cache_misses as f64 * 64.0 / dram_bytes_per_cycle) as u64;
        let cycles = max_cycles.max(dram_floor);

        Ok(DetailedResult {
            cycles,
            seconds: cycles as f64 / self.frequency_hz,
            busy_cycles,
            eu_cycles,
            stats,
        })
    }

    fn simulate_eu(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        thread_ids: &[u64],
        stats: &mut ExecutionStats,
    ) -> Result<(u64, u64), ExecError> {
        let slots = self.topology.threads_per_eu as usize;
        let mut waiting = thread_ids.iter().copied();
        let mut active: Vec<ThreadCtx> = waiting
            .by_ref()
            .take(slots)
            .map(|t| ThreadCtx::new(t, args))
            .collect();
        let mut cycle = 0u64;
        let mut busy = 0u64;
        let mut rr = 0usize;

        while !active.is_empty() {
            // Find a ready thread, round-robin from rr.
            let n = active.len();
            let mut issued = false;
            let mut next_ready = u64::MAX;
            for k in 0..n {
                let i = (rr + k) % n;
                let ready_at = active[i].ready_at(kernel).expect("active threads not done");
                if ready_at <= cycle {
                    self.issue(kernel, &mut active[i], cycle, stats)?;
                    rr = (i + 1) % n;
                    issued = true;
                    busy += 1;
                    break;
                }
                next_ready = next_ready.min(ready_at);
            }

            if issued {
                cycle += 1;
            } else {
                // Nothing ready: the EU stalls. A cycle-level
                // simulator pays for every cycle — this is precisely
                // why detailed simulation is so much slower than
                // native execution, and what subset selection
                // amortizes. (`next_ready` guards against pathological
                // multi-thousand-cycle gaps.)
                cycle = (cycle + 1).max(next_ready.min(cycle + 64));
            }

            // Retire finished threads, admit waiting ones.
            let mut i = 0;
            while i < active.len() {
                if active[i].done {
                    active.swap_remove(i);
                    if let Some(t) = waiting.next() {
                        active.push(ThreadCtx::new(t, args));
                    }
                } else {
                    i += 1;
                }
            }
            if !active.is_empty() {
                rr %= active.len();
            }
        }
        Ok((cycle, busy))
    }

    fn issue(
        &mut self,
        kernel: &DecodedKernel,
        t: &mut ThreadCtx,
        cycle: u64,
        stats: &mut ExecutionStats,
    ) -> Result<(), ExecError> {
        if t.executed >= self.config.thread_budget {
            return Err(ExecError::BudgetExceeded {
                budget: self.config.thread_budget,
            });
        }
        if t.ip < 0 || t.ip as usize >= kernel.instrs.len() {
            return Err(ExecError::RanOffEnd { ip: t.ip });
        }
        let instr = &kernel.instrs[t.ip as usize];
        t.executed += 1;
        let issue = crate::executor::instruction_cost(instr);
        t.st.issue_cycles += issue;
        stats.count_instruction(instr.opcode.category(), instr.exec_size, issue);

        let misses_before = stats.cache_misses;
        let outcome = step(
            &mut t.st,
            instr,
            &mut self.cache,
            &mut self.trace,
            stats,
            None,
        );
        let missed = stats.cache_misses > misses_before;

        let latency = match instr.opcode {
            Opcode::Inv | Opcode::Sqrt | Opcode::Exp | Opcode::Log | Opcode::Sin | Opcode::Cos => {
                self.config.math_latency
            }
            Opcode::Send | Opcode::Sendc => {
                if missed {
                    self.config.send_miss_latency
                } else {
                    self.config.send_hit_latency
                }
            }
            _ => self.config.alu_latency,
        };
        if let Some(dst) = instr.dst {
            t.reg_ready[dst.0 as usize] = cycle + latency;
        }
        if let Some(flag) = instr.flag {
            t.flag_ready[flag.index()] = cycle + 2;
        }

        match outcome {
            StepOutcome::Done => t.done = true,
            StepOutcome::Fault => return Err(ExecError::StrayReturn { ip: t.ip as usize }),
            StepOutcome::Branch(off) => t.ip += 1 + off as i64,
            StepOutcome::Next => t.ip += 1,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecConfig, Executor};
    use crate::jit::compile_kernel;
    use crate::topology::GpuGeneration;
    use gen_isa::ExecSize;
    use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

    fn kernel(body: Vec<IrOp>, num_args: u8) -> DecodedKernel {
        let mut ir = KernelIr::new("d", num_args);
        ir.body = body;
        compile_kernel(&ir).unwrap().flatten()
    }

    fn sim() -> DetailedSimulator {
        DetailedSimulator::new(
            GpuGeneration::IvyBridgeHd4000.topology(),
            1.15e9,
            DetailedConfig::default(),
        )
    }

    #[test]
    fn architectural_results_match_functional_execution() {
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(7),
                },
                IrOp::Compute {
                    ops: 6,
                    width: ExecSize::S16,
                },
                IrOp::Load {
                    arg: 0,
                    bytes: 64,
                    width: ExecSize::S16,
                    pattern: AccessPattern::Linear,
                },
                IrOp::LoopEnd,
            ],
            1,
        );
        let args = [ArgValue::Buffer(0)];
        let detailed = sim().simulate_launch(&k, &args, 128).unwrap();

        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let functional = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&k, &args, 128)
        .unwrap();

        assert_eq!(detailed.stats.instructions, functional.instructions);
        assert_eq!(detailed.stats.per_category, functional.per_category);
        assert_eq!(detailed.stats.bytes_read, functional.bytes_read);
    }

    #[test]
    fn cycles_grow_with_work() {
        let small = kernel(
            vec![IrOp::Compute {
                ops: 10,
                width: ExecSize::S16,
            }],
            0,
        );
        let large = kernel(
            vec![IrOp::Compute {
                ops: 200,
                width: ExecSize::S16,
            }],
            0,
        );
        let cs = sim().simulate_launch(&small, &[], 256).unwrap().cycles;
        let cl = sim().simulate_launch(&large, &[], 256).unwrap().cycles;
        assert!(
            cl > 4 * cs,
            "20× more work should cost clearly more cycles: {cs} vs {cl}"
        );
    }

    #[test]
    fn memory_bound_kernels_cost_more_cycles_per_instruction() {
        let compute = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(50),
                },
                IrOp::Compute {
                    ops: 10,
                    width: ExecSize::S16,
                },
                IrOp::LoopEnd,
            ],
            0,
        );
        let memory = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(50),
                },
                IrOp::Load {
                    arg: 0,
                    bytes: 64,
                    width: ExecSize::S16,
                    pattern: AccessPattern::Gather,
                },
                // The compute consumes the loaded value, so the miss
                // latency is actually on the critical path.
                IrOp::Compute {
                    ops: 2,
                    width: ExecSize::S16,
                },
                IrOp::LoopEnd,
            ],
            1,
        );
        let rc = sim().simulate_launch(&compute, &[], 64).unwrap();
        let rm = sim()
            .simulate_launch(&memory, &[ArgValue::Buffer(0)], 64)
            .unwrap();
        let cpi_c = rc.cycles as f64 / rc.stats.instructions as f64;
        let cpi_m = rm.cycles as f64 / rm.stats.instructions as f64;
        assert!(
            cpi_m > cpi_c,
            "gather kernel CPI {cpi_m} should exceed compute CPI {cpi_c}"
        );
    }

    #[test]
    fn smt_hides_latency() {
        // One thread per EU vs eight: eight threads should take far
        // fewer than 8× the cycles of one.
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(20),
                },
                IrOp::MathCompute {
                    ops: 4,
                    width: ExecSize::S8,
                },
                IrOp::LoopEnd,
            ],
            0,
        );
        let one = sim().simulate_launch(&k, &[], 16 * 16).unwrap().cycles; // 16 threads, 1/EU
        let eight = sim().simulate_launch(&k, &[], 16 * 16 * 8).unwrap().cycles; // 8/EU
        assert!(
            (eight as f64) < 4.0 * one as f64,
            "SMT overlap: {one} cycles for 1 thread/EU, {eight} for 8"
        );
    }

    #[test]
    fn detailed_simulation_is_slower_than_functional_in_wall_clock() {
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(400),
                },
                IrOp::Compute {
                    ops: 20,
                    width: ExecSize::S16,
                },
                IrOp::MathCompute {
                    ops: 4,
                    width: ExecSize::S16,
                },
                IrOp::LoopEnd,
            ],
            0,
        );
        // Best-of-three on each side to keep the comparison robust
        // against scheduler noise in debug builds.
        let functional = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let mut cache = Cache::new(CacheConfig::default());
                let mut trace = TraceBuffer::new();
                Executor {
                    cache: &mut cache,
                    trace: &mut trace,
                    config: ExecConfig::default(),
                }
                .execute_launch(&k, &[], 4096)
                .unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        let detailed = (0..3)
            .map(|_| {
                let t1 = std::time::Instant::now();
                sim().simulate_launch(&k, &[], 4096).unwrap();
                t1.elapsed()
            })
            .min()
            .unwrap();
        assert!(
            detailed > functional,
            "detailed ({detailed:?}) must cost more than functional ({functional:?})"
        );
    }
}
