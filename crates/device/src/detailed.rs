//! The detailed cycle-level simulator — the *slow* path whose cost
//! motivates the whole paper.
//!
//! Where the analytic model converts counters to seconds in O(1), this
//! simulator walks the machine cycle by cycle: threads are assigned
//! round-robin to EUs, each EU issues at most one instruction per
//! cycle from its resident SMT threads (in-order per thread, with a
//! per-register scoreboard), ALU results have multi-cycle latency,
//! extended math is slower still, and send results arrive after a
//! cache-hit or DRAM-miss delay. Architectural semantics are shared
//! with the functional engine (the internal `machine` module), so the two can
//! never diverge on results — only on time.
//!
//! # Epoch-barrier sharding
//!
//! The machine model is **epoch-based**: every EU advances through a
//! bounded window of virtual cycles (an *epoch*) against a private
//! snapshot of the shared LLC taken at the epoch boundary, logging its
//! global-memory accesses as it goes. At the barrier between epochs
//! the logs are replayed into the master cache **in EU index order**.
//! Each EU's behaviour is therefore a pure function of (its own
//! state, the master snapshot), and the master's evolution is a pure
//! function of the ordered logs — neither depends on how EUs are
//! partitioned across host workers, which is why the sharded run is
//! bit-identical to the serial run at any worker count (see DESIGN.md
//! decision 11). The worker count comes from `GTPIN_SIM_THREADS`
//! (falling back to `GTPIN_THREADS`); a shard worker that panics —
//! genuinely or via the `sim.shard` fault site — abandons the
//! parallel attempt and the launch re-simulates serially from the
//! untouched master state, so degradation never changes results.
//!
//! Simulating a full program here is orders of magnitude slower than
//! native functional execution; simulating only the intervals subset
//! selection picks is the paper's remedy.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use gen_isa::{DecodedKernel, Opcode};
use gtpin_obs::ArgVal;
use ocl_runtime::api::ArgValue;

use crate::cache::{Cache, CacheConfig};
use crate::executor::{ExecError, DISPATCH_WIDTH};
use crate::machine::{step, StepOutcome, ThreadState};
use crate::memory::TraceBuffer;
use crate::stats::ExecutionStats;
use crate::topology::GpuTopology;

/// Latency parameters of the detailed pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetailedConfig {
    /// Result latency of ordinary ALU instructions.
    pub alu_latency: u64,
    /// Result latency of extended math.
    pub math_latency: u64,
    /// Send result latency on a cache hit.
    pub send_hit_latency: u64,
    /// Send result latency on a miss (DRAM round trip).
    pub send_miss_latency: u64,
    /// Per-thread dynamic instruction budget (runaway guard).
    pub thread_budget: u64,
    /// Virtual cycles per reconciliation epoch. Smaller epochs track
    /// cross-EU cache sharing more tightly (and cost more barriers);
    /// the value changes the *model*, not just the schedule, so it is
    /// part of the config — results at a given `epoch_cycles` are
    /// identical at every worker count.
    pub epoch_cycles: u64,
}

impl Default for DetailedConfig {
    fn default() -> DetailedConfig {
        DetailedConfig {
            alu_latency: 4,
            math_latency: 16,
            send_hit_latency: 50,
            send_miss_latency: 300,
            thread_budget: 8_000_000,
            epoch_cycles: 8192,
        }
    }
}

/// What one detailed simulation produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedResult {
    /// Simulated GPU cycles for the launch (max across EUs, with a
    /// DRAM bandwidth floor).
    pub cycles: u64,
    /// Cycles converted to seconds at the simulated frequency.
    pub seconds: f64,
    /// Total issue cycles across EUs (each EU's busy cycles summed).
    pub busy_cycles: u64,
    /// Total cycles summed across the EUs that had work (the
    /// denominator of [`occupancy`](DetailedResult::occupancy)).
    pub eu_cycles: u64,
    /// Architectural statistics (identical to functional execution).
    pub stats: ExecutionStats,
}

impl DetailedResult {
    /// Fraction of EU-cycles that issued an instruction — the
    /// machine-utilization figure a designer reads off a detailed
    /// simulation.
    pub fn occupancy(&self) -> f64 {
        if self.eu_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.eu_cycles as f64
        }
    }
}

struct ThreadCtx {
    st: ThreadState,
    ip: i64,
    executed: u64,
    reg_ready: Vec<u64>,
    flag_ready: [u64; 2],
    done: bool,
}

impl ThreadCtx {
    fn new(thread_id: u64, args: &[ArgValue]) -> ThreadCtx {
        ThreadCtx {
            st: ThreadState::new(thread_id, args),
            ip: 0,
            executed: 0,
            reg_ready: vec![0; gen_isa::NUM_GRF as usize],
            flag_ready: [0; 2],
            done: false,
        }
    }

    /// Earliest cycle at which the next instruction's dependencies
    /// resolve, or `None` when the thread is done.
    fn ready_at(&self, kernel: &DecodedKernel) -> Option<u64> {
        if self.done {
            return None;
        }
        let instr = kernel.instrs.get(self.ip as usize)?;
        let mut at = 0u64;
        for r in instr.reads() {
            at = at.max(self.reg_ready[r.0 as usize]);
        }
        if let Some(p) = instr.pred {
            at = at.max(self.flag_ready[p.flag.index()]);
        }
        Some(at)
    }
}

/// One EU's persistent simulation state: resident SMT threads, the
/// wait queue behind them, its private virtual clock, trace-buffer
/// shard, statistics, and the access log drained at each barrier.
struct EuSim {
    active: Vec<ThreadCtx>,
    waiting: Vec<u64>,
    next_admit: usize,
    cycle: u64,
    busy: u64,
    rr: usize,
    trace: TraceBuffer,
    stats: ExecutionStats,
    log: Vec<(u64, u32)>,
    error: Option<ExecError>,
}

impl EuSim {
    fn new(
        eu: usize,
        thread_ids: Vec<u64>,
        args: &[ArgValue],
        slots: usize,
        trace_capacity: usize,
    ) -> EuSim {
        let active: Vec<ThreadCtx> = thread_ids
            .iter()
            .take(slots)
            .map(|&t| ThreadCtx::new(t, args))
            .collect();
        let next_admit = active.len();
        EuSim {
            active,
            waiting: thread_ids,
            next_admit,
            cycle: 0,
            busy: 0,
            rr: 0,
            trace: TraceBuffer::new()
                .with_record_capacity(trace_capacity)
                .with_fault_salt(eu as u64),
            stats: ExecutionStats::default(),
            log: Vec::new(),
            error: None,
        }
    }

    /// This EU has nothing left to do (all threads retired, or it
    /// faulted).
    fn done(&self) -> bool {
        self.active.is_empty() || self.error.is_some()
    }

    /// Advance this EU until its clock reaches `epoch_end` (a stall
    /// fast-forward may overshoot — the EU then idles through later
    /// epochs until the global clock catches up), running every
    /// access against `cache` (the private epoch snapshot) and
    /// appending it to `self.log` for barrier replay.
    fn advance_epoch(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        config: &DetailedConfig,
        cache: &mut Cache,
        epoch_end: u64,
    ) {
        while !self.done() && self.cycle < epoch_end {
            // Find a ready thread, round-robin from rr.
            let n = self.active.len();
            let mut issued = false;
            let mut next_ready = u64::MAX;
            for k in 0..n {
                let i = (self.rr + k) % n;
                let ready_at = self.active[i]
                    .ready_at(kernel)
                    .expect("active threads not done");
                if ready_at <= self.cycle {
                    if let Err(e) = issue(
                        kernel,
                        &mut self.active[i],
                        self.cycle,
                        config,
                        cache,
                        &mut self.trace,
                        &mut self.stats,
                        &mut self.log,
                    ) {
                        self.error = Some(e);
                        return;
                    }
                    self.rr = (i + 1) % n;
                    issued = true;
                    self.busy += 1;
                    break;
                }
                next_ready = next_ready.min(ready_at);
            }

            if issued {
                self.cycle += 1;
            } else {
                // Nothing ready: the EU stalls. A cycle-level
                // simulator pays for every cycle — this is precisely
                // why detailed simulation is so much slower than
                // native execution, and what subset selection
                // amortizes. (`next_ready` guards against pathological
                // multi-thousand-cycle gaps.)
                self.cycle = (self.cycle + 1).max(next_ready.min(self.cycle + 64));
            }

            // Retire finished threads, admit waiting ones.
            let mut i = 0;
            while i < self.active.len() {
                if self.active[i].done {
                    self.active.swap_remove(i);
                    if self.next_admit < self.waiting.len() {
                        self.active
                            .push(ThreadCtx::new(self.waiting[self.next_admit], args));
                        self.next_admit += 1;
                    }
                } else {
                    i += 1;
                }
            }
            if !self.active.is_empty() {
                self.rr %= self.active.len();
            }
        }
    }
}

/// Issue one instruction from thread `t` at `cycle`: architectural
/// step against the epoch-private cache (logging the access for
/// barrier replay), then scoreboard updates from the modelled result
/// latency.
#[allow(clippy::too_many_arguments)]
fn issue(
    kernel: &DecodedKernel,
    t: &mut ThreadCtx,
    cycle: u64,
    config: &DetailedConfig,
    cache: &mut Cache,
    trace: &mut TraceBuffer,
    stats: &mut ExecutionStats,
    log: &mut Vec<(u64, u32)>,
) -> Result<(), ExecError> {
    if t.executed >= config.thread_budget {
        return Err(ExecError::BudgetExceeded {
            budget: config.thread_budget,
        });
    }
    if t.ip < 0 || t.ip as usize >= kernel.instrs.len() {
        return Err(ExecError::RanOffEnd { ip: t.ip });
    }
    let instr = &kernel.instrs[t.ip as usize];
    t.executed += 1;
    let issue = crate::executor::instruction_cost(instr);
    t.st.issue_cycles += issue;
    stats.count_instruction(instr.opcode.category(), instr.exec_size, issue);

    let misses_before = stats.cache_misses;
    let outcome = step(&mut t.st, instr, cache, trace, stats, Some(log));
    let missed = stats.cache_misses > misses_before;

    let latency = match instr.opcode {
        Opcode::Inv | Opcode::Sqrt | Opcode::Exp | Opcode::Log | Opcode::Sin | Opcode::Cos => {
            config.math_latency
        }
        Opcode::Send | Opcode::Sendc => {
            if missed {
                config.send_miss_latency
            } else {
                config.send_hit_latency
            }
        }
        _ => config.alu_latency,
    };
    if let Some(dst) = instr.dst {
        t.reg_ready[dst.0 as usize] = cycle + latency;
    }
    if let Some(flag) = instr.flag {
        t.flag_ready[flag.index()] = cycle + 2;
    }

    match outcome {
        StepOutcome::Done => t.done = true,
        StepOutcome::Fault => return Err(ExecError::StrayReturn { ip: t.ip as usize }),
        StepOutcome::Branch(off) => t.ip += 1 + off as i64,
        StepOutcome::Next => t.ip += 1,
    }
    Ok(())
}

/// How one pass of the epoch loop ended.
enum EpochOutcome {
    /// Every EU retired all its threads after this many epochs.
    Completed { epochs: u64 },
    /// The lowest-indexed EU that faulted in the failing epoch.
    ExecFailed(ExecError),
    /// A shard worker died (injected or genuine panic); the caller
    /// falls back to the serial path. Never produced by the serial
    /// path itself.
    ShardFailed,
}

/// Per-EU, per-epoch provenance instant: the virtual-cycle facts
/// `gtpin obs-timeline` aggregates. All values are schedule-invariant
/// (epoch deltas of the EU's own counters), so the aggregate report
/// is identical at every `GTPIN_SIM_THREADS` setting.
fn eu_epoch_instant(launch: u64, eu: u64, epoch: u64, busy: u64, cycles: u64) {
    gtpin_obs::global().instant(
        "sim.eu_epoch",
        vec![
            ("launch", ArgVal::U64(launch)),
            ("eu", ArgVal::U64(eu)),
            ("epoch", ArgVal::U64(epoch)),
            ("busy", ArgVal::U64(busy)),
            ("cycles", ArgVal::U64(cycles)),
        ],
    );
}

/// The sharded-schedule variant of [`eu_epoch_instant`], tagging the
/// host worker that advanced the shard (wall-clock context only).
fn eu_epoch_instant_on_worker(
    launch: u64,
    eu: u64,
    epoch: u64,
    busy: u64,
    cycles: u64,
    worker: u64,
) {
    gtpin_obs::global().instant(
        "sim.eu_epoch",
        vec![
            ("launch", ArgVal::U64(launch)),
            ("eu", ArgVal::U64(eu)),
            ("epoch", ArgVal::U64(epoch)),
            ("busy", ArgVal::U64(busy)),
            ("cycles", ArgVal::U64(cycles)),
            ("worker", ArgVal::U64(worker)),
        ],
    );
}

/// The cycle-level simulator. Owns its own cache so detailed runs
/// don't disturb the native device's warm state.
pub struct DetailedSimulator {
    topology: GpuTopology,
    config: DetailedConfig,
    frequency_hz: f64,
    cache: Cache,
    trace: TraceBuffer,
    workers: usize,
    /// Launches simulated so far — provenance tag on per-EU telemetry
    /// so `gtpin obs-timeline` can separate launches in one journal.
    launches: u64,
}

impl DetailedSimulator {
    /// A simulator of `topology` at `frequency_hz`. The shard worker
    /// count comes from `GTPIN_SIM_THREADS` (falling back to
    /// `GTPIN_THREADS`, then to the machine); results never depend on
    /// it.
    pub fn new(
        topology: GpuTopology,
        frequency_hz: f64,
        config: DetailedConfig,
    ) -> DetailedSimulator {
        DetailedSimulator {
            topology,
            config,
            frequency_hz,
            cache: Cache::new(CacheConfig::llc_slice(topology.llc_slice_kib)),
            trace: TraceBuffer::new(),
            workers: gtpin_par::configured_sim_threads(),
            launches: 0,
        }
    }

    /// Override the shard worker count (`1` forces the serial epoch
    /// loop). Results are bit-identical at every setting; only
    /// wall-clock changes.
    pub fn with_workers(mut self, workers: usize) -> DetailedSimulator {
        self.workers = workers.max(1);
        self
    }

    /// Start from a captured warm cache (a
    /// [`CheckpointLibrary`](crate::checkpoint::CheckpointLibrary)
    /// snapshot) instead of a cold machine — the PinPlay-style
    /// warm-up the CPU SimPoint toolchain uses before each sample.
    pub fn restore_cache(&mut self, cache: Cache) {
        self.cache = cache;
    }

    /// Simulate one kernel launch in detail.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on runaway loops or malformed control
    /// flow.
    pub fn simulate_launch(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        global_work_size: u64,
    ) -> Result<DetailedResult, ExecError> {
        let num_threads = global_work_size.div_ceil(DISPATCH_WIDTH).max(1);
        let num_eus = (self.topology.execution_units as u64).min(num_threads);
        let slots = self.topology.threads_per_eu as usize;
        let trace_capacity = self.trace.record_capacity();
        let workers = self.workers.max(1).min(num_eus as usize);
        self.launches += 1;
        let launch = self.launches;

        let mut span = gtpin_obs::span("sim.launch");
        if span.active() {
            span.arg_str("kernel", kernel.name.clone());
            span.arg_u64("launch", launch);
            span.arg_u64("hw_threads", num_threads);
            span.arg_u64("eus", num_eus);
            span.arg_u64("workers", workers as u64);
        }

        let build_shards = || -> Vec<EuSim> {
            (0..num_eus)
                .map(|eu| {
                    // Threads assigned round-robin to EUs.
                    let ids: Vec<u64> = (eu..num_threads).step_by(num_eus as usize).collect();
                    EuSim::new(eu as usize, ids, args, slots, trace_capacity)
                })
                .collect()
        };

        let mut eus = build_shards();
        let outcome = if workers <= 1 {
            self.run_epochs_serial(kernel, args, &mut eus, launch)
        } else {
            let (back, outcome) = self.run_epochs_parallel(kernel, args, eus, workers, launch);
            eus = back;
            if matches!(outcome, EpochOutcome::ShardFailed) {
                // Degradation contract: the parallel attempt never
                // touched the master cache or trace, so re-running the
                // whole launch serially reproduces the reference
                // result exactly.
                gtpin_faults::note("recovered.sim_serial_fallback", 1);
                gtpin_obs::warn!(
                    "sim: shard worker died; re-simulating launch serially from pristine state"
                );
                eus = build_shards();
                self.run_epochs_serial(kernel, args, &mut eus, launch)
            } else {
                outcome
            }
        };

        let epochs = match outcome {
            EpochOutcome::Completed { epochs } => epochs,
            EpochOutcome::ExecFailed(e) => return Err(e),
            EpochOutcome::ShardFailed => unreachable!("serial epochs cannot shard-fail"),
        };

        let mut stats = ExecutionStats {
            hw_threads: num_threads,
            ..Default::default()
        };
        let mut max_cycles = 0u64;
        let mut busy_cycles = 0u64;
        let mut eu_cycles = 0u64;
        let obs = span.active();
        for eu in eus {
            max_cycles = max_cycles.max(eu.cycle);
            busy_cycles += eu.busy;
            eu_cycles += eu.cycle;
            if obs {
                // Per-shard occupancy: how well each EU's issue slots
                // were packed, before the cross-EU aggregate below.
                gtpin_obs::hist_ns("sim.shard_occupancy_pct", eu.busy * 100 / eu.cycle.max(1));
            }
            stats.merge(&eu.stats);
            self.trace.merge_shard(eu.trace);
        }

        // DRAM bandwidth floor: total miss traffic cannot beat the
        // memory system.
        let dram_bytes_per_cycle = self.topology.dram_bytes_per_second / self.frequency_hz;
        let dram_floor = (stats.cache_misses as f64 * 64.0 / dram_bytes_per_cycle) as u64;
        let cycles = max_cycles.max(dram_floor);

        let result = DetailedResult {
            cycles,
            seconds: cycles as f64 / self.frequency_hz,
            busy_cycles,
            eu_cycles,
            stats,
        };
        if obs {
            span.arg_u64("epochs", epochs);
            span.arg_u64("cycles", cycles);
            span.arg_f64("occupancy", result.occupancy());
            gtpin_obs::counter_add("sim.launches", 1);
            gtpin_obs::counter_add("sim.epochs", epochs);
            gtpin_obs::gauge_set("sim.occupancy", result.occupancy());
        }
        Ok(result)
    }

    /// The reference schedule: one host thread advances every EU
    /// through each epoch in index order, then replays the access
    /// logs into the master cache — also in index order.
    fn run_epochs_serial(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        eus: &mut [EuSim],
        launch: u64,
    ) -> EpochOutcome {
        let obs = gtpin_obs::enabled();
        let epoch = self.config.epoch_cycles.max(1);
        let mut scratch = self.cache.clone();
        let mut round = 0u64;
        loop {
            let epoch_end = epoch * (round + 1);
            for (e, eu) in eus.iter_mut().enumerate() {
                if eu.done() {
                    continue;
                }
                scratch.copy_state_from(&self.cache);
                let (busy0, cycle0) = (eu.busy, eu.cycle);
                eu.advance_epoch(kernel, args, &self.config, &mut scratch, epoch_end);
                if obs {
                    eu_epoch_instant(launch, e as u64, round, eu.busy - busy0, eu.cycle - cycle0);
                }
            }
            if let Some(e) = eus.iter().find_map(|s| s.error.clone()) {
                return EpochOutcome::ExecFailed(e);
            }
            let mut all_done = true;
            for eu in eus.iter_mut() {
                for &(addr, bytes) in &eu.log {
                    self.cache.access(addr, bytes);
                }
                eu.log.clear();
                if !eu.done() {
                    all_done = false;
                }
            }
            round += 1;
            if all_done {
                return EpochOutcome::Completed { epochs: round };
            }
        }
    }

    /// The sharded schedule: `workers` host threads own EUs by index
    /// stride and advance them concurrently within each epoch; worker
    /// 0 performs the same in-order log replay the serial path does
    /// between two barrier waits. The master cache is only committed
    /// back on success, so a shard failure leaves the simulator state
    /// untouched for the serial fallback.
    fn run_epochs_parallel(
        &mut self,
        kernel: &DecodedKernel,
        args: &[ArgValue],
        eus: Vec<EuSim>,
        workers: usize,
        launch: u64,
    ) -> (Vec<EuSim>, EpochOutcome) {
        let epoch = self.config.epoch_cycles.max(1);
        let num_eus = eus.len();
        let cells: Vec<Mutex<EuSim>> = eus.into_iter().map(Mutex::new).collect();
        let master = RwLock::new(self.cache.clone());
        let barrier = Barrier::new(workers);
        let failed = AtomicBool::new(false);
        let all_done = AtomicBool::new(false);
        let epochs = AtomicU64::new(0);
        let first_error: Mutex<Option<ExecError>> = Mutex::new(None);
        let config = &self.config;

        std::thread::scope(|scope| {
            for w in 0..workers {
                let cells = &cells;
                let master = &master;
                let barrier = &barrier;
                let failed = &failed;
                let all_done = &all_done;
                let epochs = &epochs;
                let first_error = &first_error;
                scope.spawn(move || {
                    let obs = gtpin_obs::enabled();
                    let faults_on = gtpin_faults::enabled();
                    let mut scratch = master.read().expect("master lock").clone();
                    let mut round = 0u64;
                    loop {
                        let epoch_end = epoch * (round + 1);
                        for e in (w..num_eus).step_by(workers) {
                            let mut eu = cells[e].lock().expect("shard lock");
                            if eu.done() {
                                continue;
                            }
                            {
                                let m = master.read().expect("master lock");
                                scratch.copy_state_from(&m);
                            }
                            // The fault key mixes (EU, epoch) only, so
                            // injection decisions are independent of
                            // the worker count and host schedule.
                            let inject = faults_on
                                && gtpin_faults::should_inject(
                                    gtpin_faults::site::SIM_SHARD,
                                    ((e as u64) << 32) | (round & 0xFFFF_FFFF),
                                );
                            let (busy0, cycle0) = (eu.busy, eu.cycle);
                            let advanced =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if inject {
                                        std::panic::panic_any(gtpin_faults::INJECTED_PANIC_MARKER);
                                    }
                                    eu.advance_epoch(kernel, args, config, &mut scratch, epoch_end);
                                }));
                            match advanced {
                                Ok(()) if obs => {
                                    // Same virtual-cycle provenance the
                                    // serial loop records — the extra
                                    // `worker` arg is wall-clock-only
                                    // context the timeline ignores.
                                    eu_epoch_instant_on_worker(
                                        launch,
                                        e as u64,
                                        round,
                                        eu.busy - busy0,
                                        eu.cycle - cycle0,
                                        w as u64,
                                    );
                                }
                                Ok(()) => {}
                                Err(_) => failed.store(true, Ordering::Relaxed),
                            }
                        }
                        let t0 = if obs { gtpin_obs::now_ns() } else { 0 };
                        barrier.wait();
                        if obs {
                            let wait_ns = gtpin_obs::now_ns().saturating_sub(t0);
                            gtpin_obs::hist_ns("sim.barrier_wait_ns", wait_ns);
                            // Wall-clock provenance: which worker waited
                            // how long at this epoch's barrier.
                            gtpin_obs::global().instant(
                                "sim.barrier",
                                vec![
                                    ("launch", ArgVal::U64(launch)),
                                    ("worker", ArgVal::U64(w as u64)),
                                    ("epoch", ArgVal::U64(round)),
                                    ("wait_ns", ArgVal::U64(wait_ns)),
                                ],
                            );
                        }
                        if w == 0 && !failed.load(Ordering::Relaxed) {
                            // Same reconciliation the serial loop
                            // runs, in the same EU order.
                            let mut err: Option<ExecError> = None;
                            for cell in cells.iter() {
                                let eu = cell.lock().expect("shard lock");
                                if let Some(e) = &eu.error {
                                    err = Some(e.clone());
                                    break;
                                }
                            }
                            if let Some(e) = err {
                                *first_error.lock().expect("error lock") = Some(e);
                            } else {
                                let mut m = master.write().expect("master lock");
                                let mut done = true;
                                for cell in cells.iter() {
                                    let mut eu = cell.lock().expect("shard lock");
                                    for &(addr, bytes) in &eu.log {
                                        m.access(addr, bytes);
                                    }
                                    eu.log.clear();
                                    if !eu.done() {
                                        done = false;
                                    }
                                }
                                if done {
                                    all_done.store(true, Ordering::Relaxed);
                                }
                            }
                            epochs.store(round + 1, Ordering::Relaxed);
                        }
                        barrier.wait();
                        round += 1;
                        if failed.load(Ordering::Relaxed)
                            || all_done.load(Ordering::Relaxed)
                            || first_error.lock().expect("error lock").is_some()
                        {
                            break;
                        }
                    }
                });
            }
        });

        let eus: Vec<EuSim> = cells
            .into_iter()
            .map(|c| c.into_inner().expect("shard lock"))
            .collect();
        if failed.load(Ordering::Relaxed) {
            return (eus, EpochOutcome::ShardFailed);
        }
        if let Some(e) = first_error.lock().expect("error lock").take() {
            return (eus, EpochOutcome::ExecFailed(e));
        }
        // Commit the reconciled master state only now that the
        // parallel attempt is known good.
        self.cache = master.into_inner().expect("master lock");
        (
            eus,
            EpochOutcome::Completed {
                epochs: epochs.load(Ordering::Relaxed),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecConfig, Executor};
    use crate::jit::compile_kernel;
    use crate::topology::GpuGeneration;
    use gen_isa::ExecSize;
    use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

    fn kernel(body: Vec<IrOp>, num_args: u8) -> DecodedKernel {
        let mut ir = KernelIr::new("d", num_args);
        ir.body = body;
        compile_kernel(&ir).unwrap().flatten()
    }

    fn sim() -> DetailedSimulator {
        DetailedSimulator::new(
            GpuGeneration::IvyBridgeHd4000.topology(),
            1.15e9,
            DetailedConfig::default(),
        )
    }

    #[test]
    fn architectural_results_match_functional_execution() {
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(7),
                },
                IrOp::Compute {
                    ops: 6,
                    width: ExecSize::S16,
                },
                IrOp::Load {
                    arg: 0,
                    bytes: 64,
                    width: ExecSize::S16,
                    pattern: AccessPattern::Linear,
                },
                IrOp::LoopEnd,
            ],
            1,
        );
        let args = [ArgValue::Buffer(0)];
        let detailed = sim().simulate_launch(&k, &args, 128).unwrap();

        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let functional = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&k, &args, 128)
        .unwrap();

        assert_eq!(detailed.stats.instructions, functional.instructions);
        assert_eq!(detailed.stats.per_category, functional.per_category);
        assert_eq!(detailed.stats.bytes_read, functional.bytes_read);
    }

    #[test]
    fn cycles_grow_with_work() {
        let small = kernel(
            vec![IrOp::Compute {
                ops: 10,
                width: ExecSize::S16,
            }],
            0,
        );
        let large = kernel(
            vec![IrOp::Compute {
                ops: 200,
                width: ExecSize::S16,
            }],
            0,
        );
        let cs = sim().simulate_launch(&small, &[], 256).unwrap().cycles;
        let cl = sim().simulate_launch(&large, &[], 256).unwrap().cycles;
        assert!(
            cl > 4 * cs,
            "20× more work should cost clearly more cycles: {cs} vs {cl}"
        );
    }

    #[test]
    fn memory_bound_kernels_cost_more_cycles_per_instruction() {
        let compute = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(50),
                },
                IrOp::Compute {
                    ops: 10,
                    width: ExecSize::S16,
                },
                IrOp::LoopEnd,
            ],
            0,
        );
        let memory = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(50),
                },
                IrOp::Load {
                    arg: 0,
                    bytes: 64,
                    width: ExecSize::S16,
                    pattern: AccessPattern::Gather,
                },
                // The compute consumes the loaded value, so the miss
                // latency is actually on the critical path.
                IrOp::Compute {
                    ops: 2,
                    width: ExecSize::S16,
                },
                IrOp::LoopEnd,
            ],
            1,
        );
        let rc = sim().simulate_launch(&compute, &[], 64).unwrap();
        let rm = sim()
            .simulate_launch(&memory, &[ArgValue::Buffer(0)], 64)
            .unwrap();
        let cpi_c = rc.cycles as f64 / rc.stats.instructions as f64;
        let cpi_m = rm.cycles as f64 / rm.stats.instructions as f64;
        assert!(
            cpi_m > cpi_c,
            "gather kernel CPI {cpi_m} should exceed compute CPI {cpi_c}"
        );
    }

    #[test]
    fn smt_hides_latency() {
        // One thread per EU vs eight: eight threads should take far
        // fewer than 8× the cycles of one.
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(20),
                },
                IrOp::MathCompute {
                    ops: 4,
                    width: ExecSize::S8,
                },
                IrOp::LoopEnd,
            ],
            0,
        );
        let one = sim().simulate_launch(&k, &[], 16 * 16).unwrap().cycles; // 16 threads, 1/EU
        let eight = sim().simulate_launch(&k, &[], 16 * 16 * 8).unwrap().cycles; // 8/EU
        assert!(
            (eight as f64) < 4.0 * one as f64,
            "SMT overlap: {one} cycles for 1 thread/EU, {eight} for 8"
        );
    }

    #[test]
    fn sharded_simulation_is_bit_identical_to_serial() {
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(11),
                },
                IrOp::Compute {
                    ops: 9,
                    width: ExecSize::S16,
                },
                IrOp::Load {
                    arg: 0,
                    bytes: 64,
                    width: ExecSize::S16,
                    pattern: AccessPattern::Gather,
                },
                IrOp::MathCompute {
                    ops: 2,
                    width: ExecSize::S8,
                },
                IrOp::LoopEnd,
            ],
            1,
        );
        let args = [ArgValue::Buffer(0)];
        let serial = sim()
            .with_workers(1)
            .simulate_launch(&k, &args, 48 * 16)
            .unwrap();
        for workers in 2..=8 {
            let par = sim()
                .with_workers(workers)
                .simulate_launch(&k, &args, 48 * 16)
                .unwrap();
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn shard_panics_degrade_to_the_serial_result() {
        // Rate 1.0 on sim.shard: the very first parallel epoch dies,
        // and the launch must fall back to a serial re-run that
        // reproduces the reference result exactly. The faults
        // registry is process-global; a sim.shard-only plan is
        // quiescent for every other site, so concurrently running
        // tests are unaffected.
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(5),
                },
                IrOp::Compute {
                    ops: 4,
                    width: ExecSize::S16,
                },
                IrOp::LoopEnd,
            ],
            0,
        );
        let baseline = sim().with_workers(1).simulate_launch(&k, &[], 256).unwrap();
        gtpin_faults::install(gtpin_faults::FaultPlan::single(
            gtpin_faults::site::SIM_SHARD,
            1.0,
            7,
        ));
        let degraded = sim().with_workers(4).simulate_launch(&k, &[], 256).unwrap();
        let acc: std::collections::BTreeMap<String, u64> =
            gtpin_faults::take_accounting().into_iter().collect();
        gtpin_faults::disable();
        assert_eq!(degraded, baseline, "fallback must reproduce serial result");
        assert!(
            acc.get("recovered.sim_serial_fallback")
                .copied()
                .unwrap_or(0)
                >= 1,
            "fallback recovery must be accounted, got {acc:?}"
        );
    }

    #[test]
    fn detailed_simulation_is_slower_than_functional_in_wall_clock() {
        let k = kernel(
            vec![
                IrOp::LoopBegin {
                    trip: TripCount::Const(400),
                },
                IrOp::Compute {
                    ops: 20,
                    width: ExecSize::S16,
                },
                IrOp::MathCompute {
                    ops: 4,
                    width: ExecSize::S16,
                },
                IrOp::LoopEnd,
            ],
            0,
        );
        // Serial on both sides, best-of-three, to keep the comparison
        // robust against scheduler noise in debug builds.
        let functional = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let mut cache = Cache::new(CacheConfig::default());
                let mut trace = TraceBuffer::new();
                Executor {
                    cache: &mut cache,
                    trace: &mut trace,
                    config: ExecConfig {
                        threads: 1,
                        ..Default::default()
                    },
                }
                .execute_launch(&k, &[], 4096)
                .unwrap();
                t0.elapsed()
            })
            .min()
            .unwrap();
        let detailed = (0..3)
            .map(|_| {
                let t1 = std::time::Instant::now();
                sim()
                    .with_workers(1)
                    .simulate_launch(&k, &[], 4096)
                    .unwrap();
                t1.elapsed()
            })
            .min()
            .unwrap();
        assert!(
            detailed > functional,
            "detailed ({detailed:?}) must cost more than functional ({functional:?})"
        );
    }
}
