//! Memory surfaces: synthetic global memory and the GT-Pin trace
//! buffer.
//!
//! Global memory is *synthetic*: reads return a deterministic hash of
//! the address and writes are accounted but not stored. Profiling
//! fidelity does not depend on loaded data (kernel control flow is
//! driven by arguments), and this keeps full-program execution cheap.
//! The **trace buffer is real storage**: GT-Pin's injected
//! instructions atomically accumulate counters and append records
//! into it, and the tool's results are whatever those instructions
//! wrote — the same contract as the paper's CPU/GPU-shared buffer
//! (Section III-A).

use serde::{Deserialize, Serialize};

/// Deterministic value returned by a synthetic global-memory read.
pub fn synthetic_read(addr: u64) -> u32 {
    let mut v = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 29;
    v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v ^= v >> 32;
    v as u32
}

/// Base address of the memory region backing buffer `index`.
/// Buffers live in disjoint 4 MiB regions.
pub fn buffer_base(index: u32) -> u64 {
    0x1000_0000 + ((index as u64) << 22)
}

/// One appended trace record (used by memory-trace and latency
/// instrumentation).
///
/// Carries a checksum over `(tag, value)` so the CPU-side drain can
/// detect records corrupted in flight (the shared-buffer hazard of
/// Section III) and quarantine them instead of feeding garbage to the
/// tools. Records built through [`TraceRecord::new`] are always
/// valid; corruption (injected or real) leaves the checksum stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Record tag chosen by the tool that planted the instrumentation.
    pub tag: u32,
    /// Payload (an address, a timer delta, ...).
    pub value: u64,
    /// Integrity checksum over `(tag, value)`.
    pub checksum: u32,
}

impl TraceRecord {
    /// A record with a checksum matching its content.
    pub fn new(tag: u32, value: u64) -> TraceRecord {
        TraceRecord {
            tag,
            value,
            checksum: TraceRecord::checksum_of(tag, value),
        }
    }

    fn checksum_of(tag: u32, value: u64) -> u32 {
        let mut z = ((tag as u64) << 32) ^ value.rotate_left(17);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u32
    }

    /// Does the checksum still match the content?
    pub fn is_valid(&self) -> bool {
        self.checksum == TraceRecord::checksum_of(self.tag, self.value)
    }
}

/// The CPU/GPU-shared trace buffer: a slot array of 64-bit counters
/// plus an append stream of records.
///
/// Counter slots are written by `send.atomic_add` messages targeting
/// [`Surface::TraceBuffer`](gen_isa::Surface::TraceBuffer); the
/// append stream by `send.write` messages on the same surface. The
/// CPU side (GT-Pin post-processing) drains both after each kernel
/// completes.
#[derive(Debug)]
pub struct TraceBuffer {
    slots: Vec<u64>,
    records: Vec<TraceRecord>,
    record_cap: usize,
    dropped_records: u64,
    /// Total `append` attempts, stored or not — the left-hand side of
    /// the conservation invariant `appended == stored + dropped`.
    appended: u64,
    /// Early-drain threshold (the injected "shard overflow" point).
    /// When the live stream reaches it, records spill to `spilled`
    /// instead of being dropped: graceful degradation, not data loss.
    soft_cap: usize,
    /// Records preserved by early drains, in append order. Only
    /// shards ever spill; `merge_shard` replays spill-then-live so
    /// the merged stream is identical to a no-overflow run.
    spilled: Vec<TraceRecord>,
    early_drains: u64,
    /// Mixed into record-corruption fault keys so each shard (and the
    /// serial buffer) draws an independent, replayable decision
    /// stream.
    fault_salt: u64,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new()
    }
}

impl TraceBuffer {
    /// An empty buffer with the default record capacity.
    pub fn new() -> TraceBuffer {
        TraceBuffer {
            slots: Vec::new(),
            records: Vec::new(),
            record_cap: 1 << 20,
            dropped_records: 0,
            appended: 0,
            soft_cap: usize::MAX,
            spilled: Vec::new(),
            early_drains: 0,
            fault_salt: 0,
        }
    }

    /// Set the append-stream capacity (records beyond it are dropped
    /// and counted, as a bounded hardware buffer would).
    pub fn with_record_capacity(mut self, cap: usize) -> TraceBuffer {
        self.record_cap = cap;
        self
    }

    /// Set the early-drain threshold: once the live stream holds
    /// `cap` records they are drained to the spill area (counted in
    /// [`early_drains`](Self::early_drains)) rather than dropped.
    /// Used by the executor when the shard-overflow fault fires.
    pub fn with_soft_capacity(mut self, cap: usize) -> TraceBuffer {
        self.soft_cap = cap.max(1);
        self
    }

    /// Set the salt mixed into record-corruption fault keys.
    pub fn with_fault_salt(mut self, salt: u64) -> TraceBuffer {
        self.fault_salt = salt;
        self
    }

    /// GPU side: atomically add `value` to counter slot `slot`,
    /// growing the slot array on demand.
    pub fn slot_add(&mut self, slot: usize, value: u64) {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, 0);
        }
        self.slots[slot] += value;
    }

    /// GPU side: append a record to the stream.
    ///
    /// Every attempt is counted in `appended`; a record either lands
    /// in the live stream, spills via an early drain, or is dropped
    /// and counted — never silently lost. The two fault hooks here
    /// (record corruption, shard overflow via `soft_cap`) cost one
    /// never-taken branch each when `GTPIN_FAULTS` is unset.
    pub fn append(&mut self, tag: u32, value: u64) {
        self.appended += 1;
        let mut record = TraceRecord::new(tag, value);
        if gtpin_faults::should_inject(
            gtpin_faults::site::RECORD_CORRUPT,
            self.fault_salt ^ self.appended,
        ) {
            // Flip payload bits; the checksum goes stale, which is
            // exactly what the CPU-side quarantine keys on.
            record.value ^= 0xDEAD_BEEF_0BAD_F00D;
        }
        if self.records.len() >= self.soft_cap {
            // Shard overflow: drain early into the spill area. The
            // records survive; only the buffer-full *drop* path below
            // loses data.
            self.spilled.append(&mut self.records);
            self.early_drains += 1;
        }
        if self.spilled.len() + self.records.len() < self.record_cap {
            self.records.push(record);
        } else {
            self.dropped_records += 1;
        }
    }

    /// CPU side: read a counter slot (0 if never written).
    pub fn slot(&self, slot: usize) -> u64 {
        self.slots.get(slot).copied().unwrap_or(0)
    }

    /// CPU side: the record stream.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records dropped because the stream was full.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Total append attempts (stored + spilled + dropped).
    pub fn appended_records(&self) -> u64 {
        self.appended
    }

    /// Early drains taken because the soft capacity was hit.
    pub fn early_drains(&self) -> u64 {
        self.early_drains
    }

    /// The append-stream capacity.
    pub fn record_capacity(&self) -> usize {
        self.record_cap
    }

    /// Merge a per-hardware-thread shard into this (shared) buffer —
    /// the drain step of sharded parallel execution. The epoch-sharded
    /// detailed simulator drains the same way, one shard per EU merged
    /// in EU index order at launch end.
    ///
    /// Counter slots add element-wise (addition commutes, but shards
    /// are merged in hardware-thread order anyway); records append in
    /// shard order under this buffer's capacity. Called in thread
    /// order with each shard's capacity equal to this buffer's, the
    /// result is exactly the serial execution's buffer: a record the
    /// shard dropped had ≥ `record_cap` same-thread predecessors, so
    /// the serial path (which sees at least those predecessors first)
    /// would have dropped it too, and the drop counts telescope.
    pub fn merge_shard(&mut self, shard: TraceBuffer) {
        // Match serial slot growth: `slot_add` resizes even for
        // zero-valued adds, and every slot in the shard was touched.
        if shard.slots.len() > self.slots.len() {
            self.slots.resize(shard.slots.len(), 0);
        }
        for (dst, v) in self.slots.iter_mut().zip(&shard.slots) {
            *dst += v;
        }
        // Spilled records precede the live stream in append order, so
        // an early-drained shard merges to exactly the stream a
        // no-overflow shard would have produced.
        for r in shard.spilled.into_iter().chain(shard.records) {
            if self.records.len() < self.record_cap {
                self.records.push(r);
            } else {
                self.dropped_records += 1;
            }
        }
        self.dropped_records += shard.dropped_records;
        self.appended += shard.appended;
        self.early_drains += shard.early_drains;
    }

    #[cfg(test)]
    fn records_mut_for_tests(&mut self) -> &mut [TraceRecord] {
        &mut self.records
    }

    /// Number of live counter slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// CPU side: drop every invalid (checksum-stale) record at index
    /// `from` or later, preserving order, and return how many were
    /// quarantined. The drain step runs this before any tool sees the
    /// stream, so corrupted records degrade to an honest count rather
    /// than poisoning the profile.
    pub fn quarantine_invalid(&mut self, from: usize) -> u64 {
        let start = from.min(self.records.len());
        let mut write = start;
        for read in start..self.records.len() {
            if self.records[read].is_valid() {
                self.records[write] = self.records[read];
                write += 1;
            }
        }
        let removed = self.records.len() - write;
        self.records.truncate(write);
        removed as u64
    }

    /// CPU side: zero the counters and clear the stream, ready for
    /// the next kernel invocation.
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = 0);
        self.records.clear();
        self.dropped_records = 0;
        self.appended = 0;
        self.spilled.clear();
        self.early_drains = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_reads_are_deterministic_and_spread() {
        assert_eq!(synthetic_read(42), synthetic_read(42));
        assert_ne!(synthetic_read(42), synthetic_read(43));
    }

    #[test]
    fn buffer_bases_do_not_overlap() {
        let a = buffer_base(0);
        let b = buffer_base(1);
        assert!(b >= a + (1 << 22), "4 MiB regions: {a:#x} vs {b:#x}");
    }

    #[test]
    fn slots_grow_on_demand_and_accumulate() {
        let mut t = TraceBuffer::new();
        t.slot_add(5, 3);
        t.slot_add(5, 4);
        assert_eq!(t.slot(5), 7);
        assert_eq!(t.slot(0), 0);
        assert_eq!(t.slot(99), 0, "unwritten slots read as zero");
        assert_eq!(t.num_slots(), 6);
    }

    #[test]
    fn record_stream_bounded() {
        let mut t = TraceBuffer::new().with_record_capacity(2);
        t.append(1, 10);
        t.append(1, 11);
        t.append(1, 12);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped_records(), 1);
    }

    #[test]
    fn merge_shard_matches_serial_interleaving() {
        // Serial: thread 0 then thread 1 write directly.
        let mut serial = TraceBuffer::new().with_record_capacity(3);
        serial.slot_add(1, 5);
        serial.append(0, 100);
        serial.append(0, 101);
        serial.slot_add(4, 2);
        serial.append(1, 200);
        serial.append(1, 201); // dropped: cap 3

        // Sharded: each thread fills its own buffer, merged in order.
        let mut merged = TraceBuffer::new().with_record_capacity(3);
        let mut s0 = TraceBuffer::new().with_record_capacity(3);
        s0.slot_add(1, 5);
        s0.append(0, 100);
        s0.append(0, 101);
        let mut s1 = TraceBuffer::new().with_record_capacity(3);
        s1.slot_add(4, 2);
        s1.append(1, 200);
        s1.append(1, 201);
        merged.merge_shard(s0);
        merged.merge_shard(s1);

        assert_eq!(merged.num_slots(), serial.num_slots());
        for s in 0..serial.num_slots() {
            assert_eq!(merged.slot(s), serial.slot(s));
        }
        assert_eq!(merged.records(), serial.records());
        assert_eq!(merged.dropped_records(), serial.dropped_records());
    }

    #[test]
    fn merge_shard_counts_shard_local_drops() {
        // A shard that overflowed its own (equal) capacity: drops
        // carry over on top of merge-time drops.
        let mut shared = TraceBuffer::new().with_record_capacity(2);
        shared.append(9, 0);
        let mut shard = TraceBuffer::new().with_record_capacity(2);
        shard.append(1, 1);
        shard.append(1, 2);
        shard.append(1, 3); // shard-local drop
        shared.merge_shard(shard);
        assert_eq!(shared.records().len(), 2);
        assert_eq!(
            shared.dropped_records(),
            2,
            "one merge-time + one shard-local"
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = TraceBuffer::new();
        t.slot_add(2, 9);
        t.append(7, 1);
        t.reset();
        assert_eq!(t.slot(2), 0);
        assert!(t.records().is_empty());
        assert_eq!(t.dropped_records(), 0);
        assert_eq!(t.appended_records(), 0);
        assert_eq!(t.early_drains(), 0);
    }

    #[test]
    fn appends_are_conserved() {
        let mut t = TraceBuffer::new().with_record_capacity(3);
        for v in 0..7 {
            t.append(1, v);
        }
        assert_eq!(t.appended_records(), 7);
        assert_eq!(t.records().len() as u64 + t.dropped_records(), 7);
    }

    #[test]
    fn soft_cap_spills_without_losing_records() {
        // A shard that early-drains at 2 merges to the same stream a
        // plain shard produces — overflow degrades gracefully.
        let mut plain = TraceBuffer::new().with_record_capacity(16);
        let mut soft = TraceBuffer::new()
            .with_record_capacity(16)
            .with_soft_capacity(2);
        for v in 0..9 {
            plain.append(4, v);
            soft.append(4, v);
        }
        assert!(soft.early_drains() >= 1);
        assert_eq!(soft.dropped_records(), 0);
        let mut from_plain = TraceBuffer::new().with_record_capacity(16);
        from_plain.merge_shard(plain);
        let mut from_soft = TraceBuffer::new().with_record_capacity(16);
        from_soft.merge_shard(soft);
        assert_eq!(from_plain.records(), from_soft.records());
        assert_eq!(from_soft.appended_records(), 9);
    }

    #[test]
    fn soft_cap_still_drops_at_real_capacity() {
        let mut t = TraceBuffer::new()
            .with_record_capacity(4)
            .with_soft_capacity(2);
        for v in 0..9 {
            t.append(4, v);
        }
        // spilled + live never exceeds the real capacity.
        assert_eq!(t.dropped_records(), 5);
        assert_eq!(t.appended_records(), 9);
    }

    #[test]
    fn checksums_validate_and_quarantine() {
        let good = TraceRecord::new(3, 77);
        assert!(good.is_valid());
        let mut bad = good;
        bad.value ^= 1;
        assert!(!bad.is_valid());

        let mut t = TraceBuffer::new();
        t.append(1, 10);
        t.append(1, 11);
        assert_eq!(t.quarantine_invalid(0), 0, "intact records survive");
        // Simulate in-flight corruption: stale checksum, as the
        // fault hook produces.
        let mut t3 = TraceBuffer::new();
        t3.append(1, 10);
        t3.records_mut_for_tests()[0].value ^= 0xFF;
        t3.append(1, 11);
        assert_eq!(t3.quarantine_invalid(0), 1);
        assert_eq!(t3.records().len(), 1);
        assert_eq!(t3.records()[0].value, 11);
        // `from` bounds the scan: an already-drained prefix is not
        // re-examined.
        let mut t4 = TraceBuffer::new();
        t4.append(1, 10);
        t4.records_mut_for_tests()[0].value ^= 0xFF;
        t4.append(1, 11);
        assert_eq!(t4.quarantine_invalid(1), 0);
    }
}
