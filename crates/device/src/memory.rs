//! Memory surfaces: synthetic global memory and the GT-Pin trace
//! buffer.
//!
//! Global memory is *synthetic*: reads return a deterministic hash of
//! the address and writes are accounted but not stored. Profiling
//! fidelity does not depend on loaded data (kernel control flow is
//! driven by arguments), and this keeps full-program execution cheap.
//! The **trace buffer is real storage**: GT-Pin's injected
//! instructions atomically accumulate counters and append records
//! into it, and the tool's results are whatever those instructions
//! wrote — the same contract as the paper's CPU/GPU-shared buffer
//! (Section III-A).

use serde::{Deserialize, Serialize};

/// Deterministic value returned by a synthetic global-memory read.
pub fn synthetic_read(addr: u64) -> u32 {
    let mut v = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 29;
    v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v ^= v >> 32;
    v as u32
}

/// Base address of the memory region backing buffer `index`.
/// Buffers live in disjoint 4 MiB regions.
pub fn buffer_base(index: u32) -> u64 {
    0x1000_0000 + ((index as u64) << 22)
}

/// One appended trace record (used by memory-trace and latency
/// instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Record tag chosen by the tool that planted the instrumentation.
    pub tag: u32,
    /// Payload (an address, a timer delta, ...).
    pub value: u64,
}

/// The CPU/GPU-shared trace buffer: a slot array of 64-bit counters
/// plus an append stream of records.
///
/// Counter slots are written by `send.atomic_add` messages targeting
/// [`Surface::TraceBuffer`](gen_isa::Surface::TraceBuffer); the
/// append stream by `send.write` messages on the same surface. The
/// CPU side (GT-Pin post-processing) drains both after each kernel
/// completes.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    slots: Vec<u64>,
    records: Vec<TraceRecord>,
    record_cap: usize,
    dropped_records: u64,
}

impl TraceBuffer {
    /// An empty buffer with the default record capacity.
    pub fn new() -> TraceBuffer {
        TraceBuffer {
            slots: Vec::new(),
            records: Vec::new(),
            record_cap: 1 << 20,
            dropped_records: 0,
        }
    }

    /// Set the append-stream capacity (records beyond it are dropped
    /// and counted, as a bounded hardware buffer would).
    pub fn with_record_capacity(mut self, cap: usize) -> TraceBuffer {
        self.record_cap = cap;
        self
    }

    /// GPU side: atomically add `value` to counter slot `slot`,
    /// growing the slot array on demand.
    pub fn slot_add(&mut self, slot: usize, value: u64) {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, 0);
        }
        self.slots[slot] += value;
    }

    /// GPU side: append a record to the stream.
    pub fn append(&mut self, tag: u32, value: u64) {
        if self.records.len() < self.record_cap {
            self.records.push(TraceRecord { tag, value });
        } else {
            self.dropped_records += 1;
        }
    }

    /// CPU side: read a counter slot (0 if never written).
    pub fn slot(&self, slot: usize) -> u64 {
        self.slots.get(slot).copied().unwrap_or(0)
    }

    /// CPU side: the record stream.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records dropped because the stream was full.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// The append-stream capacity.
    pub fn record_capacity(&self) -> usize {
        self.record_cap
    }

    /// Merge a per-hardware-thread shard into this (shared) buffer —
    /// the drain step of sharded parallel execution.
    ///
    /// Counter slots add element-wise (addition commutes, but shards
    /// are merged in hardware-thread order anyway); records append in
    /// shard order under this buffer's capacity. Called in thread
    /// order with each shard's capacity equal to this buffer's, the
    /// result is exactly the serial execution's buffer: a record the
    /// shard dropped had ≥ `record_cap` same-thread predecessors, so
    /// the serial path (which sees at least those predecessors first)
    /// would have dropped it too, and the drop counts telescope.
    pub fn merge_shard(&mut self, shard: TraceBuffer) {
        // Match serial slot growth: `slot_add` resizes even for
        // zero-valued adds, and every slot in the shard was touched.
        if shard.slots.len() > self.slots.len() {
            self.slots.resize(shard.slots.len(), 0);
        }
        for (dst, v) in self.slots.iter_mut().zip(&shard.slots) {
            *dst += v;
        }
        for r in shard.records {
            if self.records.len() < self.record_cap {
                self.records.push(r);
            } else {
                self.dropped_records += 1;
            }
        }
        self.dropped_records += shard.dropped_records;
    }

    /// Number of live counter slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// CPU side: zero the counters and clear the stream, ready for
    /// the next kernel invocation.
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = 0);
        self.records.clear();
        self.dropped_records = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_reads_are_deterministic_and_spread() {
        assert_eq!(synthetic_read(42), synthetic_read(42));
        assert_ne!(synthetic_read(42), synthetic_read(43));
    }

    #[test]
    fn buffer_bases_do_not_overlap() {
        let a = buffer_base(0);
        let b = buffer_base(1);
        assert!(b >= a + (1 << 22), "4 MiB regions: {a:#x} vs {b:#x}");
    }

    #[test]
    fn slots_grow_on_demand_and_accumulate() {
        let mut t = TraceBuffer::new();
        t.slot_add(5, 3);
        t.slot_add(5, 4);
        assert_eq!(t.slot(5), 7);
        assert_eq!(t.slot(0), 0);
        assert_eq!(t.slot(99), 0, "unwritten slots read as zero");
        assert_eq!(t.num_slots(), 6);
    }

    #[test]
    fn record_stream_bounded() {
        let mut t = TraceBuffer::new().with_record_capacity(2);
        t.append(1, 10);
        t.append(1, 11);
        t.append(1, 12);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped_records(), 1);
    }

    #[test]
    fn merge_shard_matches_serial_interleaving() {
        // Serial: thread 0 then thread 1 write directly.
        let mut serial = TraceBuffer::new().with_record_capacity(3);
        serial.slot_add(1, 5);
        serial.append(0, 100);
        serial.append(0, 101);
        serial.slot_add(4, 2);
        serial.append(1, 200);
        serial.append(1, 201); // dropped: cap 3

        // Sharded: each thread fills its own buffer, merged in order.
        let mut merged = TraceBuffer::new().with_record_capacity(3);
        let mut s0 = TraceBuffer::new().with_record_capacity(3);
        s0.slot_add(1, 5);
        s0.append(0, 100);
        s0.append(0, 101);
        let mut s1 = TraceBuffer::new().with_record_capacity(3);
        s1.slot_add(4, 2);
        s1.append(1, 200);
        s1.append(1, 201);
        merged.merge_shard(s0);
        merged.merge_shard(s1);

        assert_eq!(merged.num_slots(), serial.num_slots());
        for s in 0..serial.num_slots() {
            assert_eq!(merged.slot(s), serial.slot(s));
        }
        assert_eq!(merged.records(), serial.records());
        assert_eq!(merged.dropped_records(), serial.dropped_records());
    }

    #[test]
    fn merge_shard_counts_shard_local_drops() {
        // A shard that overflowed its own (equal) capacity: drops
        // carry over on top of merge-time drops.
        let mut shared = TraceBuffer::new().with_record_capacity(2);
        shared.append(9, 0);
        let mut shard = TraceBuffer::new().with_record_capacity(2);
        shard.append(1, 1);
        shard.append(1, 2);
        shard.append(1, 3); // shard-local drop
        shared.merge_shard(shard);
        assert_eq!(shared.records().len(), 2);
        assert_eq!(
            shared.dropped_records(),
            2,
            "one merge-time + one shard-local"
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = TraceBuffer::new();
        t.slot_add(2, 9);
        t.append(7, 1);
        t.reset();
        assert_eq!(t.slot(2), 0);
        assert!(t.records().is_empty());
        assert_eq!(t.dropped_records(), 0);
    }
}
