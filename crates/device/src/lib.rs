//! # gpu-device
//!
//! A synthetic Intel-GEN-style GPU device model: the hardware
//! substrate that GT-Pin instruments and that subset selection
//! accelerates simulation of.
//!
//! Components:
//!
//! * [`topology`] — EU/subslice machine descriptions for the paper's
//!   Ivy Bridge HD 4000 and Haswell HD 4600 (Figure 2, Section V-E),
//! * [`jit`] — the GPU driver's JIT lowering kernel IR to GEN
//!   binaries (the interception point of Figure 1),
//! * [`executor`] — the functional execution engine with real
//!   register state; injected GT-Pin instructions execute here and
//!   write the [`memory::TraceBuffer`],
//! * [`timing`] — the analytic "native hardware" timing model
//!   (frequency-, occupancy-, cache- and mix-sensitive, with
//!   per-trial noise),
//! * [`detailed`] — the slow cycle-level simulator whose cost subset
//!   selection amortizes,
//! * [`cache`] / [`memory`] — the LLC model and memory surfaces,
//! * [`gpu`] — the [`Gpu`] device tying it together and implementing
//!   [`ocl_runtime::Device`], with hook points for a binary rewriter
//!   and a launch observer (GT-Pin's two attachment points).

pub mod cache;
pub mod checkpoint;
pub mod detailed;
pub mod driver;
pub mod executor;
pub mod gpu;
pub mod jit;
pub(crate) mod machine;
pub mod memory;
pub mod stats;
pub mod timing;
pub mod topology;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use checkpoint::{CheckpointLibrary, LaunchDescriptor};
pub use driver::{BinaryRewriter, GpuDriver, LaunchWatchdog};
pub use executor::{ExecConfig, ExecError, Executor, DISPATCH_WIDTH};
pub use gpu::{Gpu, GpuConfig, LaunchInfo, LaunchObserver};
pub use memory::{TraceBuffer, TraceRecord};
pub use stats::ExecutionStats;
pub use timing::{TimingConfig, TimingModel};
pub use topology::{GpuGeneration, GpuTopology};
