//! Shared per-thread architectural state and instruction semantics,
//! used by both the fast functional executor and the slow detailed
//! simulator so the two can never disagree on *what* an instruction
//! does — only on how long it takes.

use gen_isa::{Instruction, Opcode, Predicate, SendOp, Src, Surface, NUM_LANES};
use ocl_runtime::api::ArgValue;

use crate::cache::Cache;
use crate::executor::DISPATCH_WIDTH;
use crate::memory::{buffer_base, synthetic_read, TraceBuffer};
use crate::stats::ExecutionStats;

/// Register file, flags, and issue-cycle counter of one hardware
/// thread.
pub(crate) struct ThreadState {
    pub regs: Vec<[u32; NUM_LANES]>,
    pub flags: [[bool; NUM_LANES]; 2],
    pub issue_cycles: u64,
}

impl ThreadState {
    /// Fresh state for `thread_id`, with `r0` holding per-lane global
    /// work-item ids and argument registers broadcast.
    pub fn new(thread_id: u64, args: &[ArgValue]) -> ThreadState {
        let mut regs = vec![[0u32; NUM_LANES]; gen_isa::NUM_GRF as usize];
        for (lane, slot) in regs[0].iter_mut().enumerate() {
            *slot = (thread_id * DISPATCH_WIDTH) as u32 + lane as u32;
        }
        for (i, arg) in args.iter().enumerate() {
            let v = match arg {
                ArgValue::Scalar(s) => *s as u32,
                ArgValue::Buffer(b) => buffer_base(*b) as u32,
            };
            regs[crate::jit::ARG_REG_BASE as usize + i] = [v; NUM_LANES];
        }
        ThreadState {
            regs,
            flags: [[false; NUM_LANES]; 2],
            issue_cycles: 0,
        }
    }

    pub fn read(&self, src: Src, lane: usize) -> u32 {
        match src {
            Src::Null => 0,
            Src::Reg(r) => self.regs[r.0 as usize][lane],
            Src::Imm(v) => v,
        }
    }

    pub fn lane_active(&self, pred: Option<Predicate>, lane: usize) -> bool {
        match pred {
            None => true,
            Some(p) => self.flags[p.flag.index()][lane] ^ p.invert,
        }
    }
}

/// What executing one instruction did to control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Fall through to the next instruction.
    Next,
    /// Jump by the given displacement (relative to the next
    /// instruction).
    Branch(i32),
    /// The thread finished (`eot`).
    Done,
    /// `ret`/`call` outside a subroutine context.
    Fault,
}

/// Execute one instruction's architectural effects.
///
/// Updates registers/flags, feeds the cache and trace buffer, and
/// accounts application memory traffic in `stats`. The caller counts
/// the instruction itself and manages the instruction pointer.
///
/// `access_log`, when present, records every global-memory cache
/// access as `(addr, bytes)`. Two consumers replay these logs against
/// a shared cache in a fixed order: the parallel executor (in
/// hardware-thread order, per launch) and the epoch-sharded detailed
/// simulator (in EU index order, per epoch barrier). The fixed replay
/// order is what makes a worker running against a scratch cache
/// still produce the serial schedule's hit/miss counts.
pub(crate) fn step(
    st: &mut ThreadState,
    instr: &Instruction,
    cache: &mut Cache,
    trace: &mut TraceBuffer,
    stats: &mut ExecutionStats,
    access_log: Option<&mut Vec<(u64, u32)>>,
) -> StepOutcome {
    match instr.opcode {
        Opcode::Eot => StepOutcome::Done,
        Opcode::Ret | Opcode::Call => StepOutcome::Fault,
        Opcode::Jmpi => StepOutcome::Branch(instr.branch_offset),
        Opcode::Brc => {
            if st.lane_active(instr.pred, 0) {
                StepOutcome::Branch(instr.branch_offset)
            } else {
                StepOutcome::Next
            }
        }
        Opcode::Nop => StepOutcome::Next,
        Opcode::Cmp => {
            exec_cmp(st, instr);
            StepOutcome::Next
        }
        Opcode::Send | Opcode::Sendc => {
            exec_send(st, instr, cache, trace, stats, access_log);
            StepOutcome::Next
        }
        _ => {
            exec_alu(st, instr);
            StepOutcome::Next
        }
    }
}

fn exec_alu(st: &mut ThreadState, instr: &Instruction) {
    let lanes = instr.exec_size.lanes();
    let Some(dst) = instr.dst else { return };
    // GEN `sel` with a predicate is a per-lane select, not a gated
    // write: every lane writes, choosing src0 where the (possibly
    // inverted) flag holds and src1 elsewhere.
    if instr.opcode == Opcode::Sel {
        if let Some(p) = instr.pred {
            for lane in 0..lanes {
                let take_first = st.flags[p.flag.index()][lane] ^ p.invert;
                let v = if take_first {
                    st.read(instr.srcs[0], lane)
                } else {
                    st.read(instr.srcs[1], lane)
                };
                st.regs[dst.0 as usize][lane] = v;
            }
            return;
        }
    }
    for lane in 0..lanes {
        if !st.lane_active(instr.pred, lane) {
            continue;
        }
        let a = st.read(instr.srcs[0], lane);
        let v = match instr.opcode.num_sources() {
            0 | 1 => instr.opcode.eval_unary(a),
            2 => instr.opcode.eval_binary(a, st.read(instr.srcs[1], lane)),
            _ => instr.opcode.eval_ternary(
                a,
                st.read(instr.srcs[1], lane),
                st.read(instr.srcs[2], lane),
            ),
        };
        st.regs[dst.0 as usize][lane] = v;
    }
}

fn exec_cmp(st: &mut ThreadState, instr: &Instruction) {
    let lanes = instr.exec_size.lanes();
    let (Some(cond), Some(flag)) = (instr.cond, instr.flag) else {
        return;
    };
    for lane in 0..lanes {
        if !st.lane_active(instr.pred, lane) {
            continue;
        }
        let a = st.read(instr.srcs[0], lane);
        let b = st.read(instr.srcs[1], lane);
        st.flags[flag.index()][lane] = cond.eval(a, b);
    }
}

fn exec_send(
    st: &mut ThreadState,
    instr: &Instruction,
    cache: &mut Cache,
    trace: &mut TraceBuffer,
    stats: &mut ExecutionStats,
    access_log: Option<&mut Vec<(u64, u32)>>,
) {
    let Some(desc) = instr.send else { return };
    match desc.surface {
        Surface::Global => {
            let addr = st.read(instr.srcs[0], 0) as u64;
            if let Some(log) = access_log {
                if !matches!(desc.op, SendOp::ReadTimer) {
                    log.push((addr, desc.bytes));
                }
            }
            match desc.op {
                SendOp::Read => {
                    let (hits, misses) = cache.access(addr, desc.bytes);
                    stats.global_sends += 1;
                    stats.cache_hits += hits as u64;
                    stats.cache_misses += misses as u64;
                    stats.bytes_read += desc.bytes as u64;
                    if let Some(dst) = instr.dst {
                        for lane in 0..instr.exec_size.lanes() {
                            if st.lane_active(instr.pred, lane) {
                                st.regs[dst.0 as usize][lane] =
                                    synthetic_read(addr + lane as u64 * 4);
                            }
                        }
                    }
                }
                SendOp::Write | SendOp::AtomicAdd => {
                    let (hits, misses) = cache.access(addr, desc.bytes);
                    stats.global_sends += 1;
                    stats.cache_hits += hits as u64;
                    stats.cache_misses += misses as u64;
                    stats.bytes_written += desc.bytes as u64;
                }
                SendOp::ReadTimer => {
                    if let Some(dst) = instr.dst {
                        st.regs[dst.0 as usize][0] = st.issue_cycles as u32;
                    }
                }
            }
        }
        Surface::TraceBuffer => {
            let addr = st.read(instr.srcs[0], 0);
            let data = st.read(instr.srcs[1], 0);
            // Every trace-buffer message is an uncached round trip to
            // CPU-visible memory (one line's worth of traffic).
            stats.trace_bytes += 64;
            match desc.op {
                SendOp::AtomicAdd => trace.slot_add(addr as usize, data as u64),
                SendOp::Write => trace.append(addr, data as u64),
                SendOp::Read => {
                    if let Some(dst) = instr.dst {
                        st.regs[dst.0 as usize][0] = trace.slot(addr as usize) as u32;
                    }
                }
                SendOp::ReadTimer => {
                    if let Some(dst) = instr.dst {
                        st.regs[dst.0 as usize][0] = st.issue_cycles as u32;
                    }
                }
            }
        }
        Surface::Scratch => {
            if desc.op == SendOp::ReadTimer {
                if let Some(dst) = instr.dst {
                    st.regs[dst.0 as usize][0] = st.issue_cycles as u32;
                }
            }
        }
    }
}
