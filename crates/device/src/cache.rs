//! A set-associative LRU cache model for the GPU's LLC slice.
//!
//! The functional executor feeds every global send message through
//! this cache; hit/miss counts drive the memory term of the timing
//! model, and the same structure is reusable by GT-Pin's
//! trace-driven cache-simulation tool (Section III-B lists "cache
//! simulation through the use of memory traces" among GT-Pin's
//! capabilities).

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// A config sized from a topology's LLC slice.
    pub fn llc_slice(kib: u32) -> CacheConfig {
        CacheConfig {
            capacity_bytes: kib * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u32 {
        (self.capacity_bytes / self.line_bytes / self.ways).max(1)
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::llc_slice(256)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// A set-associative LRU cache.
///
/// The tag store is one flat `Vec` (set-major, `ways` entries per
/// set) rather than a `Vec` per set: the epoch-sharded detailed
/// simulator clones the whole cache once per EU per epoch, and a
/// flat store makes that clone a single allocation + memcpy.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    // ways[set * ways_per_set + way] = (tag, last_use);
    // u64::MAX tag = invalid.
    ways: Vec<(u64, u64)>,
    num_sets: u64,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// A cold cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let num_sets = config.num_sets() as u64;
        let ways = vec![(u64::MAX, 0); (num_sets * config.ways as u64) as usize];
        Cache {
            config,
            ways,
            num_sets,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access `bytes` starting at `addr`; returns the number of lines
    /// that hit and missed (an access can span lines).
    pub fn access(&mut self, addr: u64, bytes: u32) -> (u32, u32) {
        let line = self.config.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) as u64 - 1) / line;
        let mut hits = 0;
        let mut misses = 0;
        for l in first..=last {
            if self.access_line(l) {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        self.stats.hits += hits as u64;
        self.stats.misses += misses as u64;
        (hits, misses)
    }

    fn access_line(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let set = line_addr % self.num_sets;
        let tag = line_addr / self.num_sets;
        let ways_per_set = self.config.ways as usize;
        let base = set as usize * ways_per_set;
        let ways = &mut self.ways[base..base + ways_per_set];
        if let Some(way) = ways.iter_mut().find(|(t, _)| *t == tag) {
            way.1 = self.tick;
            return true;
        }
        // Miss: evict LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|(_, last)| *last)
            .expect("ways is non-empty");
        *victim = (tag, self.tick);
        false
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the statistics, keeping cache contents warm.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidate all contents and statistics.
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            *way = (u64::MAX, 0);
        }
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Overwrite this cache's contents (tags, recency, tick) from
    /// `other`, which must share the same geometry — the reuse-an-
    /// allocation form of `clone` the epoch loop leans on.
    pub fn copy_state_from(&mut self, other: &Cache) {
        debug_assert_eq!(self.config, other.config, "geometry mismatch");
        self.ways.copy_from_slice(&other.ways);
        self.tick = other.tick;
        self.stats = other.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = small_cache();
        let (h, m) = c.access(0x1000, 4);
        assert_eq!((h, m), (0, 1), "cold miss");
        let (h, m) = c.access(0x1000, 4);
        assert_eq!((h, m), (1, 0), "warm hit");
        assert_eq!(c.stats().accesses(), 2);
    }

    #[test]
    fn spanning_access_touches_multiple_lines() {
        let mut c = small_cache();
        let (h, m) = c.access(0x1000, 128);
        assert_eq!((h, m), (0, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache(); // 8 sets, 2 ways
                                   // Three lines mapping to the same set (stride = sets*line = 512).
        c.access(0, 4);
        c.access(512, 4);
        c.access(1024, 4); // evicts line 0
        let (h, _) = c.access(512, 4);
        assert_eq!(h, 1, "recently used line survives");
        let (h, m) = c.access(0, 4);
        assert_eq!((h, m), (0, 1), "LRU victim was evicted");
    }

    #[test]
    fn linear_streams_have_high_hit_rate_with_reuse() {
        let mut c = Cache::new(CacheConfig::default());
        for pass in 0..2 {
            for i in 0..1000u64 {
                c.access(i * 4, 4);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        assert!(
            c.stats().hit_rate() > 0.9,
            "second pass over 4 KiB fits easily"
        );
    }

    #[test]
    fn flush_cools_the_cache() {
        let mut c = small_cache();
        c.access(0, 4);
        c.flush();
        let (h, m) = c.access(0, 4);
        assert_eq!((h, m), (0, 1));
        assert_eq!(c.stats().accesses(), 1, "flush also clears stats");
    }

    #[test]
    fn zero_byte_access_still_touches_one_line() {
        let mut c = small_cache();
        let (h, m) = c.access(0, 0);
        assert_eq!(h + m, 1);
    }
}
