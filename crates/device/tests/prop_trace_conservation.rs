//! Trace-accounting properties of the sharded parallel executor:
//! every record a hardware thread appends is either in the merged
//! buffer or counted in `dropped_records` — never silently lost —
//! and the merged result is bitwise identical to the serial loop at
//! every worker count from 1 to 8.

use gen_isa::builder::KernelBuilder;
use gen_isa::{ExecSize, Reg, Src, Surface};
use gpu_device::{Cache, CacheConfig, ExecConfig, Executor, TraceBuffer};
use proptest::prelude::*;

/// A straight-line kernel where each hardware thread appends
/// `appends` records (tagged with its own global id via `r0`, so
/// merge order is observable) and bumps one counter slot.
fn trace_kernel(appends: u32) -> gen_isa::DecodedKernel {
    let mut b = KernelBuilder::new("prop_trace");
    let e = b.entry_block();
    let blk = b.block_mut(e);
    blk.mov(ExecSize::S1, Reg(100), Src::Imm(5)) // record tag / slot addr
        .mov(ExecSize::S1, Reg(101), Src::Imm(1)); // slot increment
    for _ in 0..appends {
        // data = r0 lane 0 = thread_id * DISPATCH_WIDTH.
        blk.send_write(ExecSize::S1, Reg(100), Reg(0), Surface::TraceBuffer, 8);
    }
    blk.atomic_add(Reg(100), Reg(101), Surface::TraceBuffer)
        .eot();
    b.build().expect("valid kernel").flatten()
}

fn run(
    kernel: &gen_isa::DecodedKernel,
    gws: u64,
    cap: usize,
    workers: usize,
) -> (gpu_device::ExecutionStats, TraceBuffer) {
    let mut cache = Cache::new(CacheConfig::default());
    let mut trace = TraceBuffer::new().with_record_capacity(cap);
    let stats = Executor {
        cache: &mut cache,
        trace: &mut trace,
        config: ExecConfig {
            threads: workers,
            ..Default::default()
        },
    }
    .execute_launch(kernel, &[], gws)
    .expect("launch runs");
    (stats, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// records + drops are conserved across shard merges, and the
    /// merged buffer equals the serial one, at worker counts 1..=8 —
    /// including capacities small enough to force drops mid-merge.
    #[test]
    fn records_and_drops_conserved_across_shard_merges(
        appends in 0u32..9,
        hw_threads in 1u64..24,
        cap in prop::sample::select(vec![1usize, 3, 17, 64, 1 << 20]),
    ) {
        let kernel = trace_kernel(appends);
        let gws = hw_threads * 16;
        let total_appended = hw_threads * appends as u64;

        let (serial_stats, serial_trace) = run(&kernel, gws, cap, 1);
        prop_assert_eq!(
            serial_trace.records().len() as u64 + serial_trace.dropped_records(),
            total_appended,
            "serial loop lost records"
        );

        for workers in 2..=8usize {
            let (stats, trace) = run(&kernel, gws, cap, workers);
            prop_assert_eq!(
                trace.records().len() as u64 + trace.dropped_records(),
                total_appended,
                "shard merge lost records at {} workers", workers
            );
            prop_assert_eq!(
                trace.records(), serial_trace.records(),
                "record stream diverged at {} workers", workers
            );
            prop_assert_eq!(
                trace.dropped_records(), serial_trace.dropped_records(),
                "drop count diverged at {} workers", workers
            );
            prop_assert_eq!(
                trace.slot(5), serial_trace.slot(5),
                "counter slot diverged at {} workers", workers
            );
            prop_assert_eq!(
                &stats, &serial_stats,
                "execution stats (incl. trace_cycles) diverged at {} workers", workers
            );
        }
    }
}
