//! Determinism properties of the epoch-sharded detailed simulator:
//! the sharded run must be bitwise identical to the serial run —
//! cycles, stall/occupancy figures, `ExecutionStats` — at every
//! worker count from 1 to 8, for arbitrary kernels, work sizes, and
//! epoch lengths, and also while the fault registry is armed but
//! quiescent.

use std::sync::Mutex;

use gen_isa::ExecSize;
use gpu_device::detailed::{DetailedConfig, DetailedSimulator};
use gpu_device::GpuGeneration;
use ocl_runtime::api::ArgValue;
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use proptest::prelude::*;

/// The faults registry is process-global and two tests here arm it;
/// a sibling simulating concurrently during an armed window would
/// take injections and pollute the drained accounting. Every test
/// takes this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One loop body op the generator can pick.
fn arb_op() -> impl Strategy<Value = IrOp> {
    prop_oneof![
        (1u16..24, arb_width()).prop_map(|(ops, width)| IrOp::Compute { ops, width }),
        (1u16..6, arb_width()).prop_map(|(ops, width)| IrOp::MathCompute { ops, width }),
        (
            prop::sample::select(vec![16u32, 64, 256]),
            arb_width(),
            arb_pattern()
        )
            .prop_map(|(bytes, width, pattern)| IrOp::Load {
                arg: 0,
                bytes,
                width,
                pattern,
            }),
    ]
}

fn arb_width() -> impl Strategy<Value = ExecSize> {
    prop::sample::select(vec![ExecSize::S1, ExecSize::S8, ExecSize::S16])
}

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop::sample::select(vec![
        AccessPattern::Linear,
        AccessPattern::Gather,
        AccessPattern::Strided(256),
    ])
}

prop_compose! {
    /// A kernel of 1–5 loop-body ops with an arbitrary trip count,
    /// plus a global work size spanning "fewer threads than EUs"
    /// through "several SMT rounds per EU".
    fn arb_launch()(
        body in prop::collection::vec(arb_op(), 1..5),
        trip in 1u64..12,
        hw_threads in 1u64..96,
        epoch_cycles in prop::sample::select(vec![64u64, 1024, 8192]),
    ) -> (gen_isa::DecodedKernel, u64, u64) {
        let mut ir = KernelIr::new("prop-detailed", 1);
        ir.body = vec![IrOp::LoopBegin { trip: TripCount::Const(trip as u32) }];
        ir.body.extend(body);
        ir.body.push(IrOp::LoopEnd);
        let kernel = gpu_device::jit::compile_kernel(&ir)
            .expect("compiles")
            .flatten();
        (kernel, hw_threads * 16, epoch_cycles)
    }
}

fn run(
    kernel: &gen_isa::DecodedKernel,
    gws: u64,
    epoch_cycles: u64,
    workers: usize,
) -> gpu_device::detailed::DetailedResult {
    let config = DetailedConfig {
        epoch_cycles,
        ..Default::default()
    };
    let mut sim = DetailedSimulator::new(GpuGeneration::IvyBridgeHd4000.topology(), 1.15e9, config)
        .with_workers(workers);
    sim.simulate_launch(kernel, &[ArgValue::Buffer(0)], gws)
        .expect("simulates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded detailed simulation is worker-count invariant:
    /// bitwise identical results at 1..=8 workers.
    #[test]
    fn sharded_simulation_is_worker_count_invariant(
        launch in arb_launch(),
    ) {
        let _guard = guard();
        let (kernel, gws, epoch_cycles) = launch;
        let serial = run(&kernel, gws, epoch_cycles, 1);
        prop_assert!(serial.occupancy() > 0.0, "launch did real work");
        for workers in 2..=8usize {
            let par = run(&kernel, gws, epoch_cycles, workers);
            prop_assert_eq!(&par, &serial, "workers = {}", workers);
            prop_assert_eq!(
                par.seconds.to_bits(),
                serial.seconds.to_bits(),
                "seconds bits at {} workers", workers
            );
        }
    }

    /// An armed-but-quiescent fault registry (every instrumented seam
    /// runs its check path, nothing fires) perturbs nothing: results
    /// stay bit-identical to the unarmed run at every worker count.
    #[test]
    fn quiescent_faults_do_not_perturb_sharded_simulation(
        launch in arb_launch(),
        seed in 0u64..1_000,
    ) {
        let (kernel, gws, epoch_cycles) = launch;
        let _guard = guard();
        let unarmed = run(&kernel, gws, epoch_cycles, 1);
        gtpin_faults::install(gtpin_faults::FaultPlan::quiescent(seed));
        let armed: Vec<_> = (1..=8usize)
            .map(|workers| run(&kernel, gws, epoch_cycles, workers))
            .collect();
        let fired = gtpin_faults::take_accounting();
        gtpin_faults::disable();
        prop_assert!(fired.is_empty(), "quiescent plan fired: {:?}", fired);
        for (i, r) in armed.iter().enumerate() {
            prop_assert_eq!(r, &unarmed, "workers = {}", i + 1);
        }
    }
}

/// Injected shard deaths at every rate degrade to the serial result:
/// the `sim.shard` site kills parallel epochs, the launch re-runs
/// serially, and nothing observable changes except the recovery
/// accounting.
#[test]
fn shard_fault_rates_never_change_results() {
    let _guard = guard();
    let mut ir = KernelIr::new("prop-detailed-faults", 1);
    ir.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Const(9),
        },
        IrOp::Compute {
            ops: 7,
            width: ExecSize::S16,
        },
        IrOp::Load {
            arg: 0,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Gather,
        },
        IrOp::LoopEnd,
    ];
    let kernel = gpu_device::jit::compile_kernel(&ir)
        .expect("compiles")
        .flatten();
    let baseline = run(&kernel, 40 * 16, 1024, 1);
    for rate in [0.05, 0.5, 1.0] {
        gtpin_faults::install(gtpin_faults::FaultPlan::single(
            gtpin_faults::site::SIM_SHARD,
            rate,
            0xD15C,
        ));
        for workers in 2..=6usize {
            let degraded = run(&kernel, 40 * 16, 1024, workers);
            assert_eq!(degraded, baseline, "rate = {rate}, workers = {workers}");
        }
        gtpin_faults::take_accounting();
        gtpin_faults::disable();
    }
}
