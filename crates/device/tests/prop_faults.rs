//! Determinism properties of `GTPIN_FAULTS` injection at the
//! executor seams: any fault schedule (seed × site × rate × worker
//! count) yields identical results and identical drop/quarantine
//! accounting across two replays, and a zero-rate (armed-but-
//! quiescent) plan is bitwise identical to the disabled build.
//!
//! The fault registry is process-global, so every case serializes on
//! one mutex and uninstalls before returning.

use std::sync::Mutex;

use gen_isa::builder::KernelBuilder;
use gen_isa::{ExecSize, Reg, Src, Surface};
use gpu_device::memory::TraceRecord;
use gpu_device::{Cache, CacheConfig, ExecConfig, ExecutionStats, Executor, TraceBuffer};
use gtpin_faults::{site, FaultPlan};
use proptest::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

/// A straight-line kernel where each hardware thread appends
/// `appends` trace records and bumps one counter slot.
fn trace_kernel(appends: u32) -> gen_isa::DecodedKernel {
    let mut b = KernelBuilder::new("prop_faults");
    let e = b.entry_block();
    let blk = b.block_mut(e);
    blk.mov(ExecSize::S1, Reg(100), Src::Imm(5))
        .mov(ExecSize::S1, Reg(101), Src::Imm(1));
    for _ in 0..appends {
        blk.send_write(ExecSize::S1, Reg(100), Reg(0), Surface::TraceBuffer, 8);
    }
    blk.atomic_add(Reg(100), Reg(101), Surface::TraceBuffer)
        .eot();
    b.build().expect("valid kernel").flatten()
}

struct Trial {
    stats: ExecutionStats,
    records: Vec<TraceRecord>,
    dropped: u64,
    counter_slot: u64,
    accounting: Vec<(String, u64)>,
}

/// One full trial: install `plan` (or disable), execute, drain the
/// fault accounting.
fn trial(
    kernel: &gen_isa::DecodedKernel,
    gws: u64,
    workers: usize,
    plan: Option<&FaultPlan>,
) -> Trial {
    match plan {
        Some(p) => gtpin_faults::install(p.clone()),
        None => gtpin_faults::disable(),
    }
    let mut cache = Cache::new(CacheConfig::default());
    let mut trace = TraceBuffer::new().with_record_capacity(1 << 20);
    let stats = Executor {
        cache: &mut cache,
        trace: &mut trace,
        config: ExecConfig {
            threads: workers,
            ..Default::default()
        },
    }
    .execute_launch(kernel, &[], gws)
    .expect("launch runs");
    let accounting = gtpin_faults::take_accounting();
    gtpin_faults::disable();
    Trial {
        stats,
        records: trace.records().to_vec(),
        dropped: trace.dropped_records(),
        counter_slot: trace.slot(5),
        accounting,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two identically-seeded replays of any fault schedule agree on
    /// everything observable: stats, record stream, drop count, and
    /// the injection/recovery accounting.
    #[test]
    fn fault_schedules_replay_bit_identically(
        seed in 0u64..1_000,
        site_idx in 0usize..site::ALL.len(),
        rate in prop::sample::select(vec![0.0f64, 0.3, 1.0]),
        appends in 1u32..6,
        hw_threads in 2u64..16,
        workers in 1usize..=8,
    ) {
        let _guard = LOCK.lock().unwrap();
        let kernel = trace_kernel(appends);
        let gws = hw_threads * 16;
        let plan = FaultPlan::single(site::ALL[site_idx], rate, seed);

        let a = trial(&kernel, gws, workers, Some(&plan));
        let b = trial(&kernel, gws, workers, Some(&plan));
        prop_assert_eq!(&a.stats, &b.stats, "stats diverged across replays");
        prop_assert_eq!(&a.records, &b.records, "record stream diverged");
        prop_assert_eq!(a.dropped, b.dropped, "drop accounting diverged");
        prop_assert_eq!(a.counter_slot, b.counter_slot, "counter slot diverged");
        prop_assert_eq!(&a.accounting, &b.accounting, "fault accounting diverged");
    }

    /// An armed plan with rate zero is indistinguishable from the
    /// disabled build — the instrumentation itself perturbs nothing.
    #[test]
    fn zero_rate_is_bitwise_identical_to_disabled(
        seed in 0u64..1_000,
        appends in 1u32..6,
        hw_threads in 2u64..16,
        workers in 1usize..=8,
    ) {
        let _guard = LOCK.lock().unwrap();
        let kernel = trace_kernel(appends);
        let gws = hw_threads * 16;

        let off = trial(&kernel, gws, workers, None);
        let quiescent = trial(&kernel, gws, workers, Some(&FaultPlan::quiescent(seed)));
        prop_assert_eq!(&off.stats, &quiescent.stats, "stats diverged");
        prop_assert_eq!(&off.records, &quiescent.records, "record stream diverged");
        prop_assert_eq!(off.dropped, quiescent.dropped);
        prop_assert_eq!(off.counter_slot, quiescent.counter_slot);
        prop_assert!(
            quiescent.accounting.is_empty(),
            "a quiescent plan must fire nothing, got {:?}",
            quiescent.accounting
        );
    }
}
