//! Journal round-trip properties: truncating the final record at
//! **every byte offset** recovers exactly the intact record prefix.
//! A torn record is never parsed as valid data — the invariant the
//! whole resume-correctness argument rests on.

use std::fs;
use std::path::PathBuf;

use gtpin_durable::{Journal, RECORD_HEADER};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gtpin-prop-journal-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Deterministic payload bytes from a seed — no global RNG, so every
/// proptest case is self-contained and shrinkable.
fn payload(seed: u64, index: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(index);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

/// Copy a journal directory, truncating its final segment to `cut`
/// bytes — the torn state a crash at that exact offset leaves behind.
fn clone_truncated(src: &PathBuf, dst: &PathBuf, final_segment: &str, cut: usize) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        let bytes = fs::read(entry.path()).unwrap();
        let bytes = if name == final_segment {
            bytes[..cut].to_vec()
        } else {
            bytes
        };
        fs::write(dst.join(&name), bytes).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Build a journal of single-record segments plus one final
    /// multi-record batch segment, then tear the **final record** at
    /// every byte offset (into its payload, checksum, or length
    /// header). Recovery must return exactly the records before the
    /// torn one — never a corrupted parse, never a dropped intact
    /// record — and a cut landing exactly on the record boundary is
    /// indistinguishable from the record never having been written.
    #[test]
    fn truncation_at_every_offset_recovers_the_exact_prefix(
        seed in 0u64..100_000,
        prior in 0usize..5,
        batch_extra in 0usize..3,
        last_len in 0usize..48,
    ) {
        let dir = tmpdir(&format!("t-{seed}-{prior}-{batch_extra}-{last_len}"));
        let mut j = Journal::create(&dir).unwrap();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for i in 0..prior {
            let p = payload(seed, i as u64, 7 + i);
            j.append(&p).unwrap();
            expected.push(p);
        }
        // Final segment: `batch_extra` records that must survive the
        // tear, then the victim record of `last_len` bytes.
        let mut batch: Vec<Vec<u8>> = (0..batch_extra)
            .map(|i| payload(seed, 100 + i as u64, 9))
            .collect();
        batch.push(payload(seed, 999, last_len));
        let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        j.append_batch(&refs).unwrap();
        expected.extend(batch[..batch_extra].iter().cloned());

        let final_segment = format!("seg-{prior:08}.log");
        let full = fs::read(dir.join(&final_segment)).unwrap().len();
        let final_record = RECORD_HEADER + last_len;
        let boundary = full - final_record;

        let scratch = tmpdir(&format!("s-{seed}-{prior}-{batch_extra}-{last_len}"));
        for cut in boundary..full {
            clone_truncated(&dir, &scratch, &final_segment, cut);
            let (_, rec) = Journal::recover(&scratch).unwrap();
            prop_assert_eq!(
                &rec.records, &expected,
                "cut at byte {} of {}", cut, full
            );
            let torn = cut > boundary;
            prop_assert_eq!(rec.torn_records, usize::from(torn), "cut at {}", cut);
            // Recovery physically repaired the tear: a second pass is
            // clean and returns the same prefix.
            let (_, again) = Journal::recover(&scratch).unwrap();
            prop_assert_eq!(&again.records, &expected);
            prop_assert!(!again.repaired(), "repair must converge in one pass");
        }
        // Sanity: the untouched journal recovers everything,
        // including the victim record.
        let (_, whole) = Journal::recover(&dir).unwrap();
        let mut all = expected.clone();
        all.push(batch[batch_extra].clone());
        prop_assert_eq!(whole.records, all);

        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&scratch);
    }
}
