//! Crash-consistent run journal for exploration and profiling sweeps.
//!
//! The paper's subset-selection study is the expensive path: 25 apps
//! × 30 interval/feature configurations, each replaying a full
//! instrumented execution. A production profiling service must
//! survive preemption and partial failure *without* restarting that
//! sweep from zero. This crate is the durability pillar: completed
//! units of work (per-app profiles, per-config evaluations, selection
//! summaries) are appended to a **write-ahead journal** on disk, and
//! a resumed run recovers the completed-work set and recomputes only
//! what is missing.
//!
//! ## Format and atomicity argument
//!
//! A journal is a directory of numbered **segments**
//! (`seg-00000042.log`). Each segment starts with an 8-byte magic and
//! holds one or more **records**: `[len: u32 LE][fnv64: u64 LE]
//! [payload]`. Two mechanisms make appends crash-consistent:
//!
//! 1. **Write-to-temp + atomic rename.** A segment is staged as
//!    `seg-N.log.tmp`, flushed, then renamed to `seg-N.log`. POSIX
//!    rename is atomic, so a crash *before* the rename leaves only an
//!    orphan `.tmp` (ignored and swept by recovery), and a crash
//!    *after* leaves a fully-written segment.
//! 2. **Length-prefix + checksum per record.** If the OS tears the
//!    write anyway (power loss between rename and data reaching the
//!    platter), recovery detects the torn tail — a record whose bytes
//!    run out or whose checksum mismatches — and **truncates** the
//!    segment back to its last intact record. A torn record is never
//!    parsed as valid data; it is counted and recomputed.
//!
//! Under those two rules every record is either durably present and
//! intact, or absent — the invariant resume correctness rests on.
//!
//! ## Fault injection
//!
//! The `journal.crash` site (see `gtpin-faults`) simulates both
//! failure modes deterministically: process death between append and
//! rename (orphan `.tmp`) and a torn partial write that survived the
//! rename. [`Journal::append`] is the guarded single attempt;
//! [`Journal::append_with_recovery`] walks the recovery ladder
//! (repair + retry, then an unguarded append) for callers that must
//! make progress in-process.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"GTJRNL01";
// Record framing (length-prefix + FNV-1a checksum) is shared with the
// GTOBS01 binary telemetry journal; both formats frame and tear-check
// payloads identically, so the helpers live in `gtpin_obs::frame`.
pub use gtpin_obs::frame::{fnv64, RECORD_HEADER};
use gtpin_obs::frame::{frame_record, split_record, RecordSplit};

/// Errors from the journal layer.
#[derive(Debug)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The directory is missing, not a directory, or unusable as a
    /// journal (e.g. `create` over an existing journal).
    NotAJournal {
        /// The offending path.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
    },
    /// The `journal.crash` fault fired: the process is considered
    /// dead between append and rename (or after a torn write). The
    /// in-flight record is not durable.
    InjectedCrash {
        /// The segment index whose append "died".
        segment: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal I/O failed at {}: {source}", path.display())
            }
            JournalError::NotAJournal { path, reason } => {
                write!(f, "{} is not a usable journal: {reason}", path.display())
            }
            JournalError::InjectedCrash { segment } => {
                write!(
                    f,
                    "injected crash during append of segment {segment} \
                     (simulated process death)"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// splitmix64 finalizer, used to derive the injected failure mode
/// from the decision key without consulting any global state.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What [`Journal::recover`] found on disk.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Every intact record payload, in (segment, record) order.
    pub records: Vec<Vec<u8>>,
    /// Segments that held at least one intact record.
    pub segments: usize,
    /// Torn tail records truncated away (never parsed as valid).
    pub torn_records: usize,
    /// Segments physically truncated back to their last intact record.
    pub truncated_segments: usize,
    /// Segments deleted because truncation left no intact record.
    pub deleted_segments: usize,
    /// Orphan `seg-*.log.tmp` files swept (crash before rename).
    pub orphan_tmps: usize,
}

impl Recovery {
    /// True when recovery had to repair anything at all.
    pub fn repaired(&self) -> bool {
        self.torn_records > 0 || self.orphan_tmps > 0 || self.deleted_segments > 0
    }
}

/// How many injected crashes an [`Journal::append_with_recovery`]
/// call survived before the record became durable.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AppendRecovery {
    /// Guarded attempts that "died" (orphan tmp or torn write).
    pub crashes_survived: u32,
    /// True when the final attempt had to run unguarded.
    pub unguarded: bool,
}

/// A crash-consistent append-only journal rooted at one directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    next_segment: u64,
}

fn segment_name(index: u64) -> String {
    format!("seg-{index:08}.log")
}

/// Parse `seg-NNNNNNNN.log` back to its index.
fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if rest.len() != 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

impl Journal {
    /// Start a **fresh** journal at `dir` (created if absent). Fails
    /// if the directory already holds journal segments — resuming an
    /// existing journal must go through [`Journal::recover`] so torn
    /// state is repaired, never silently appended after.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let entries = list_dir(&dir)?;
        if entries
            .iter()
            .any(|n| parse_segment_name(n).is_some() || n.ends_with(".log.tmp"))
        {
            return Err(JournalError::NotAJournal {
                path: dir,
                reason: "directory already contains journal segments \
                         (use recover to resume)"
                    .into(),
            });
        }
        Ok(Journal {
            dir,
            next_segment: 0,
        })
    }

    /// Open an existing journal, repairing crash damage: orphan
    /// `.tmp` files are swept, torn tail records are truncated (and
    /// recounted, never parsed as valid records), and every intact
    /// payload is returned in append order.
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(Journal, Recovery), JournalError> {
        let dir = dir.into();
        let meta = fs::metadata(&dir).map_err(|_| JournalError::NotAJournal {
            path: dir.clone(),
            reason: "directory does not exist".into(),
        })?;
        if !meta.is_dir() {
            return Err(JournalError::NotAJournal {
                path: dir,
                reason: "not a directory".into(),
            });
        }
        let mut span = gtpin_obs::span("journal.recover");
        let recovery = scan_and_repair(&dir)?;
        let next_segment = max_segment_index(&dir)?.map_or(0, |m| m + 1);
        if span.active() {
            span.arg_u64("records", recovery.records.len() as u64);
            span.arg_u64("torn", recovery.torn_records as u64);
            span.arg_u64("orphan_tmps", recovery.orphan_tmps as u64);
        }
        gtpin_obs::counter_add("journal.recovered_records", recovery.records.len() as u64);
        gtpin_obs::counter_add("journal.torn_truncated", recovery.torn_records as u64);
        gtpin_obs::counter_add("journal.orphan_tmps", recovery.orphan_tmps as u64);
        Ok((Journal { dir, next_segment }, recovery))
    }

    /// The journal's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The index the next sealed segment will take.
    pub fn next_segment(&self) -> u64 {
        self.next_segment
    }

    /// Append one record as a new sealed segment. This is the
    /// **guarded single attempt**: with the `journal.crash` fault
    /// armed it may "die" (orphan tmp or torn write) and return
    /// [`JournalError::InjectedCrash`] — the record is then *not*
    /// durable, exactly as if the process had been killed.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        self.append_batch(&[payload])
    }

    /// Append several records inside one sealed segment (one rename).
    /// On an injected crash the batch is not durable as a whole, but
    /// a torn write may leave a durable *prefix* of the batch —
    /// callers that retry must dedupe by record identity.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> Result<(), JournalError> {
        // Each retry of the same segment index (a crashed append that
        // a resumed run re-attempts) must get an independent injection
        // decision, or an orphan-mode crash would deterministically
        // repeat forever and no resume loop could ever make progress.
        let attempt = if gtpin_faults::enabled() {
            gtpin_faults::occurrence(gtpin_faults::site::JOURNAL_CRASH, self.next_segment)
        } else {
            0
        };
        self.append_attempt(payloads, attempt, true)
    }

    /// Append with the in-process recovery ladder: a crashed guarded
    /// attempt is repaired ([`Journal::repair`]) and retried once
    /// (fresh injection decision); a second crash falls back to an
    /// unguarded append. A record always becomes durable; the ladder
    /// is accounted through `gtpin-faults`.
    pub fn append_with_recovery(&mut self, payload: &[u8]) -> Result<AppendRecovery, JournalError> {
        let mut stats = AppendRecovery::default();
        for attempt in 0..2u64 {
            match self.append_attempt(&[payload], attempt, true) {
                Ok(()) => return Ok(stats),
                Err(JournalError::InjectedCrash { .. }) => {
                    stats.crashes_survived += 1;
                    gtpin_faults::note("recovered.journal_repair", 1);
                    self.repair()?;
                }
                Err(e) => return Err(e),
            }
        }
        stats.unguarded = true;
        gtpin_faults::note("recovered.journal_unguarded", 1);
        self.append_attempt(&[payload], 2, false)?;
        Ok(stats)
    }

    /// Sweep crash damage without reading records back: orphan tmps
    /// removed, torn tails truncated, empty segments deleted. The
    /// next append continues after the highest surviving index.
    pub fn repair(&mut self) -> Result<Recovery, JournalError> {
        let recovery = scan_and_repair(&self.dir)?;
        if let Some(m) = max_segment_index(&self.dir)? {
            self.next_segment = self.next_segment.max(m + 1);
        }
        Ok(recovery)
    }

    fn append_attempt(
        &mut self,
        payloads: &[&[u8]],
        attempt: u64,
        guarded: bool,
    ) -> Result<(), JournalError> {
        let index = self.next_segment;
        let mut span = gtpin_obs::span("journal.append");
        if span.active() {
            span.arg_u64("segment", index);
            span.arg_u64("records", payloads.len() as u64);
        }
        let mut bytes = Vec::with_capacity(
            SEGMENT_MAGIC.len()
                + payloads
                    .iter()
                    .map(|p| RECORD_HEADER + p.len())
                    .sum::<usize>(),
        );
        bytes.extend_from_slice(SEGMENT_MAGIC);
        for payload in payloads {
            frame_record(payload, &mut bytes);
        }

        let final_path = self.dir.join(segment_name(index));
        let tmp_path = self.dir.join(format!("{}.tmp", segment_name(index)));
        let crash = guarded
            && gtpin_faults::should_inject(
                gtpin_faults::site::JOURNAL_CRASH,
                (index << 8) | attempt,
            );
        if crash {
            // Failure mode derives from the same key the decision
            // used, so a replayed schedule tears identically.
            let torn = mix64((index << 8) | attempt) & 1 == 1;
            if torn {
                // Torn partial write that survived the rename: the
                // final record's bytes run out mid-payload.
                let last_payload = payloads.last().map_or(0, |p| p.len());
                let cut = bytes.len() - (last_payload / 2 + 1);
                write_file(&tmp_path, &bytes[..cut])?;
                fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
                self.next_segment = index + 1;
            } else {
                // Death between append and rename: orphan tmp only.
                write_file(&tmp_path, &bytes)?;
            }
            return Err(JournalError::InjectedCrash { segment: index });
        }

        write_file(&tmp_path, &bytes)?;
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
        self.next_segment = index + 1;
        gtpin_obs::counter_add("journal.records_appended", payloads.len() as u64);
        gtpin_obs::counter_add("journal.segments_sealed", 1);
        Ok(())
    }
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<(), JournalError> {
    let mut f = fs::File::create(path).map_err(|e| io_err(path, e))?;
    f.write_all(bytes).map_err(|e| io_err(path, e))?;
    f.sync_all().map_err(|e| io_err(path, e))?;
    Ok(())
}

fn list_dir(dir: &Path) -> Result<Vec<String>, JournalError> {
    let mut names = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        if let Ok(name) = entry.file_name().into_string() {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

fn max_segment_index(dir: &Path) -> Result<Option<u64>, JournalError> {
    Ok(list_dir(dir)?
        .iter()
        .filter_map(|n| parse_segment_name(n))
        .max())
}

/// One segment's parse result: intact payloads plus where the intact
/// prefix ends (for truncation).
struct SegmentScan {
    payloads: Vec<Vec<u8>>,
    intact_len: usize,
    torn: bool,
}

/// Walk a segment's bytes, stopping at the first torn record: not
/// enough bytes for the header, a length overrunning the file, or a
/// checksum mismatch.
fn scan_segment(bytes: &[u8]) -> SegmentScan {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return SegmentScan {
            payloads: Vec::new(),
            intact_len: 0,
            torn: true,
        };
    }
    let mut payloads = Vec::new();
    let mut offset = SEGMENT_MAGIC.len();
    loop {
        match split_record(&bytes[offset..]) {
            RecordSplit::Done => {
                return SegmentScan {
                    payloads,
                    intact_len: offset,
                    torn: false,
                };
            }
            RecordSplit::Torn => {
                return SegmentScan {
                    payloads,
                    intact_len: offset,
                    torn: true,
                };
            }
            RecordSplit::Record { payload, consumed } => {
                payloads.push(payload.to_vec());
                offset += consumed;
            }
        }
    }
}

fn scan_and_repair(dir: &Path) -> Result<Recovery, JournalError> {
    let mut recovery = Recovery::default();
    let names = list_dir(dir)?;

    // Orphan tmps first: a crash before rename leaves exactly these.
    for name in names.iter().filter(|n| n.ends_with(".log.tmp")) {
        let path = dir.join(name);
        fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        recovery.orphan_tmps += 1;
    }

    let mut indexed: Vec<(u64, String)> = names
        .iter()
        .filter_map(|n| parse_segment_name(n).map(|i| (i, n.clone())))
        .collect();
    indexed.sort();

    for (_, name) in indexed {
        let path = dir.join(&name);
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        let scan = scan_segment(&bytes);
        if scan.torn {
            recovery.torn_records += 1;
            if scan.payloads.is_empty() {
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                recovery.deleted_segments += 1;
            } else {
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err(&path, e))?;
                f.set_len(scan.intact_len as u64)
                    .map_err(|e| io_err(&path, e))?;
                f.sync_all().map_err(|e| io_err(&path, e))?;
                recovery.truncated_segments += 1;
            }
        }
        if !scan.payloads.is_empty() {
            recovery.segments += 1;
            recovery.records.extend(scan.payloads);
        }
    }
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The faults registry is process-global, and several tests here
    /// arm it at rate 1.0: without serialization those plans bleed
    /// into concurrently-running siblings as spurious
    /// `InjectedCrash` errors. Every test takes this lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gtpin-durable-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_records_in_order() {
        let _guard = guard();
        let dir = tmpdir("roundtrip");
        let mut j = Journal::create(&dir).unwrap();
        for i in 0..10u8 {
            j.append(&[i; 5]).unwrap();
        }
        j.append_batch(&[b"alpha", b"beta"]).unwrap();
        let (j2, rec) = Journal::recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 12);
        assert_eq!(rec.records[3], vec![3u8; 5]);
        assert_eq!(rec.records[10], b"alpha".to_vec());
        assert_eq!(rec.records[11], b"beta".to_vec());
        assert!(!rec.repaired());
        assert_eq!(j2.next_segment(), 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payloads_round_trip() {
        let _guard = guard();
        let dir = tmpdir("empty");
        let mut j = Journal::create(&dir).unwrap();
        j.append(b"").unwrap();
        j.append(b"x").unwrap();
        let (_, rec) = Journal::recover(&dir).unwrap();
        assert_eq!(rec.records, vec![b"".to_vec(), b"x".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_never_parsed() {
        let _guard = guard();
        let dir = tmpdir("torn");
        let mut j = Journal::create(&dir).unwrap();
        j.append_batch(&[b"keep-me", b"also-keep", b"torn-away"])
            .unwrap();
        // Tear the final record mid-payload by hand.
        let seg = dir.join(segment_name(0));
        let bytes = fs::read(&seg).unwrap();
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(bytes.len() as u64 - 4).unwrap();
        drop(f);
        let (_, rec) = Journal::recover(&dir).unwrap();
        assert_eq!(
            rec.records,
            vec![b"keep-me".to_vec(), b"also-keep".to_vec()]
        );
        assert_eq!(rec.torn_records, 1);
        assert_eq!(rec.truncated_segments, 1);
        // Recovery physically repaired the file: a second recover is
        // clean and byte-stable.
        let (_, rec2) = Journal::recover(&dir).unwrap();
        assert_eq!(rec2.records, rec.records);
        assert!(!rec2.repaired());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checksum_truncates() {
        let _guard = guard();
        let dir = tmpdir("crc");
        let mut j = Journal::create(&dir).unwrap();
        j.append(b"good").unwrap();
        j.append(b"evil").unwrap();
        // Flip a payload byte of segment 1.
        let seg = dir.join(segment_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let (_, rec) = Journal::recover(&dir).unwrap();
        assert_eq!(rec.records, vec![b"good".to_vec()]);
        assert_eq!(rec.torn_records, 1);
        assert_eq!(rec.deleted_segments, 1, "segment 1 had no intact record");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_tmp_is_swept_and_next_append_proceeds() {
        let _guard = guard();
        let dir = tmpdir("orphan");
        let mut j = Journal::create(&dir).unwrap();
        j.append(b"one").unwrap();
        fs::write(dir.join("seg-00000001.log.tmp"), b"half-written").unwrap();
        let (mut j2, rec) = Journal::recover(&dir).unwrap();
        assert_eq!(rec.orphan_tmps, 1);
        assert_eq!(rec.records.len(), 1);
        j2.append(b"two").unwrap();
        let (_, rec2) = Journal::recover(&dir).unwrap();
        assert_eq!(rec2.records, vec![b"one".to_vec(), b"two".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_journal() {
        let _guard = guard();
        let dir = tmpdir("refuse");
        let mut j = Journal::create(&dir).unwrap();
        j.append(b"x").unwrap();
        match Journal::create(&dir) {
            Err(JournalError::NotAJournal { .. }) => {}
            other => panic!("expected NotAJournal, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_missing_dir() {
        let _guard = guard();
        let dir = tmpdir("missing");
        match Journal::recover(&dir) {
            Err(JournalError::NotAJournal { .. }) => {}
            other => panic!("expected NotAJournal, got {other:?}"),
        }
    }

    #[test]
    fn injected_crashes_lose_the_record_and_recovery_repairs() {
        let _guard = guard();
        let dir = tmpdir("inject");
        gtpin_faults::install(gtpin_faults::FaultPlan::single(
            gtpin_faults::site::JOURNAL_CRASH,
            1.0,
            7,
        ));
        let mut j = Journal::create(&dir).unwrap();
        let mut crashed = 0;
        for i in 0..6u8 {
            match j.append(&[i; 9]) {
                Ok(()) => {}
                Err(JournalError::InjectedCrash { .. }) => {
                    crashed += 1;
                    // Simulated death: repair as a fresh process would.
                    j.repair().unwrap();
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(crashed, 6, "rate 1.0 crashes every guarded append");
        gtpin_faults::disable();
        let (_, rec) = Journal::recover(&dir).unwrap();
        assert!(
            rec.records.is_empty(),
            "crashed appends are never durable: {:?}",
            rec.records.len()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_with_recovery_always_lands_the_record() {
        let _guard = guard();
        let dir = tmpdir("ladder");
        gtpin_faults::install(gtpin_faults::FaultPlan::single(
            gtpin_faults::site::JOURNAL_CRASH,
            1.0,
            11,
        ));
        let mut j = Journal::create(&dir).unwrap();
        for i in 0..4u8 {
            let stats = j.append_with_recovery(&[i; 3]).unwrap();
            assert_eq!(stats.crashes_survived, 2);
            assert!(stats.unguarded, "rate 1.0 bottoms out unguarded");
        }
        let acc: std::collections::BTreeMap<String, u64> =
            gtpin_faults::take_accounting().into_iter().collect();
        assert_eq!(acc["recovered.journal_repair"], 8);
        assert_eq!(acc["recovered.journal_unguarded"], 4);
        gtpin_faults::disable();
        let (_, rec) = Journal::recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 4);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r, &vec![i as u8; 3]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_schedule_replays_identically() {
        let _guard = guard();
        let run = |seed: u64| -> Vec<bool> {
            let dir = tmpdir(&format!("replay-{seed}"));
            gtpin_faults::install(gtpin_faults::FaultPlan::single(
                gtpin_faults::site::JOURNAL_CRASH,
                0.5,
                seed,
            ));
            let mut j = Journal::create(&dir).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..32u8 {
                match j.append(&[i]) {
                    Ok(()) => outcomes.push(true),
                    Err(JournalError::InjectedCrash { .. }) => {
                        outcomes.push(false);
                        j.repair().unwrap();
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            gtpin_faults::disable();
            fs::remove_dir_all(&dir).unwrap();
            outcomes
        };
        let a = run(77);
        let b = run(77);
        assert_eq!(a, b, "same seed, same crash schedule");
    }
}
