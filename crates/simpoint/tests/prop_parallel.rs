//! Determinism properties of the parallel SimPoint paths: the BIC
//! k-sweep and the chunked Lloyd assignment must produce bitwise
//! identical selections at every thread count.

use proptest::prelude::*;
use simpoint::{kmeans_with_threads, select_with_threads, FeatureVector, SimpointConfig};

prop_compose! {
    fn arb_population()(
        entries in prop::collection::vec(
            (prop::collection::vec((0u64..40, 1u64..100), 1..6), 1u64..10_000),
            2..40,
        ),
    ) -> (Vec<FeatureVector>, Vec<u64>) {
        let mut vectors = Vec::with_capacity(entries.len());
        let mut weights = Vec::with_capacity(entries.len());
        for (keys, w) in entries {
            let v: FeatureVector =
                keys.into_iter().map(|(k, x)| (k, x as f64)).collect();
            vectors.push(v);
            weights.push(w);
        }
        (vectors, weights)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The parallel BIC sweep returns the serial selection — same
    /// picks, same assignments, same k — at every thread count, and
    /// ratios always sum to one.
    #[test]
    fn bic_sweep_is_thread_count_invariant(
        pop in arb_population(),
        seed in 0u64..1_000,
    ) {
        let (vectors, weights) = pop;
        let cfg = SimpointConfig { seed, ..Default::default() };
        let serial = select_with_threads(&vectors, &weights, &cfg, 1).expect("selects");
        prop_assert!((serial.total_ratio() - 1.0).abs() < 1e-9);
        for threads in 2..=8usize {
            let par = select_with_threads(&vectors, &weights, &cfg, threads)
                .expect("selects");
            prop_assert_eq!(&par, &serial, "threads = {}", threads);
            for (a, b) in par.picks.iter().zip(&serial.picks) {
                prop_assert_eq!(
                    a.ratio.to_bits(),
                    b.ratio.to_bits(),
                    "ratio bits at {} threads", threads
                );
            }
        }
    }

}

/// Chunking the Lloyd assignment step never changes a k-means run:
/// assignments, centroids, and SSE are bit-identical. The population
/// exceeds [`simpoint::PAR_MIN_POINTS`] so the chunked path actually
/// engages.
#[test]
fn lloyd_chunking_is_thread_count_invariant_on_large_populations() {
    let n = simpoint::PAR_MIN_POINTS + 500;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let x = ((i as u64).wrapping_mul(0x9E37_79B9) % 1000) as f64 / 10.0;
            vec![x, (i % 7) as f64]
        })
        .collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    for k in [1usize, 3, 6] {
        let serial = kmeans_with_threads(&points, &weights, k, 0xD1CE ^ k as u64, 50, 1);
        for threads in 2..=8usize {
            let par = kmeans_with_threads(&points, &weights, k, 0xD1CE ^ k as u64, 50, threads);
            assert_eq!(
                par.assignments, serial.assignments,
                "k={k} threads={threads}"
            );
            assert_eq!(par.centroids, serial.centroids, "k={k} threads={threads}");
            assert_eq!(
                par.sse.to_bits(),
                serial.sse.to_bits(),
                "k={k} threads={threads}"
            );
        }
    }
}
