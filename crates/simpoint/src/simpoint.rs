//! The top-level SimPoint pipeline: normalize variable-size interval
//! feature vectors, project, cluster across candidate k with BIC
//! model selection, and return cluster representatives with
//! representation ratios (steps 3–5 of the paper's Section V-A).

use serde::{Deserialize, Serialize};

use crate::bic::bic_score;
use crate::project::{project_all, DEFAULT_DIMS};
use crate::vector::FeatureVector;

/// SimPoint configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpointConfig {
    /// Maximum clusters (and therefore selections). The paper uses
    /// 10 in all experiments.
    pub max_k: usize,
    /// Projected dimensionality (SimPoint 3.0 default: 15).
    pub dims: usize,
    /// Seed for projection and clustering.
    pub seed: u64,
    /// Keep the smallest k whose BIC reaches this fraction of the
    /// best BIC seen (SimPoint's rule; 0.9 by default).
    pub bic_fraction: f64,
    /// Lloyd iteration cap per k.
    pub max_iters: usize,
}

impl Default for SimpointConfig {
    fn default() -> SimpointConfig {
        SimpointConfig {
            max_k: 10,
            dims: DEFAULT_DIMS,
            seed: 0xD1CE,
            bic_fraction: 0.9,
            max_iters: 100,
        }
    }
}

/// One selected interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpointPick {
    /// Index of the representative interval in the input order.
    pub interval: usize,
    /// The cluster it represents.
    pub cluster: usize,
    /// Representation ratio: the cluster's share of total weight
    /// (dynamic instructions). Ratios across picks sum to 1.
    pub ratio: f64,
}

/// A complete SimPoint selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen representatives, one per cluster, ordered by
    /// cluster index.
    pub picks: Vec<SimpointPick>,
    /// Cluster assignment per input interval.
    pub assignments: Vec<usize>,
    /// Number of clusters the BIC rule settled on (≤ `max_k`).
    pub k: usize,
}

impl Selection {
    /// The selected interval indices in input order.
    pub fn selected_intervals(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.picks.iter().map(|p| p.interval).collect();
        v.sort_unstable();
        v
    }

    /// Sum of representation ratios (1.0 up to rounding).
    pub fn total_ratio(&self) -> f64 {
        self.picks.iter().map(|p| p.ratio).sum()
    }
}

/// Errors from [`select`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// No intervals were provided.
    NoIntervals,
    /// `weights` and `vectors` lengths differ.
    LengthMismatch { vectors: usize, weights: usize },
    /// All interval weights are zero.
    ZeroWeight,
    /// The BIC sweep produced no run clearing its own threshold —
    /// every clustering degenerated (a numerical pathology, surfaced
    /// instead of panicking).
    NoViableClustering,
    /// A quarantine mask's length differs from the interval count.
    MaskMismatch { vectors: usize, mask: usize },
    /// Every interval was quarantined; nothing remains to select.
    AllQuarantined,
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::NoIntervals => write!(f, "no intervals to select from"),
            SelectError::LengthMismatch { vectors, weights } => {
                write!(f, "{vectors} vectors but {weights} weights")
            }
            SelectError::ZeroWeight => write!(f, "all interval weights are zero"),
            SelectError::NoViableClustering => {
                write!(f, "no clustering run cleared the BIC threshold")
            }
            SelectError::MaskMismatch { vectors, mask } => {
                write!(f, "{vectors} vectors but quarantine mask of length {mask}")
            }
            SelectError::AllQuarantined => {
                write!(f, "every interval is quarantined; nothing to select")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Run the SimPoint pipeline over per-interval feature vectors and
/// weights (dynamic instruction counts — SimPoint 3.0's
/// variable-size interval support).
///
/// # Errors
///
/// Returns [`SelectError`] on empty input, length mismatch, or
/// all-zero weights.
pub fn select(
    vectors: &[FeatureVector],
    weights: &[u64],
    config: &SimpointConfig,
) -> Result<Selection, SelectError> {
    select_with_threads(vectors, weights, config, gtpin_par::configured_threads())
}

/// [`select`] with an explicit worker count.
///
/// The k = 1..=`max_k` sweep fans out across threads — each run owns
/// its RNG (seeded from `config.seed` and `k` alone) and its BIC
/// score, and runs are collected back in k order, so the BIC
/// threshold rule sees exactly the serial sequence. For large
/// interval populations the sweep instead stays serial and the
/// thread budget goes to chunking each run's Lloyd assignment step
/// (see [`crate::kmeans::kmeans_with_threads`]). Either way the
/// selection is bitwise identical at every thread count.
///
/// # Errors
///
/// Returns [`SelectError`] on empty input, length mismatch, or
/// all-zero weights.
pub fn select_with_threads(
    vectors: &[FeatureVector],
    weights: &[u64],
    config: &SimpointConfig,
    threads: usize,
) -> Result<Selection, SelectError> {
    if vectors.is_empty() {
        return Err(SelectError::NoIntervals);
    }
    if vectors.len() != weights.len() {
        return Err(SelectError::LengthMismatch {
            vectors: vectors.len(),
            weights: weights.len(),
        });
    }
    let total_weight: u64 = weights.iter().sum();
    if total_weight == 0 {
        return Err(SelectError::ZeroWeight);
    }
    let mut obs_span = gtpin_obs::span("simpoint.select");
    if obs_span.active() {
        obs_span.arg_u64("intervals", vectors.len() as u64);
        obs_span.arg_u64("threads", threads as u64);
    }

    // Normalize per-vector so interval length does not dominate the
    // geometry; length re-enters through the clustering weights.
    let mut normalized: Vec<FeatureVector> = vectors.to_vec();
    for v in &mut normalized {
        v.normalize();
    }
    let points = project_all(&normalized, config.dims, config.seed);
    let w: Vec<f64> = weights.iter().map(|&x| x as f64).collect();

    // Sweep k, score with BIC, keep the smallest k clearing the
    // fraction-of-best threshold. Small populations spend the thread
    // budget on concurrent k runs; large ones keep the sweep serial
    // and chunk each run's assignment step instead (nesting both
    // would oversubscribe).
    let max_k = config.max_k.min(points.len()).max(1);
    let (sweep_threads, lloyd_threads) = if points.len() >= crate::kmeans::PAR_MIN_POINTS {
        (1, threads)
    } else {
        (threads, 1)
    };
    let sweep_ns = gtpin_obs::now_ns();
    let runs: Vec<(crate::kmeans::KmeansResult, f64)> =
        gtpin_par::parallel_indexed(max_k, sweep_threads, |i| {
            let k = i + 1;
            let r = crate::kmeans::kmeans_with_threads(
                &points,
                &w,
                k,
                config.seed ^ (k as u64) << 32,
                config.max_iters,
                lloyd_threads,
            );
            let bic = bic_score(&points, &w, &r);
            (r, bic)
        });
    if obs_span.active() {
        obs_span.arg_u64("max_k", max_k as u64);
        gtpin_obs::hist_ns(
            "simpoint.bic_sweep_ns",
            gtpin_obs::now_ns().saturating_sub(sweep_ns),
        );
    }
    // SimPoint 3.0's rule: normalize BIC scores to [min, max] across
    // the k sweep and keep the smallest k whose normalized score
    // reaches the threshold fraction.
    let finite: Vec<f64> = runs
        .iter()
        .map(|(_, b)| *b)
        .filter(|b| b.is_finite())
        .collect();
    let best_bic = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_bic = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let span = (best_bic - min_bic).max(1e-12);
    // Clamp to best_bic: `min + 1.0·span` can exceed the max by an
    // ulp, and when every BIC is non-finite any run qualifies.
    let threshold = (min_bic + config.bic_fraction * span).min(best_bic);
    let (result, _) = runs
        .into_iter()
        .find(|(_, b)| *b >= threshold || !threshold.is_finite())
        .ok_or(SelectError::NoViableClustering)?;

    // Representatives: the member closest to each centroid; ratios:
    // cluster weight share.
    let k = result.k();
    let mut picks = Vec::with_capacity(k);
    for c in 0..k {
        let members = result.members(c);
        // `total_cmp` keeps the choice well-defined even if a
        // distance degenerates to NaN (NaN orders last, so a finite
        // member still wins).
        let Some(rep) = members.iter().copied().min_by(|&a, &b| {
            let da = crate::project::distance2(&points[a], &result.centroids[c]);
            let db = crate::project::distance2(&points[b], &result.centroids[c]);
            da.total_cmp(&db)
        }) else {
            continue;
        };
        let mass: u64 = members.iter().map(|&i| weights[i]).sum();
        if obs_span.active() {
            gtpin_obs::hist_ns("simpoint.cluster_size", members.len() as u64);
        }
        picks.push(SimpointPick {
            interval: rep,
            cluster: c,
            ratio: mass as f64 / total_weight as f64,
        });
    }
    obs_span.arg_u64("k", picks.len() as u64);

    Ok(Selection {
        k: picks.len(),
        picks,
        assignments: result.assignments,
    })
}

/// Cluster assignment given to quarantined intervals in
/// [`select_filtered`]'s output: they belong to no cluster.
pub const QUARANTINED: usize = usize::MAX;

/// [`select`] over a population where some intervals are quarantined
/// (their trace data was corrupted or dropped): the pipeline skips
/// them, warns, and renormalizes representation ratios over the
/// surviving weight (the Eq. 1 denominators shrink accordingly)
/// instead of aborting the whole characterization.
///
/// Pick indices and assignments are reported in the *original*
/// interval numbering; quarantined intervals get the [`QUARANTINED`]
/// sentinel assignment. With an all-false mask this is exactly
/// [`select`] — same decisions, bit for bit.
///
/// # Errors
///
/// [`SelectError::MaskMismatch`] when the mask length differs,
/// [`SelectError::AllQuarantined`] when nothing survives, plus
/// everything [`select`] returns.
pub fn select_filtered(
    vectors: &[FeatureVector],
    weights: &[u64],
    quarantined: &[bool],
    config: &SimpointConfig,
) -> Result<Selection, SelectError> {
    select_filtered_with_threads(
        vectors,
        weights,
        quarantined,
        config,
        gtpin_par::configured_threads(),
    )
}

/// [`select_filtered`] with an explicit worker count.
///
/// # Errors
///
/// See [`select_filtered`].
pub fn select_filtered_with_threads(
    vectors: &[FeatureVector],
    weights: &[u64],
    quarantined: &[bool],
    config: &SimpointConfig,
    threads: usize,
) -> Result<Selection, SelectError> {
    if vectors.len() != quarantined.len() {
        return Err(SelectError::MaskMismatch {
            vectors: vectors.len(),
            mask: quarantined.len(),
        });
    }
    let skipped = quarantined.iter().filter(|&&q| q).count();
    if skipped == 0 {
        // Fast path: bitwise identical to the unfiltered pipeline.
        return select_with_threads(vectors, weights, config, threads);
    }
    if skipped == vectors.len() {
        return Err(SelectError::AllQuarantined);
    }
    gtpin_obs::warn!(
        "simpoint: skipping {skipped}/{} quarantined interval(s) and \
         renormalizing weights over the survivors",
        vectors.len()
    );
    gtpin_obs::counter_add("simpoint.quarantined_intervals", skipped as u64);

    // Select over the kept subset; `keep[j]` maps compacted index j
    // back to the original interval numbering.
    let keep: Vec<usize> = (0..vectors.len()).filter(|&i| !quarantined[i]).collect();
    let kept_vectors: Vec<FeatureVector> = keep.iter().map(|&i| vectors[i].clone()).collect();
    let kept_weights: Vec<u64> = keep.iter().map(|&i| weights[i]).collect();
    let inner = select_with_threads(&kept_vectors, &kept_weights, config, threads)?;

    let picks = inner
        .picks
        .iter()
        .map(|p| SimpointPick {
            interval: keep[p.interval],
            cluster: p.cluster,
            ratio: p.ratio,
        })
        .collect();
    let mut assignments = vec![QUARANTINED; vectors.len()];
    for (j, &orig) in keep.iter().enumerate() {
        assignments[orig] = inner.assignments[j];
    }
    Ok(Selection {
        picks,
        assignments,
        k: inner.k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an interval population with `phases` distinct behaviours.
    fn phased_vectors(phases: usize, per_phase: usize) -> (Vec<FeatureVector>, Vec<u64>) {
        let mut vectors = Vec::new();
        let mut weights = Vec::new();
        for p in 0..phases {
            for i in 0..per_phase {
                let mut v = FeatureVector::new();
                // Each phase exercises a distinct pair of keys;
                // intervals within a phase differ only in magnitude,
                // which L1 normalization removes.
                let scale = 1.0 + (i % 3) as f64 * 0.2;
                v.add(100 * p as u64, 10.0 * scale);
                v.add(100 * p as u64 + 1, 5.0 * scale);
                vectors.push(v);
                weights.push(1000 + (i as u64 % 7) * 10);
            }
        }
        (vectors, weights)
    }

    #[test]
    fn ratios_sum_to_one() {
        let (v, w) = phased_vectors(3, 8);
        let s = select(&v, &w, &SimpointConfig::default()).unwrap();
        assert!((s.total_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_phase_structure() {
        let (v, w) = phased_vectors(3, 8);
        let s = select(&v, &w, &SimpointConfig::default()).unwrap();
        assert!(
            s.k >= 3,
            "three behaviours need at least three clusters, got {}",
            s.k
        );
        // Intervals of the same phase share a cluster.
        for p in 0..3 {
            let base = s.assignments[p * 8];
            for i in 0..8 {
                assert_eq!(s.assignments[p * 8 + i], base, "phase {p} interval {i}");
            }
        }
    }

    #[test]
    fn respects_max_k() {
        let (v, w) = phased_vectors(6, 5);
        let cfg = SimpointConfig {
            max_k: 4,
            ..Default::default()
        };
        let s = select(&v, &w, &cfg).unwrap();
        assert!(s.k <= 4);
    }

    #[test]
    fn representative_belongs_to_its_cluster() {
        let (v, w) = phased_vectors(4, 6);
        let s = select(&v, &w, &SimpointConfig::default()).unwrap();
        for pick in &s.picks {
            assert_eq!(s.assignments[pick.interval], pick.cluster);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (v, w) = phased_vectors(3, 7);
        let a = select(&v, &w, &SimpointConfig::default()).unwrap();
        let b = select(&v, &w, &SimpointConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_population_selects_few() {
        let v: Vec<FeatureVector> = (0..20)
            .map(|_| [(1u64, 1.0), (2, 2.0)].into_iter().collect())
            .collect();
        let w = vec![100u64; 20];
        let s = select(&v, &w, &SimpointConfig::default()).unwrap();
        assert!(
            s.k <= 2,
            "identical intervals should collapse, got k={}",
            s.k
        );
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            select(&[], &[], &SimpointConfig::default()).unwrap_err(),
            SelectError::NoIntervals
        );
        let v = vec![FeatureVector::new()];
        assert!(matches!(
            select(&v, &[1, 2], &SimpointConfig::default()).unwrap_err(),
            SelectError::LengthMismatch { .. }
        ));
        assert_eq!(
            select(&v, &[0], &SimpointConfig::default()).unwrap_err(),
            SelectError::ZeroWeight
        );
    }

    #[test]
    fn filtered_with_empty_mask_is_bitwise_identical() {
        let (v, w) = phased_vectors(3, 8);
        let mask = vec![false; v.len()];
        let plain = select(&v, &w, &SimpointConfig::default()).unwrap();
        let filtered = select_filtered(&v, &w, &mask, &SimpointConfig::default()).unwrap();
        assert_eq!(plain, filtered);
    }

    #[test]
    fn filtered_skips_quarantined_and_renormalizes() {
        let (v, w) = phased_vectors(3, 8);
        let mut mask = vec![false; v.len()];
        mask[0] = true;
        mask[9] = true;
        mask[17] = true;
        let s = select_filtered(&v, &w, &mask, &SimpointConfig::default()).unwrap();
        // Quarantined intervals get the sentinel and are never picked.
        for (i, &q) in mask.iter().enumerate() {
            if q {
                assert_eq!(s.assignments[i], QUARANTINED);
                assert!(s.picks.iter().all(|p| p.interval != i));
            } else {
                assert_ne!(s.assignments[i], QUARANTINED);
            }
        }
        // Eq. 1 renormalization: ratios over the surviving weight
        // still sum to one.
        assert!((s.total_ratio() - 1.0).abs() < 1e-9);
        // Picks are reported in original numbering and belong to
        // their clusters.
        for p in &s.picks {
            assert_eq!(s.assignments[p.interval], p.cluster);
        }
    }

    #[test]
    fn filtered_error_cases() {
        let (v, w) = phased_vectors(2, 4);
        assert!(matches!(
            select_filtered(&v, &w, &[false], &SimpointConfig::default()).unwrap_err(),
            SelectError::MaskMismatch { .. }
        ));
        let all = vec![true; v.len()];
        assert_eq!(
            select_filtered(&v, &w, &all, &SimpointConfig::default()).unwrap_err(),
            SelectError::AllQuarantined
        );
    }

    #[test]
    fn single_interval_selects_itself_fully() {
        let v = vec![[(1u64, 3.0)].into_iter().collect::<FeatureVector>()];
        let s = select(&v, &[500], &SimpointConfig::default()).unwrap();
        assert_eq!(s.k, 1);
        assert_eq!(s.picks[0].interval, 0);
        assert!((s.picks[0].ratio - 1.0).abs() < 1e-12);
    }
}
