//! Bayesian Information Criterion scoring for choosing the number of
//! clusters, following SimPoint's approach: run k-means for several
//! values of k and keep the smallest k whose BIC clears a fixed
//! fraction of the best BIC observed.

use crate::kmeans::KmeansResult;

/// BIC of a clustering over weighted points.
///
/// Uses the spherical-Gaussian likelihood approximation (Pelleg &
/// Moore's X-means formulation, which SimPoint adopts): higher is
/// better; more clusters improve fit but pay a parameter penalty.
pub fn bic_score(points: &[Vec<f64>], weights: &[f64], result: &KmeansResult) -> f64 {
    let n: f64 = weights.iter().sum();
    let k = result.k() as f64;
    let dims = points.first().map(|p| p.len()).unwrap_or(0) as f64;
    if n <= k {
        return f64::NEG_INFINITY;
    }

    // Weighted variance estimate.
    let variance = (result.sse / (n - k)).max(1e-12);

    // Log-likelihood per cluster.
    let mut cluster_mass = vec![0.0; result.k()];
    for (i, &a) in result.assignments.iter().enumerate() {
        cluster_mass[a] += weights[i];
    }
    let mut log_likelihood = 0.0;
    for &m in &cluster_mass {
        if m > 0.0 {
            log_likelihood += m * (m.ln() - n.ln());
        }
    }
    log_likelihood -= n * dims / 2.0 * (2.0 * std::f64::consts::PI * variance).ln();
    log_likelihood -= (n - k) / 2.0;

    let num_params = k * (dims + 1.0);
    log_likelihood - num_params / 2.0 * n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;

    fn blobs(centers: &[f64], per: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut pts = Vec::new();
        for &c in centers {
            for i in 0..per {
                pts.push(vec![c + 0.01 * i as f64, c]);
            }
        }
        let w = vec![1.0; pts.len()];
        (pts, w)
    }

    #[test]
    fn bic_prefers_true_cluster_count() {
        let (pts, w) = blobs(&[0.0, 50.0, 100.0], 12);
        let b1 = bic_score(&pts, &w, &kmeans(&pts, &w, 1, 7, 100));
        let b3 = bic_score(&pts, &w, &kmeans(&pts, &w, 3, 7, 100));
        assert!(
            b3 > b1,
            "three real blobs: BIC(3)={b3} must beat BIC(1)={b1}"
        );
    }

    #[test]
    fn bic_penalizes_excess_clusters_at_equal_fit() {
        // Identical points: every k fits perfectly (SSE = 0), so the
        // parameter penalty and mass-entropy terms must make more
        // clusters strictly worse.
        let pts = vec![vec![5.0, 5.0]; 24];
        let w = vec![1.0; 24];
        let b1 = bic_score(&pts, &w, &kmeans(&pts, &w, 1, 7, 100));
        let b6 = bic_score(&pts, &w, &kmeans(&pts, &w, 6, 7, 100));
        assert!(
            b1 >= b6,
            "equal fit: BIC(1)={b1} should not lose to BIC(6)={b6}"
        );
    }

    #[test]
    fn degenerate_inputs_are_finite_or_neg_infinity() {
        let pts = vec![vec![1.0]];
        let w = vec![1.0];
        let r = kmeans(&pts, &w, 1, 0, 10);
        let b = bic_score(&pts, &w, &r);
        assert!(b == f64::NEG_INFINITY || b.is_finite());
    }
}
