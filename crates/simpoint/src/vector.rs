//! Sparse feature vectors.
//!
//! A feature vector summarizes one execution interval as a set of
//! `(key, value)` pairs, where keys are program events ("calls to
//! kernel foo", "executions of basic block 12 of kernel 3") and
//! values are instruction-weighted dynamic counts (Section V-B of
//! the paper).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A sparse, high-dimensional feature vector with `u64` keys.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    entries: BTreeMap<u64, f64>,
}

impl FeatureVector {
    /// An empty vector.
    pub fn new() -> FeatureVector {
        FeatureVector::default()
    }

    /// Add `value` to the entry for `key` (creating it at zero).
    pub fn add(&mut self, key: u64, value: f64) {
        *self.entries.entry(key).or_insert(0.0) += value;
    }

    /// The value for `key` (zero when absent).
    pub fn get(&self, key: u64) -> f64 {
        self.entries.get(&key).copied().unwrap_or(0.0)
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all values (the L1 mass).
    pub fn l1(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Normalize to unit L1 mass, so intervals of different lengths
    /// become comparable. No-op on empty or zero vectors.
    pub fn normalize(&mut self) {
        let mass = self.l1();
        if mass > 0.0 {
            for v in self.entries.values_mut() {
                *v /= mass;
            }
        }
    }

    /// Iterate `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Squared Euclidean distance in the sparse space (mostly used
    /// by tests; clustering runs in the projected space).
    pub fn sparse_distance2(&self, other: &FeatureVector) -> f64 {
        let mut sum = 0.0;
        let mut it_a = self.entries.iter().peekable();
        let mut it_b = other.entries.iter().peekable();
        loop {
            match (it_a.peek(), it_b.peek()) {
                (Some((&ka, &va)), Some((&kb, &vb))) => {
                    if ka == kb {
                        sum += (va - vb) * (va - vb);
                        it_a.next();
                        it_b.next();
                    } else if ka < kb {
                        sum += va * va;
                        it_a.next();
                    } else {
                        sum += vb * vb;
                        it_b.next();
                    }
                }
                (Some((_, &va)), None) => {
                    sum += va * va;
                    it_a.next();
                }
                (None, Some((_, &vb))) => {
                    sum += vb * vb;
                    it_b.next();
                }
                (None, None) => break,
            }
        }
        sum
    }
}

impl FromIterator<(u64, f64)> for FeatureVector {
    fn from_iter<T: IntoIterator<Item = (u64, f64)>>(iter: T) -> FeatureVector {
        let mut v = FeatureVector::new();
        for (k, val) in iter {
            v.add(k, val);
        }
        v
    }
}

impl Extend<(u64, f64)> for FeatureVector {
    fn extend<T: IntoIterator<Item = (u64, f64)>>(&mut self, iter: T) {
        for (k, val) in iter {
            self.add(k, val);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut v = FeatureVector::new();
        v.add(3, 2.0);
        v.add(3, 1.5);
        v.add(9, 1.0);
        assert_eq!(v.get(3), 3.5);
        assert_eq!(v.get(9), 1.0);
        assert_eq!(v.get(42), 0.0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn normalize_produces_unit_mass() {
        let mut v: FeatureVector = [(1, 3.0), (2, 1.0)].into_iter().collect();
        v.normalize();
        assert!((v.l1() - 1.0).abs() < 1e-12);
        assert!((v.get(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_of_empty_is_noop() {
        let mut v = FeatureVector::new();
        v.normalize();
        assert!(v.is_empty());
    }

    #[test]
    fn sparse_distance_merges_keys() {
        let a: FeatureVector = [(1, 1.0), (2, 2.0)].into_iter().collect();
        let b: FeatureVector = [(2, 2.0), (3, 3.0)].into_iter().collect();
        // (1-0)² + (2-2)² + (0-3)² = 10
        assert!((a.sparse_distance2(&b) - 10.0).abs() < 1e-12);
        assert_eq!(a.sparse_distance2(&a), 0.0);
    }
}
