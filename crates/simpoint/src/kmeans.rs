//! Weighted k-means with k-means++ seeding and Lloyd iterations —
//! the clustering engine behind SimPoint (step 4 of the standard
//! subset-selection procedure in Section V-A of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::project::distance2;

/// The outcome of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Weighted sum of squared distances to assigned centroids.
    pub sse: f64,
}

impl KmeansResult {
    /// Number of clusters actually produced.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }
}

/// Run weighted k-means.
///
/// `weights` give each point's importance (interval instruction
/// counts, in SimPoint's use). Empty clusters are reseeded to the
/// point farthest from its centroid. Requesting more clusters than
/// points clamps `k`.
///
/// # Example
///
/// ```
/// use simpoint::kmeans;
///
/// let points = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let weights = vec![1.0; 4];
/// let result = kmeans(&points, &weights, 2, 42, 100);
/// assert_eq!(result.k(), 2);
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// ```
///
/// # Panics
///
/// Panics if `points` is empty or `weights.len() != points.len()`.
pub fn kmeans(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
    max_iters: usize,
) -> KmeansResult {
    kmeans_with_threads(
        points,
        weights,
        k,
        seed,
        max_iters,
        gtpin_par::configured_threads(),
    )
}

/// Point count below which the Lloyd assignment step stays serial:
/// under this, thread spawn cost exceeds the distance arithmetic.
pub const PAR_MIN_POINTS: usize = 1024;

/// [`kmeans`] with an explicit worker count for the Lloyd assignment
/// step (and the final assignment/SSE pass).
///
/// Only the per-point `nearest` searches are chunked across threads —
/// each is pure in the previous iteration's centroids. The centroid
/// update (the floating-point accumulation) and the k-means++ seeding
/// (a sequential RNG dependency chain) stay serial in point order, so
/// the result is bitwise identical at every thread count.
pub fn kmeans_with_threads(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
    max_iters: usize,
    threads: usize,
) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans needs at least one point");
    assert_eq!(points.len(), weights.len(), "one weight per point");
    let k = k.clamp(1, points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    let mut centroids = plus_plus_seed(points, weights, k, &mut rng);
    let mut assignments = vec![0usize; points.len()];

    let mut scratch = vec![0usize; points.len()];
    for _ in 0..max_iters {
        // Assign: each point's nearest-centroid search is independent.
        gtpin_par::parallel_fill(&mut scratch, threads, PAR_MIN_POINTS, |i| {
            nearest(&points[i], &centroids).0
        });
        let mut changed = assignments != scratch;
        std::mem::swap(&mut assignments, &mut scratch);

        // Update.
        let dims = points[0].len();
        let mut sums = vec![vec![0.0; dims]; centroids.len()];
        let mut masses = vec![0.0; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            masses[c] += weights[i];
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += weights[i] * x;
            }
        }
        // Reseed candidate for empty clusters: the point farthest
        // from its assigned (pre-update) centroid.
        let far = (0..points.len())
            .max_by(|&a, &b| {
                let da = distance2(&points[a], &centroids[assignments[a]]);
                let db = distance2(&points[b], &centroids[assignments[b]]);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("points is non-empty");
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if masses[c] > 0.0 {
                for (slot, s) in centroid.iter_mut().zip(&sums[c]) {
                    *slot = s / masses[c];
                }
            } else {
                *centroid = points[far].clone();
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // Final assignment + SSE: nearest searches fan out, the SSE
    // reduction stays serial in point order (fixed f64 fold order).
    let mut finals = vec![(0usize, 0.0f64); points.len()];
    gtpin_par::parallel_fill(&mut finals, threads, PAR_MIN_POINTS, |i| {
        nearest(&points[i], &centroids)
    });
    let mut sse = 0.0;
    for (i, &(best, d2)) in finals.iter().enumerate() {
        assignments[i] = best;
        sse += weights[i] * d2;
    }

    KmeansResult {
        assignments,
        centroids,
        sse,
    }
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = distance2(p, centroid);
        if d < best_d {
            best = c;
            best_d = d;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid weighted-random, then each next
/// centroid with probability proportional to weight × squared
/// distance from the nearest existing centroid.
fn plus_plus_seed(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let total_w: f64 = weights.iter().sum();
    let first = weighted_pick(weights, total_w, rng);
    centroids.push(points[first].clone());

    let mut d2: Vec<f64> = points.iter().map(|p| distance2(p, &centroids[0])).collect();

    while centroids.len() < k {
        let scores: Vec<f64> = d2.iter().zip(weights).map(|(d, w)| d * w).collect();
        let total: f64 = scores.iter().sum();
        let pick = if total > 0.0 {
            weighted_pick(&scores, total, rng)
        } else {
            // All points coincide with centroids; any point works.
            rng.gen_range(0..points.len())
        };
        centroids.push(points[pick].clone());
        for (i, p) in points.iter().enumerate() {
            let d = distance2(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

fn weighted_pick(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut t = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if t < *w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        let w = vec![1.0; pts.len()];
        (pts, w)
    }

    #[test]
    fn separates_two_blobs() {
        let (pts, w) = two_blobs();
        let r = kmeans(&pts, &w, 2, 7, 100);
        assert_eq!(r.k(), 2);
        // All even indices together, all odd together.
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in 0..pts.len() {
            assert_eq!(r.assignments[i], if i % 2 == 0 { a } else { b });
        }
        assert!(r.sse < 0.1, "tight blobs: sse {}", r.sse);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&pts, &[1.0, 1.0], 10, 1, 50);
        assert!(r.k() <= 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let (pts, w) = two_blobs();
        let a = kmeans(&pts, &w, 3, 42, 100);
        let b = kmeans(&pts, &w, 3, 42, 100);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn weights_pull_centroids() {
        // One heavy point and one light point, k=1: centroid near
        // the heavy point.
        let pts = vec![vec![0.0], vec![10.0]];
        let r = kmeans(&pts, &[9.0, 1.0], 1, 3, 50);
        assert!(
            (r.centroids[0][0] - 1.0).abs() < 1e-9,
            "weighted mean is 1.0"
        );
    }

    #[test]
    fn identical_points_fold_into_one_effective_cluster() {
        let pts = vec![vec![5.0, 5.0]; 8];
        let r = kmeans(&pts, &[1.0; 8], 3, 11, 50);
        assert_eq!(r.sse, 0.0);
        for a in &r.assignments {
            assert!(*a < r.k());
        }
    }

    #[test]
    fn members_partitions_all_points() {
        let (pts, w) = two_blobs();
        let r = kmeans(&pts, &w, 2, 5, 100);
        let total: usize = (0..r.k()).map(|c| r.members(c).len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        kmeans(&[], &[], 2, 0, 10);
    }
}
