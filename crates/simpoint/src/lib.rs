//! # simpoint
//!
//! A SimPoint-style phase-analysis library: the clustering machinery
//! the GT-Pin paper uses to select representative GPU simulation
//! subsets (Hamerly, Perelman, Lau, Calder — *SimPoint 3.0: Faster
//! and more flexible program phase analysis*, JILP 2005).
//!
//! The pipeline, matching the paper's Section V-A procedure:
//!
//! 1. build one sparse [`FeatureVector`] per execution interval,
//! 2. L1-normalize and randomly [`project`](project::project) to a
//!    small dense space (15 dims),
//! 3. run weighted [`kmeans`](kmeans::kmeans) for k = 1..=max_k
//!    (max 10 in all the paper's experiments),
//! 4. pick k by [`bic_score`](bic::bic_score) (smallest k within a
//!    fraction of the best), and
//! 5. return one representative interval per cluster plus its
//!    *representation ratio* — the cluster's share of all dynamic
//!    instructions ([`Selection`]).
//!
//! # Example
//!
//! ```
//! use simpoint::{select, FeatureVector, SimpointConfig};
//!
//! // Two behaviours: intervals touching key 1 vs key 2.
//! let vectors: Vec<FeatureVector> = (0..10)
//!     .map(|i| [(1 + (i % 2) as u64, 1.0)].into_iter().collect())
//!     .collect();
//! let weights = vec![100u64; 10];
//! let sel = select(&vectors, &weights, &SimpointConfig::default())?;
//! assert!(sel.k >= 2);
//! assert!((sel.total_ratio() - 1.0).abs() < 1e-9);
//! # Ok::<(), simpoint::SelectError>(())
//! ```

pub mod bic;
pub mod kmeans;
pub mod project;
#[allow(clippy::module_inception)]
pub mod simpoint;
pub mod vector;

pub use kmeans::{kmeans, kmeans_with_threads, KmeansResult, PAR_MIN_POINTS};
pub use project::{project, project_all, DEFAULT_DIMS};
pub use simpoint::{
    select, select_filtered, select_filtered_with_threads, select_with_threads, SelectError,
    Selection, SimpointConfig, SimpointPick, QUARANTINED,
};
pub use vector::FeatureVector;
