//! Random projection of sparse feature vectors to a small dense
//! space, as SimPoint 3.0 does before clustering (15 dimensions by
//! default; Hamerly et al. 2005).
//!
//! Each sparse key is deterministically hashed to a ±1 vector, so
//! the projection needs no stored matrix and is stable across runs.

use crate::vector::FeatureVector;

/// Default projected dimensionality (SimPoint's choice).
pub const DEFAULT_DIMS: usize = 15;

/// Project one sparse vector to `dims` dense dimensions under `seed`.
pub fn project(v: &FeatureVector, dims: usize, seed: u64) -> Vec<f64> {
    let mut out = vec![0.0; dims];
    for (key, value) in v.iter() {
        for (d, slot) in out.iter_mut().enumerate() {
            let h = mix(seed ^ key, d as u64);
            let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
            *slot += value * sign;
        }
    }
    out
}

/// Project a batch of vectors.
pub fn project_all(vectors: &[FeatureVector], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    vectors.iter().map(|v| project(v, dims, seed)).collect()
}

/// Squared Euclidean distance between dense points.
pub fn distance2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn mix(seed: u64, x: u64) -> u64 {
    let mut v = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 30;
    v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    v ^= v >> 27;
    v = v.wrapping_mul(0x94D0_49BB_1331_11EB);
    v ^= v >> 31;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(u64, f64)]) -> FeatureVector {
        pairs.iter().copied().collect()
    }

    #[test]
    fn projection_is_deterministic() {
        let v = vec_of(&[(1, 0.5), (7, 0.5)]);
        assert_eq!(project(&v, 15, 42), project(&v, 15, 42));
    }

    #[test]
    fn different_seeds_give_different_projections() {
        let v = vec_of(&[(1, 0.5), (7, 0.5)]);
        assert_ne!(project(&v, 15, 1), project(&v, 15, 2));
    }

    #[test]
    fn identical_vectors_project_identically() {
        let a = vec_of(&[(3, 1.0)]);
        let b = vec_of(&[(3, 1.0)]);
        assert_eq!(distance2(&project(&a, 15, 9), &project(&b, 15, 9)), 0.0);
    }

    #[test]
    fn projection_is_linear() {
        let a = vec_of(&[(3, 1.0)]);
        let b = vec_of(&[(5, 2.0)]);
        let sum = vec_of(&[(3, 1.0), (5, 2.0)]);
        let pa = project(&a, 8, 7);
        let pb = project(&b, 8, 7);
        let ps = project(&sum, 8, 7);
        for d in 0..8 {
            assert!((pa[d] + pb[d] - ps[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn distance_roughly_preserved_for_distinct_vectors() {
        // Vectors far apart in the sparse space stay apart in the
        // projected space (Johnson–Lindenstrauss, qualitatively).
        let a = vec_of(&[(1, 1.0)]);
        let b = vec_of(&[(2, 1.0)]);
        let d = distance2(&project(&a, 15, 3), &project(&b, 15, 3));
        assert!(d > 0.0, "distinct keys must not collapse");
    }
}
