//! # gen-isa
//!
//! A GEN-flavoured GPU instruction set architecture, modelled after the
//! Intel GEN ISA that GT-Pin instruments ("Fast Computational GPU Design
//! with GT-Pin", IISWC 2015).
//!
//! The crate defines:
//!
//! * [`Opcode`]s grouped into the paper's five reporting categories
//!   (moves, logic, control, computation, sends — Figure 4a),
//! * SIMD [`ExecSize`]s 1/2/4/8/16 (Figure 4b),
//! * a 128-register general register file ([`Reg`]) with a reserved
//!   high region for instrumentation scratch,
//! * [`Instruction`]s with predication, condition modifiers and
//!   [`SendDescriptor`]s for all memory traffic,
//! * [`BasicBlock`]s and [`KernelBinary`]s (control-flow graphs),
//! * a fixed-width **byte-level encoding** ([`encode`]) that binary
//!   rewriters such as GT-Pin decode, splice and re-encode, and
//! * a [`builder`] API used by the JIT and by tests.
//!
//! # Example
//!
//! ```
//! use gen_isa::builder::KernelBuilder;
//! use gen_isa::{ExecSize, Reg, Src};
//!
//! let mut b = KernelBuilder::new("saxpy");
//! let body = b.entry_block();
//! b.block_mut(body)
//!     .mul(ExecSize::S16, Reg(3), Src::Reg(Reg(1)), Src::Reg(Reg(2)))
//!     .add(ExecSize::S16, Reg(4), Src::Reg(Reg(3)), Src::Imm(7));
//! b.block_mut(body).eot();
//! let kernel = b.build().expect("well-formed kernel");
//! let bytes = kernel.encode();
//! let back = gen_isa::KernelBinary::decode(&bytes).expect("round trip");
//! assert_eq!(kernel.static_instruction_count(), back.static_instruction_count());
//! ```

pub mod builder;
pub mod disasm;
pub mod encode;
pub mod instruction;
pub mod kernel;
pub mod opcode;
pub mod register;
pub mod validate;

pub use instruction::{
    CondMod, FlagReg, Instruction, Predicate, SendDescriptor, SendOp, Src, Surface,
};
pub use kernel::{BasicBlock, BlockId, DecodedKernel, KernelBinary, KernelMetadata, Terminator};
pub use opcode::{ExecSize, Opcode, OpcodeCategory};
pub use register::{Reg, FIRST_INSTRUMENTATION_REG, NUM_GRF, NUM_LANES};
pub use validate::{validate, validate_all, ValidateError};

/// Errors produced when decoding a kernel binary from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream length is not a multiple of the instruction width.
    TruncatedStream { len: usize },
    /// An unknown opcode byte was encountered.
    UnknownOpcode { offset: usize, byte: u8 },
    /// An operand field contained an invalid encoding.
    BadOperand { offset: usize, detail: &'static str },
    /// A branch target pointed outside the instruction stream.
    BadBranchTarget { offset: usize, target: i64 },
    /// The stream did not terminate every path with EOT or return.
    MissingTerminator,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedStream { len } => {
                write!(
                    f,
                    "byte stream of length {len} is not a whole number of instructions"
                )
            }
            DecodeError::UnknownOpcode { offset, byte } => {
                write!(f, "unknown opcode byte {byte:#04x} at offset {offset}")
            }
            DecodeError::BadOperand { offset, detail } => {
                write!(f, "bad operand at offset {offset}: {detail}")
            }
            DecodeError::BadBranchTarget { offset, target } => {
                write!(
                    f,
                    "branch at offset {offset} targets instruction {target}, outside the stream"
                )
            }
            DecodeError::MissingTerminator => {
                write!(
                    f,
                    "instruction stream has a path that does not end in EOT or return"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}
