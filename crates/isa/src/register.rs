//! The general register file (GRF).

use serde::{Deserialize, Serialize};

/// Number of general registers per hardware thread, as on GEN
/// (128 GRF registers).
pub const NUM_GRF: u8 = 128;

/// SIMD lanes held by one architectural register. A register is a
/// 16-lane vector of 32-bit values; an instruction's
/// [`ExecSize`](crate::ExecSize) selects how many lanes participate.
pub const NUM_LANES: usize = 16;

/// First register of the region reserved for instrumentation scratch.
///
/// The JIT never allocates `r120..r128` to application code, so the
/// GT-Pin binary rewriter can use them for counters and message
/// payloads without spilling — this is how the tool guarantees that
/// injected code does not perturb application state (Section III-C of
/// the paper).
pub const FIRST_INSTRUMENTATION_REG: u8 = 120;

/// A general register, `r0`–`r127`.
///
/// The public field is deliberate: `Reg` is a transparent index
/// newtype in the C-struct spirit, and kernels manipulate registers
/// pervasively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The register number.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this register lies in the reserved instrumentation
    /// region (`r120..r128`).
    pub fn is_instrumentation(self) -> bool {
        self.0 >= FIRST_INSTRUMENTATION_REG
    }

    /// Whether this register exists in the GRF.
    pub fn is_valid(self) -> bool {
        self.0 < NUM_GRF
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(index: u8) -> Reg {
        Reg(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_region_is_at_the_top() {
        assert!(Reg(FIRST_INSTRUMENTATION_REG).is_instrumentation());
        assert!(Reg(NUM_GRF - 1).is_instrumentation());
        assert!(!Reg(FIRST_INSTRUMENTATION_REG - 1).is_instrumentation());
        assert!(!Reg(0).is_instrumentation());
    }

    #[test]
    fn validity_bound() {
        assert!(Reg(0).is_valid());
        assert!(Reg(NUM_GRF - 1).is_valid());
        assert!(!Reg(NUM_GRF).is_valid());
    }

    #[test]
    fn display_matches_gen_style() {
        assert_eq!(Reg(17).to_string(), "r17");
    }
}
