//! Textual disassembly of instructions and kernels.

use crate::instruction::{Instruction, SendOp, Surface};
use crate::kernel::{DecodedKernel, KernelBinary};
use crate::opcode::Opcode;

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(p) = self.pred {
            write!(f, "{p} ")?;
        }
        write!(f, "{}", self.opcode.mnemonic())?;
        if let Some(c) = self.cond {
            write!(f, "{}", c.suffix())?;
        }
        write!(f, "{}", self.exec_size)?;
        if let Some(flag) = self.flag {
            if self.opcode == Opcode::Cmp {
                write!(f, " {flag},")?;
            }
        }
        match self.dst {
            Some(r) => write!(f, " {r}")?,
            None => write!(f, " null")?,
        }
        for s in self
            .srcs
            .iter()
            .take(
                self.opcode
                    .num_sources()
                    .max(if self.opcode.is_send() { 2 } else { 0 }),
            )
        {
            write!(f, ", {s}")?;
        }
        if self.opcode.is_control() && !matches!(self.opcode, Opcode::Eot | Opcode::Ret) {
            write!(f, ", ip{:+}", self.branch_offset)?;
        }
        if let Some(d) = self.send {
            let op = match d.op {
                SendOp::Read => "read",
                SendOp::Write => "write",
                SendOp::AtomicAdd => "atomic_add",
                SendOp::ReadTimer => "timer",
            };
            let surf = match d.surface {
                Surface::Global => "global",
                Surface::TraceBuffer => "trace",
                Surface::Scratch => "scratch",
            };
            write!(f, " {{{op}.{surf}, {}B}}", d.bytes)?;
        }
        Ok(())
    }
}

/// Disassemble a flattened kernel, one instruction per line, with
/// basic-block labels.
pub fn disassemble_flat(kernel: &DecodedKernel) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "kernel {} ({} args)\n",
        kernel.name, kernel.metadata.num_args
    ));
    for b in 0..kernel.num_blocks() {
        out.push_str(&format!("bb{b}:\n"));
        for (i, instr) in kernel.block_instrs(b).iter().enumerate() {
            let idx = kernel.bb_starts[b] as usize + i;
            out.push_str(&format!("  {idx:4}  {instr}\n"));
        }
    }
    out
}

/// Disassemble a structured kernel binary.
pub fn disassemble(kernel: &KernelBinary) -> String {
    disassemble_flat(&kernel.flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instruction::{CondMod, FlagReg, Src};
    use crate::kernel::Terminator;
    use crate::opcode::ExecSize;
    use crate::register::Reg;

    #[test]
    fn disassembly_mentions_every_mnemonic_used() {
        let mut b = KernelBuilder::new("loop");
        let head = b.entry_block();
        let exit = b.new_block();
        b.block_mut(head)
            .add(ExecSize::S16, Reg(1), Src::Reg(Reg(1)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(1)),
                Src::Imm(8),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let text = disassemble(&b.build().unwrap());
        assert!(text.contains("add"), "{text}");
        assert!(text.contains("cmp.lt"), "{text}");
        assert!(text.contains("brc"), "{text}");
        assert!(text.contains("eot"), "{text}");
        assert!(text.contains("bb0:"), "{text}");
        assert!(
            text.contains("ip-3"),
            "negative branch offset rendered: {text}"
        );
    }

    #[test]
    fn send_rendering_includes_descriptor() {
        let mut b = KernelBuilder::new("mem");
        let e = b.entry_block();
        b.block_mut(e)
            .send_read(ExecSize::S8, Reg(4), Reg(2), crate::Surface::Global, 64)
            .eot();
        let text = disassemble(&b.build().unwrap());
        assert!(text.contains("{read.global, 64B}"), "{text}");
    }

    #[test]
    fn predicate_prefix_rendered() {
        let mut i = Instruction::new(crate::Opcode::Mov, ExecSize::S8);
        i.dst = Some(Reg(3));
        i.srcs[0] = Src::Imm(9);
        i.pred = Some(crate::Predicate {
            flag: FlagReg::F1,
            invert: true,
        });
        assert!(i.to_string().starts_with("(-f1) mov"), "{i}");
    }
}
