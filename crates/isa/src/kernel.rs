//! Kernel binaries: basic blocks, control flow, and the flattened
//! instruction-stream view that binary tools operate on.

use serde::{Deserialize, Serialize};

use crate::instruction::{FlagReg, Instruction, Predicate};
use crate::opcode::{ExecSize, Opcode};
use crate::{encode, DecodeError};

/// Identifies a basic block within one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Fall through to the target block (no instruction emitted when
    /// the target is the next block in layout order).
    FallThrough(BlockId),
    /// Unconditional jump (`jmpi`).
    Jump(BlockId),
    /// Conditional branch (`brc`): to `taken` when the flag (possibly
    /// inverted) holds in lane 0, otherwise to `fallthrough`.
    CondJump {
        /// Flag register consulted.
        flag: FlagReg,
        /// Branch on the cleared flag instead.
        invert: bool,
        /// Target when the branch fires.
        taken: BlockId,
        /// Target otherwise.
        fallthrough: BlockId,
    },
    /// Return from a subroutine (`ret`).
    Return,
    /// End of thread (`eot`) — the kernel is done for this hardware
    /// thread.
    Eot,
}

impl Terminator {
    /// Successor blocks in evaluation order.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::FallThrough(b) | Terminator::Jump(b) => vec![b],
            Terminator::CondJump {
                taken, fallthrough, ..
            } => vec![taken, fallthrough],
            Terminator::Return | Terminator::Eot => Vec::new(),
        }
    }
}

/// A straight-line run of instructions with a single [`Terminator`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// This block's id (its index in the kernel layout).
    pub id: BlockId,
    /// The block body, excluding control-flow instructions (those are
    /// produced from `term` when the kernel is flattened).
    pub instrs: Vec<Instruction>,
    /// How control leaves the block.
    pub term: Terminator,
}

/// Kernel-level metadata carried in the binary header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelMetadata {
    /// Number of kernel arguments.
    pub num_args: u8,
    /// Highest register index (exclusive) the application code may
    /// touch. The JIT keeps this at or below
    /// [`FIRST_INSTRUMENTATION_REG`](crate::FIRST_INSTRUMENTATION_REG)
    /// so the rewriter has free scratch registers.
    pub max_app_reg: u8,
    /// Set once a binary rewriter has instrumented the kernel.
    pub instrumented: bool,
}

impl Default for KernelMetadata {
    fn default() -> KernelMetadata {
        KernelMetadata {
            num_args: 0,
            max_app_reg: crate::register::FIRST_INSTRUMENTATION_REG,
            instrumented: false,
        }
    }
}

/// A machine-specific kernel binary: what the GPU driver's JIT emits
/// and what GT-Pin's binary rewriter consumes and produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelBinary {
    /// Kernel name (the OpenCL kernel function name).
    pub name: String,
    /// Basic blocks in layout order; the entry is block 0.
    pub blocks: Vec<BasicBlock>,
    /// Header metadata.
    pub metadata: KernelMetadata,
}

impl KernelBinary {
    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Static instruction count of the *encoded* form — what a binary
    /// profiler sees, including lowered control-flow instructions.
    pub fn static_instruction_count(&self) -> usize {
        self.flatten().instrs.len()
    }

    /// Flatten to the executable instruction-stream view, lowering
    /// terminators to `jmpi`/`brc`/`ret`/`eot` with relative offsets.
    pub fn flatten(&self) -> DecodedKernel {
        flatten(self)
    }

    /// Encode to the byte-level binary format.
    pub fn encode(&self) -> Vec<u8> {
        encode::encode_kernel(self)
    }

    /// Decode a kernel binary from bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the byte stream is truncated,
    /// contains unknown opcodes or operand encodings, or has branch
    /// targets outside the stream.
    pub fn decode(bytes: &[u8]) -> Result<KernelBinary, DecodeError> {
        encode::decode_kernel(bytes)
    }
}

/// The flattened, executable view of a kernel: a linear instruction
/// stream plus basic-block leader offsets.
///
/// This is the representation both the functional executor and the
/// detailed simulator run, and the one whose length defines all
/// instruction counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedKernel {
    /// Kernel name.
    pub name: String,
    /// Header metadata.
    pub metadata: KernelMetadata,
    /// The instruction stream.
    pub instrs: Vec<Instruction>,
    /// Sorted indices of basic-block leaders (always starts with 0
    /// for non-empty kernels).
    pub bb_starts: Vec<u32>,
}

impl DecodedKernel {
    /// Number of basic blocks in the stream.
    pub fn num_blocks(&self) -> usize {
        self.bb_starts.len()
    }

    /// The block index containing instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is past the end of the stream.
    pub fn block_of(&self, idx: usize) -> usize {
        assert!(
            idx < self.instrs.len(),
            "instruction index {idx} out of range"
        );
        match self.bb_starts.binary_search(&(idx as u32)) {
            Ok(b) => b,
            Err(b) => b - 1,
        }
    }

    /// The half-open instruction range of block `block`.
    pub fn block_range(&self, block: usize) -> std::ops::Range<usize> {
        let start = self.bb_starts[block] as usize;
        let end = self
            .bb_starts
            .get(block + 1)
            .map(|&s| s as usize)
            .unwrap_or(self.instrs.len());
        start..end
    }

    /// Instructions of block `block`.
    pub fn block_instrs(&self, block: usize) -> &[Instruction] {
        &self.instrs[self.block_range(block)]
    }
}

fn flatten(kernel: &KernelBinary) -> DecodedKernel {
    // First pass: compute each block's start index in the stream.
    // A terminator contributes 0, 1 or 2 control instructions; the
    // count for CondJump depends on whether the fallthrough is the
    // next block, and FallThrough contributes one jmpi when its
    // target is not next.
    let n = kernel.blocks.len();
    let mut starts = Vec::with_capacity(n);
    let mut cursor = 0usize;
    for (i, block) in kernel.blocks.iter().enumerate() {
        starts.push(cursor as u32);
        cursor += block.instrs.len() + term_len(&block.term, i, n, |b| b.index());
    }
    let total = cursor;

    // Second pass: emit.
    let mut instrs = Vec::with_capacity(total);
    for (i, block) in kernel.blocks.iter().enumerate() {
        instrs.extend(block.instrs.iter().copied());
        let next_is = |b: BlockId| b.index() == i + 1;
        let offset_to = |b: BlockId, at: usize| starts[b.index()] as i64 - (at as i64 + 1);
        match block.term {
            Terminator::FallThrough(t) => {
                if !next_is(t) {
                    let at = instrs.len();
                    instrs.push(jmpi(offset_to(t, at)));
                }
            }
            Terminator::Jump(t) => {
                let at = instrs.len();
                instrs.push(jmpi(offset_to(t, at)));
            }
            Terminator::CondJump {
                flag,
                invert,
                taken,
                fallthrough,
            } => {
                let at = instrs.len();
                instrs.push(brc(flag, invert, offset_to(taken, at)));
                if !next_is(fallthrough) {
                    let at = instrs.len();
                    instrs.push(jmpi(offset_to(fallthrough, at)));
                }
            }
            Terminator::Return => instrs.push(Instruction::new(Opcode::Ret, ExecSize::S1)),
            Terminator::Eot => instrs.push(Instruction::new(Opcode::Eot, ExecSize::S1)),
        }
    }
    debug_assert_eq!(instrs.len(), total);

    DecodedKernel {
        name: kernel.name.clone(),
        metadata: kernel.metadata,
        instrs,
        bb_starts: starts,
    }
}

fn term_len(
    term: &Terminator,
    block_index: usize,
    _num_blocks: usize,
    index_of: impl Fn(BlockId) -> usize,
) -> usize {
    match *term {
        Terminator::FallThrough(t) => usize::from(index_of(t) != block_index + 1),
        Terminator::Jump(_) => 1,
        Terminator::CondJump { fallthrough, .. } => {
            1 + usize::from(index_of(fallthrough) != block_index + 1)
        }
        Terminator::Return | Terminator::Eot => 1,
    }
}

fn jmpi(offset: i64) -> Instruction {
    let mut i = Instruction::new(Opcode::Jmpi, ExecSize::S1);
    i.branch_offset = offset as i32;
    i
}

fn brc(flag: FlagReg, invert: bool, offset: i64) -> Instruction {
    let mut i = Instruction::new(Opcode::Brc, ExecSize::S1);
    i.flag = Some(flag);
    i.pred = Some(Predicate { flag, invert });
    i.branch_offset = offset as i32;
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instruction::Src;
    use crate::register::Reg;

    fn two_block_kernel() -> KernelBinary {
        let mut b = KernelBuilder::new("k");
        let entry = b.entry_block();
        let exit = b.new_block();
        b.block_mut(entry)
            .add(ExecSize::S8, Reg(1), Src::Reg(Reg(0)), Src::Imm(1));
        b.set_terminator(entry, Terminator::FallThrough(exit));
        b.block_mut(exit).eot();
        b.build().unwrap()
    }

    #[test]
    fn fallthrough_to_next_block_emits_no_branch() {
        let k = two_block_kernel();
        let flat = k.flatten();
        // 1 add + 1 eot; the fallthrough is elided.
        assert_eq!(flat.instrs.len(), 2);
        assert_eq!(flat.bb_starts, vec![0, 1]);
    }

    #[test]
    fn jump_always_emits_jmpi() {
        let mut b = KernelBuilder::new("k");
        let entry = b.entry_block();
        let exit = b.new_block();
        b.set_terminator(entry, Terminator::Jump(exit));
        b.block_mut(exit).eot();
        let flat = b.build().unwrap().flatten();
        assert_eq!(flat.instrs.len(), 2);
        assert_eq!(flat.instrs[0].opcode, Opcode::Jmpi);
        assert_eq!(
            flat.instrs[0].branch_offset, 0,
            "jump to the next instruction"
        );
    }

    #[test]
    fn backward_branch_offset_is_negative() {
        // loop: body -> cond-jump back to loop head.
        let mut b = KernelBuilder::new("k");
        let head = b.entry_block();
        let exit = b.new_block();
        b.block_mut(head)
            .add(ExecSize::S1, Reg(1), Src::Reg(Reg(1)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                crate::CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(1)),
                Src::Imm(10),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let flat = b.build().unwrap().flatten();
        // add, cmp, brc, eot
        assert_eq!(flat.instrs.len(), 4);
        let brc = &flat.instrs[2];
        assert_eq!(brc.opcode, Opcode::Brc);
        assert_eq!(brc.branch_offset, -3, "branch back over add+cmp+brc");
    }

    #[test]
    fn block_of_maps_instructions_to_blocks() {
        let k = two_block_kernel();
        let flat = k.flatten();
        assert_eq!(flat.block_of(0), 0);
        assert_eq!(flat.block_of(1), 1);
        assert_eq!(flat.block_range(0), 0..1);
        assert_eq!(flat.block_range(1), 1..2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_of_rejects_out_of_range() {
        let k = two_block_kernel();
        let flat = k.flatten();
        let _ = flat.block_of(99);
    }

    #[test]
    fn static_instruction_count_counts_lowered_control() {
        let k = two_block_kernel();
        assert_eq!(k.static_instruction_count(), 2);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert!(Terminator::Eot.successors().is_empty());
        let cj = Terminator::CondJump {
            flag: FlagReg::F1,
            invert: true,
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        assert_eq!(cj.successors(), vec![BlockId(1), BlockId(2)]);
    }
}
