//! Opcodes and SIMD execution sizes.

use serde::{Deserialize, Serialize};

/// The five opcode categories the paper reports in Figure 4a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpcodeCategory {
    /// `mov`/`sel` — register movement, vector loads of immediates.
    Move,
    /// `and`, `or`, `xor`, shifts, `cmp`, ... (Figure 4a "Logic").
    Logic,
    /// Branches, calls, returns, thread termination.
    Control,
    /// Integer and floating-point arithmetic including extended math.
    Computation,
    /// `send` — all memory communication between threads and EUs
    /// in the GEN ISA goes through send messages.
    Send,
}

impl OpcodeCategory {
    /// All categories, in the paper's reporting order.
    pub const ALL: [OpcodeCategory; 5] = [
        OpcodeCategory::Move,
        OpcodeCategory::Logic,
        OpcodeCategory::Control,
        OpcodeCategory::Computation,
        OpcodeCategory::Send,
    ];

    /// Position of this category in [`OpcodeCategory::ALL`] — the
    /// index used by per-category count arrays.
    pub fn index(self) -> usize {
        match self {
            OpcodeCategory::Move => 0,
            OpcodeCategory::Logic => 1,
            OpcodeCategory::Control => 2,
            OpcodeCategory::Computation => 3,
            OpcodeCategory::Send => 4,
        }
    }

    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpcodeCategory::Move => "moves",
            OpcodeCategory::Logic => "logic",
            OpcodeCategory::Control => "control",
            OpcodeCategory::Computation => "computation",
            OpcodeCategory::Send => "sends",
        }
    }
}

impl std::fmt::Display for OpcodeCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

macro_rules! opcodes {
    ($( $variant:ident = $byte:expr, $mnemonic:expr, $category:ident, $srcs:expr ; )+) => {
        /// A GEN-flavoured opcode.
        ///
        /// Each opcode carries a stable byte encoding (used by
        /// [`crate::encode`]), a mnemonic, a reporting
        /// [`OpcodeCategory`], and its source-operand arity.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[repr(u8)]
        pub enum Opcode {
            $( $variant = $byte, )+
        }

        impl Opcode {
            /// Every opcode in the ISA.
            pub const ALL: &'static [Opcode] = &[ $( Opcode::$variant, )+ ];

            /// The stable one-byte encoding of this opcode.
            pub fn to_byte(self) -> u8 {
                self as u8
            }

            /// Decode an opcode from its byte encoding.
            pub fn from_byte(byte: u8) -> Option<Opcode> {
                match byte {
                    $( $byte => Some(Opcode::$variant), )+
                    _ => None,
                }
            }

            /// Assembly mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$variant => $mnemonic, )+
                }
            }

            /// The category this opcode is reported under in
            /// instruction-mix profiles (Figure 4a).
            pub fn category(self) -> OpcodeCategory {
                match self {
                    $( Opcode::$variant => OpcodeCategory::$category, )+
                }
            }

            /// Number of source operands this opcode consumes (0–3).
            pub fn num_sources(self) -> usize {
                match self {
                    $( Opcode::$variant => $srcs, )+
                }
            }
        }
    };
}

opcodes! {
    // Moves.
    Mov   = 0x01, "mov",   Move, 1;
    Sel   = 0x02, "sel",   Move, 2;
    // Logic.
    And   = 0x10, "and",   Logic, 2;
    Or    = 0x11, "or",    Logic, 2;
    Xor   = 0x12, "xor",   Logic, 2;
    Not   = 0x13, "not",   Logic, 1;
    Shl   = 0x14, "shl",   Logic, 2;
    Shr   = 0x15, "shr",   Logic, 2;
    Asr   = 0x16, "asr",   Logic, 2;
    Cmp   = 0x17, "cmp",   Logic, 2;
    // Control.
    Jmpi  = 0x20, "jmpi",  Control, 0;
    Brc   = 0x21, "brc",   Control, 0;
    Call  = 0x22, "call",  Control, 0;
    Ret   = 0x23, "ret",   Control, 0;
    Eot   = 0x24, "eot",   Control, 0;
    Nop   = 0x25, "nop",   Control, 0;
    // Computation.
    Add   = 0x30, "add",   Computation, 2;
    Sub   = 0x31, "sub",   Computation, 2;
    Mul   = 0x32, "mul",   Computation, 2;
    Mad   = 0x33, "mad",   Computation, 3;
    Min   = 0x34, "min",   Computation, 2;
    Max   = 0x35, "max",   Computation, 2;
    Avg   = 0x36, "avg",   Computation, 2;
    Frc   = 0x37, "frc",   Computation, 1;
    Rndd  = 0x38, "rndd",  Computation, 1;
    Inv   = 0x39, "math.inv",  Computation, 1;
    Sqrt  = 0x3A, "math.sqrt", Computation, 1;
    Exp   = 0x3B, "math.exp",  Computation, 1;
    Log   = 0x3C, "math.log",  Computation, 1;
    Sin   = 0x3D, "math.sin",  Computation, 1;
    Cos   = 0x3E, "math.cos",  Computation, 1;
    Dp4   = 0x3F, "dp4",   Computation, 2;
    Lrp   = 0x40, "lrp",   Computation, 3;
    // Sends.
    Send  = 0x50, "send",  Send, 1;
    Sendc = 0x51, "sendc", Send, 1;
}

impl Opcode {
    /// Whether this opcode transfers control.
    pub fn is_control(self) -> bool {
        self.category() == OpcodeCategory::Control && self != Opcode::Nop
    }

    /// Whether this opcode is a send (memory) message.
    pub fn is_send(self) -> bool {
        self.category() == OpcodeCategory::Send
    }

    /// Whether this opcode dispatches to the extended-math pipeline
    /// (reciprocal, square root and the transcendentals), which on
    /// GEN hardware issues at a fraction of the plain FPU rate.
    pub fn is_extended_math(self) -> bool {
        matches!(
            self,
            Opcode::Inv | Opcode::Sqrt | Opcode::Exp | Opcode::Log | Opcode::Sin | Opcode::Cos
        )
    }

    /// Evaluate a unary ALU operation on one 32-bit lane.
    ///
    /// Control and send opcodes are not ALU operations and return `a`
    /// unchanged; callers route them through the execution engine
    /// instead. Transcendental opcodes operate on the value as a fixed
    /// point fraction so that execution stays in `u32` lanes.
    pub fn eval_unary(self, a: u32) -> u32 {
        match self {
            Opcode::Mov => a,
            Opcode::Not => !a,
            Opcode::Frc => a & 0xFFFF,
            Opcode::Rndd => a & !0xFFFF,
            Opcode::Inv => u32::MAX.checked_div(a).unwrap_or(u32::MAX),
            Opcode::Sqrt => (a as f64).sqrt() as u32,
            Opcode::Exp => a.rotate_left(3) ^ 0x9E37_79B9,
            Opcode::Log => 31 - a.max(1).leading_zeros(),
            Opcode::Sin => a.rotate_left(7).wrapping_mul(0x85EB_CA6B),
            Opcode::Cos => a.rotate_right(5).wrapping_mul(0xC2B2_AE35),
            _ => a,
        }
    }

    /// Evaluate a binary ALU operation on one 32-bit lane.
    pub fn eval_binary(self, a: u32, b: u32) -> u32 {
        match self {
            Opcode::And => a & b,
            Opcode::Or => a | b,
            Opcode::Xor => a ^ b,
            Opcode::Shl => a.wrapping_shl(b & 31),
            Opcode::Shr => a.wrapping_shr(b & 31),
            Opcode::Asr => ((a as i32).wrapping_shr(b & 31)) as u32,
            Opcode::Add => a.wrapping_add(b),
            Opcode::Sub => a.wrapping_sub(b),
            Opcode::Mul => a.wrapping_mul(b),
            Opcode::Min => a.min(b),
            Opcode::Max => a.max(b),
            Opcode::Avg => (a as u64 + b as u64).div_ceil(2) as u32,
            Opcode::Dp4 => a.wrapping_mul(b).rotate_left(4),
            Opcode::Sel => a,
            _ => a,
        }
    }

    /// Evaluate a ternary ALU operation on one 32-bit lane.
    pub fn eval_ternary(self, a: u32, b: u32, c: u32) -> u32 {
        match self {
            Opcode::Mad => a.wrapping_mul(b).wrapping_add(c),
            Opcode::Lrp => a
                .wrapping_mul(b)
                .wrapping_add((!a).wrapping_mul(c))
                .rotate_right(8),
            _ => a,
        }
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// SIMD execution width of an instruction (Figure 4b of the paper:
/// widths 1, 2, 4, 8 and 16 are tracked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ExecSize {
    /// Scalar.
    S1 = 0,
    /// 2-wide (never used by the paper's applications).
    S2 = 1,
    /// 4-wide.
    S4 = 2,
    /// 8-wide.
    S8 = 3,
    /// 16-wide.
    S16 = 4,
}

impl ExecSize {
    /// All widths in ascending order.
    pub const ALL: [ExecSize; 5] = [
        ExecSize::S1,
        ExecSize::S2,
        ExecSize::S4,
        ExecSize::S8,
        ExecSize::S16,
    ];

    /// Position of this width in [`ExecSize::ALL`] — the index used
    /// by per-width count arrays (the discriminant doubles as it).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of SIMD lanes this width covers.
    pub fn lanes(self) -> usize {
        match self {
            ExecSize::S1 => 1,
            ExecSize::S2 => 2,
            ExecSize::S4 => 4,
            ExecSize::S8 => 8,
            ExecSize::S16 => 16,
        }
    }

    /// Encoding used in instruction bytes.
    pub fn to_code(self) -> u8 {
        self as u8
    }

    /// Decode from the instruction-byte code.
    pub fn from_code(code: u8) -> Option<ExecSize> {
        match code {
            0 => Some(ExecSize::S1),
            1 => Some(ExecSize::S2),
            2 => Some(ExecSize::S4),
            3 => Some(ExecSize::S8),
            4 => Some(ExecSize::S16),
            _ => None,
        }
    }

    /// The width that covers `lanes` lanes, if it is a legal width.
    pub fn from_lanes(lanes: usize) -> Option<ExecSize> {
        match lanes {
            1 => Some(ExecSize::S1),
            2 => Some(ExecSize::S2),
            4 => Some(ExecSize::S4),
            8 => Some(ExecSize::S8),
            16 => Some(ExecSize::S16),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({})", self.lanes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_bytes_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op.to_byte()), Some(op), "{op}");
        }
    }

    #[test]
    fn opcode_bytes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.to_byte()), "duplicate byte for {op}");
        }
    }

    #[test]
    fn unknown_opcode_byte_rejected() {
        assert_eq!(Opcode::from_byte(0xFF), None);
        assert_eq!(Opcode::from_byte(0x00), None);
    }

    #[test]
    fn every_category_is_populated() {
        for cat in OpcodeCategory::ALL {
            assert!(
                Opcode::ALL.iter().any(|o| o.category() == cat),
                "no opcode in category {cat}"
            );
        }
    }

    #[test]
    fn category_and_width_indices_match_all_order() {
        for (i, cat) in OpcodeCategory::ALL.into_iter().enumerate() {
            assert_eq!(cat.index(), i, "{cat}");
        }
        for (i, w) in ExecSize::ALL.into_iter().enumerate() {
            assert_eq!(w.index(), i, "{w}");
        }
    }

    #[test]
    fn send_and_control_classification() {
        assert!(Opcode::Send.is_send());
        assert!(Opcode::Sendc.is_send());
        assert!(!Opcode::Add.is_send());
        assert!(Opcode::Jmpi.is_control());
        assert!(Opcode::Eot.is_control());
        assert!(!Opcode::Nop.is_control(), "nop does not transfer control");
    }

    #[test]
    fn exec_size_codes_round_trip() {
        for w in ExecSize::ALL {
            assert_eq!(ExecSize::from_code(w.to_code()), Some(w));
            assert_eq!(ExecSize::from_lanes(w.lanes()), Some(w));
        }
        assert_eq!(ExecSize::from_code(9), None);
        assert_eq!(ExecSize::from_lanes(3), None);
    }

    #[test]
    fn alu_semantics_spot_checks() {
        assert_eq!(Opcode::Add.eval_binary(2, 3), 5);
        assert_eq!(Opcode::Sub.eval_binary(2, 3), u32::MAX);
        assert_eq!(Opcode::And.eval_binary(0b1100, 0b1010), 0b1000);
        assert_eq!(
            Opcode::Shl.eval_binary(1, 35),
            8,
            "shift counts are masked to 5 bits"
        );
        assert_eq!(Opcode::Not.eval_unary(0), u32::MAX);
        assert_eq!(Opcode::Mad.eval_ternary(2, 3, 4), 10);
        assert_eq!(
            Opcode::Inv.eval_unary(0),
            u32::MAX,
            "inverse of zero saturates"
        );
        assert_eq!(Opcode::Log.eval_unary(0), 0, "log clamps its argument to 1");
    }

    #[test]
    fn num_sources_matches_arity_usage() {
        assert_eq!(Opcode::Mov.num_sources(), 1);
        assert_eq!(Opcode::Add.num_sources(), 2);
        assert_eq!(Opcode::Mad.num_sources(), 3);
        assert_eq!(Opcode::Eot.num_sources(), 0);
    }
}
