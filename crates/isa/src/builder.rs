//! A fluent builder for kernel binaries, used by the GPU driver's
//! JIT and by tests.

use crate::instruction::{CondMod, FlagReg, Instruction, SendDescriptor, SendOp, Src, Surface};
use crate::kernel::{BasicBlock, BlockId, KernelBinary, KernelMetadata, Terminator};
use crate::opcode::{ExecSize, Opcode};
use crate::register::Reg;
use crate::validate::{validate, ValidateError};

/// Builds one basic block. Obtained from
/// [`KernelBuilder::block_mut`]; all emit methods return `&mut Self`
/// for chaining.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    instrs: Vec<Instruction>,
    term: Option<Terminator>,
}

impl BlockBuilder {
    /// Append a raw instruction.
    pub fn raw(&mut self, instr: Instruction) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    fn alu(&mut self, opcode: Opcode, exec_size: ExecSize, dst: Reg, srcs: [Src; 3]) -> &mut Self {
        let mut i = Instruction::new(opcode, exec_size);
        i.dst = Some(dst);
        i.srcs = srcs;
        self.raw(i)
    }

    /// Emit a unary ALU operation.
    pub fn alu1(&mut self, opcode: Opcode, w: ExecSize, dst: Reg, a: Src) -> &mut Self {
        self.alu(opcode, w, dst, [a, Src::Null, Src::Null])
    }

    /// Emit a binary ALU operation.
    pub fn alu2(&mut self, opcode: Opcode, w: ExecSize, dst: Reg, a: Src, b: Src) -> &mut Self {
        self.alu(opcode, w, dst, [a, b, Src::Null])
    }

    /// Emit a ternary ALU operation.
    pub fn alu3(
        &mut self,
        opcode: Opcode,
        w: ExecSize,
        dst: Reg,
        a: Src,
        b: Src,
        c: Src,
    ) -> &mut Self {
        self.alu(opcode, w, dst, [a, b, c])
    }

    /// `mov dst, a`
    pub fn mov(&mut self, w: ExecSize, dst: Reg, a: Src) -> &mut Self {
        self.alu1(Opcode::Mov, w, dst, a)
    }

    /// `add dst, a, b`
    pub fn add(&mut self, w: ExecSize, dst: Reg, a: Src, b: Src) -> &mut Self {
        self.alu2(Opcode::Add, w, dst, a, b)
    }

    /// `mul dst, a, b`
    pub fn mul(&mut self, w: ExecSize, dst: Reg, a: Src, b: Src) -> &mut Self {
        self.alu2(Opcode::Mul, w, dst, a, b)
    }

    /// `mad dst, a, b, c` (dst = a*b + c)
    pub fn mad(&mut self, w: ExecSize, dst: Reg, a: Src, b: Src, c: Src) -> &mut Self {
        self.alu3(Opcode::Mad, w, dst, a, b, c)
    }

    /// `cmp.<cond> flag, a, b`
    pub fn cmp(&mut self, w: ExecSize, cond: CondMod, flag: FlagReg, a: Src, b: Src) -> &mut Self {
        let mut i = Instruction::new(Opcode::Cmp, w);
        i.cond = Some(cond);
        i.flag = Some(flag);
        i.srcs = [a, b, Src::Null];
        self.raw(i)
    }

    /// `send.read dst, addr` — read `bytes` from `surface`.
    pub fn send_read(
        &mut self,
        w: ExecSize,
        dst: Reg,
        addr: Reg,
        surface: Surface,
        bytes: u32,
    ) -> &mut Self {
        let mut i = Instruction::new(Opcode::Send, w);
        i.dst = Some(dst);
        i.srcs[0] = Src::Reg(addr);
        i.send = Some(SendDescriptor {
            op: SendOp::Read,
            surface,
            bytes,
        });
        self.raw(i)
    }

    /// `send.write addr ← data` — write `bytes` to `surface`.
    pub fn send_write(
        &mut self,
        w: ExecSize,
        addr: Reg,
        data: Reg,
        surface: Surface,
        bytes: u32,
    ) -> &mut Self {
        let mut i = Instruction::new(Opcode::Send, w);
        i.dst = None;
        i.srcs[0] = Src::Reg(addr);
        i.srcs[1] = Src::Reg(data);
        i.send = Some(SendDescriptor {
            op: SendOp::Write,
            surface,
            bytes,
        });
        self.raw(i)
    }

    /// `send.atomic_add [addr] += data` — the GT-Pin counter primitive.
    pub fn atomic_add(&mut self, addr: Reg, data: Reg, surface: Surface) -> &mut Self {
        let mut i = Instruction::new(Opcode::Send, ExecSize::S1);
        i.dst = None;
        i.srcs[0] = Src::Reg(addr);
        i.srcs[1] = Src::Reg(data);
        i.send = Some(SendDescriptor {
            op: SendOp::AtomicAdd,
            surface,
            bytes: 4,
        });
        self.raw(i)
    }

    /// `send.timer dst` — read the event timer register.
    pub fn read_timer(&mut self, dst: Reg) -> &mut Self {
        let mut i = Instruction::new(Opcode::Send, ExecSize::S1);
        i.dst = Some(dst);
        i.send = Some(SendDescriptor {
            op: SendOp::ReadTimer,
            surface: Surface::Scratch,
            bytes: 8,
        });
        self.raw(i)
    }

    /// Terminate the block (and the hardware thread) with `eot`.
    pub fn eot(&mut self) -> &mut Self {
        self.term = Some(Terminator::Eot);
        self
    }

    /// Terminate the block with `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.term = Some(Terminator::Return);
        self
    }
}

/// Incrementally builds a [`KernelBinary`].
///
/// Blocks without an explicit terminator fall through to the next
/// block in creation order; the final block must terminate
/// explicitly (usually [`BlockBuilder::eot`]).
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    blocks: Vec<BlockBuilder>,
    num_args: u8,
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            blocks: Vec::new(),
            num_args: 0,
        }
    }

    /// The entry block (block 0), created on first use.
    pub fn entry_block(&mut self) -> BlockId {
        if self.blocks.is_empty() {
            self.blocks.push(BlockBuilder::default());
        }
        BlockId(0)
    }

    /// Append a fresh block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        self.entry_block();
        self.blocks.push(BlockBuilder::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Mutable access to a block's builder.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this builder.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BlockBuilder {
        &mut self.blocks[id.index()]
    }

    /// Set a block's terminator explicitly.
    pub fn set_terminator(&mut self, id: BlockId, term: Terminator) {
        self.blocks[id.index()].term = Some(term);
    }

    /// Declare the number of kernel arguments.
    pub fn set_num_args(&mut self, n: u8) -> &mut Self {
        self.num_args = n;
        self
    }

    /// Finish building, validating the result.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if the kernel is malformed: bad
    /// registers, more than one immediate per instruction, missing
    /// final terminator, instrumentation registers touched by
    /// application code, and so on.
    pub fn build(self) -> Result<KernelBinary, ValidateError> {
        let n = self.blocks.len();
        if n == 0 {
            return Err(ValidateError::EmptyKernel);
        }
        let mut max_reg = 0u8;
        let mut blocks = Vec::with_capacity(n);
        for (i, bb) in self.blocks.into_iter().enumerate() {
            for instr in &bb.instrs {
                for r in instr.reads().chain(instr.writes()) {
                    max_reg = max_reg.max(r.0.saturating_add(1));
                }
            }
            let term = match bb.term {
                Some(t) => t,
                None if i + 1 < n => Terminator::FallThrough(BlockId(i as u32 + 1)),
                None => return Err(ValidateError::MissingFinalTerminator),
            };
            blocks.push(BasicBlock {
                id: BlockId(i as u32),
                instrs: bb.instrs,
                term,
            });
        }
        let kernel = KernelBinary {
            name: self.name,
            blocks,
            metadata: KernelMetadata {
                num_args: self.num_args,
                max_app_reg: max_reg.max(1),
                instrumented: false,
            },
        };
        validate(&kernel)?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_fallthrough_chain() {
        let mut b = KernelBuilder::new("chain");
        let e = b.entry_block();
        let m = b.new_block();
        let x = b.new_block();
        b.block_mut(e)
            .add(ExecSize::S8, Reg(1), Src::Reg(Reg(0)), Src::Imm(1));
        b.block_mut(m)
            .add(ExecSize::S8, Reg(2), Src::Reg(Reg(1)), Src::Imm(1));
        b.block_mut(x).eot();
        let k = b.build().unwrap();
        assert_eq!(k.blocks[0].term, Terminator::FallThrough(m));
        assert_eq!(k.blocks[1].term, Terminator::FallThrough(x));
        assert_eq!(k.blocks[2].term, Terminator::Eot);
    }

    #[test]
    fn missing_final_terminator_is_an_error() {
        let mut b = KernelBuilder::new("bad");
        let e = b.entry_block();
        b.block_mut(e)
            .add(ExecSize::S8, Reg(1), Src::Reg(Reg(0)), Src::Imm(1));
        assert_eq!(
            b.build().unwrap_err(),
            ValidateError::MissingFinalTerminator
        );
    }

    #[test]
    fn empty_kernel_is_an_error() {
        assert_eq!(
            KernelBuilder::new("empty").build().unwrap_err(),
            ValidateError::EmptyKernel
        );
    }

    #[test]
    fn max_app_reg_tracks_register_usage() {
        let mut b = KernelBuilder::new("regs");
        let e = b.entry_block();
        b.block_mut(e)
            .add(ExecSize::S8, Reg(42), Src::Reg(Reg(3)), Src::Imm(1))
            .eot();
        let k = b.build().unwrap();
        assert_eq!(k.metadata.max_app_reg, 43);
    }

    #[test]
    fn app_code_may_not_use_instrumentation_registers() {
        let mut b = KernelBuilder::new("regs");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S1, Reg(125), Src::Imm(0))
            .eot();
        assert!(matches!(
            b.build().unwrap_err(),
            ValidateError::InstrumentationRegUsed { .. }
        ));
    }

    #[test]
    fn send_helpers_produce_descriptors() {
        let mut b = KernelBuilder::new("mem");
        let e = b.entry_block();
        b.block_mut(e)
            .send_read(ExecSize::S16, Reg(4), Reg(2), Surface::Global, 64)
            .send_write(ExecSize::S16, Reg(2), Reg(4), Surface::Global, 64)
            .eot();
        let k = b.build().unwrap();
        let flat = k.flatten();
        assert_eq!(flat.instrs[0].app_bytes_read(), 64);
        assert_eq!(flat.instrs[1].app_bytes_written(), 64);
    }
}
