//! Structural validation of kernel binaries.

use crate::instruction::Src;
use crate::kernel::{KernelBinary, Terminator};
use crate::opcode::Opcode;
use crate::register::{Reg, FIRST_INSTRUMENTATION_REG};

/// Problems [`validate`] can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The kernel has no blocks.
    EmptyKernel,
    /// The last block has no explicit terminator.
    MissingFinalTerminator,
    /// A register operand is out of range.
    BadRegister { block: u32, instr: usize, reg: Reg },
    /// Application code used a reserved instrumentation register.
    InstrumentationRegUsed { block: u32, instr: usize, reg: Reg },
    /// An instruction has more than one immediate source.
    TooManyImmediates { block: u32, instr: usize },
    /// A terminator targets a block that does not exist.
    BadBlockTarget { block: u32, target: u32 },
    /// A send opcode has no descriptor, or a non-send carries one.
    SendDescriptorMismatch { block: u32, instr: usize },
    /// `cmp` without a condition modifier and flag register.
    CmpWithoutCondition { block: u32, instr: usize },
    /// A control opcode appeared in a block body (control flow is
    /// expressed via terminators in the structured form).
    ControlInBlockBody { block: u32, instr: usize },
    /// `call` is declared by the ISA but not yet supported by the
    /// toolchain.
    CallUnsupported { block: u32, instr: usize },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::EmptyKernel => write!(f, "kernel has no blocks"),
            ValidateError::MissingFinalTerminator => {
                write!(f, "final block has no terminator")
            }
            ValidateError::BadRegister { block, instr, reg } => {
                write!(f, "bb{block} instr {instr}: register {reg} out of range")
            }
            ValidateError::InstrumentationRegUsed { block, instr, reg } => write!(
                f,
                "bb{block} instr {instr}: application code uses reserved instrumentation register {reg}"
            ),
            ValidateError::TooManyImmediates { block, instr } => {
                write!(f, "bb{block} instr {instr}: more than one immediate source")
            }
            ValidateError::BadBlockTarget { block, target } => {
                write!(f, "bb{block}: terminator targets missing block bb{target}")
            }
            ValidateError::SendDescriptorMismatch { block, instr } => {
                write!(f, "bb{block} instr {instr}: send descriptor mismatch")
            }
            ValidateError::CmpWithoutCondition { block, instr } => {
                write!(f, "bb{block} instr {instr}: cmp without condition modifier or flag")
            }
            ValidateError::ControlInBlockBody { block, instr } => {
                write!(f, "bb{block} instr {instr}: control opcode inside block body")
            }
            ValidateError::CallUnsupported { block, instr } => {
                write!(f, "bb{block} instr {instr}: call is not supported yet")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a structured kernel binary, reporting *every* problem.
///
/// Errors are collected in layout order: per block, per instruction,
/// then terminator targets. An empty kernel yields exactly
/// [`ValidateError::EmptyKernel`]. The first element of the returned
/// vector is what [`validate`] reports.
pub fn validate_all(kernel: &KernelBinary) -> Vec<ValidateError> {
    let mut errors = Vec::new();
    if kernel.blocks.is_empty() {
        errors.push(ValidateError::EmptyKernel);
        return errors;
    }
    let num_blocks = kernel.blocks.len() as u32;
    for block in &kernel.blocks {
        let b = block.id.0;
        for (i, instr) in block.instrs.iter().enumerate() {
            if instr.opcode == Opcode::Call {
                errors.push(ValidateError::CallUnsupported { block: b, instr: i });
            } else if instr.opcode.is_control() {
                errors.push(ValidateError::ControlInBlockBody { block: b, instr: i });
            }
            for reg in instr.reads().chain(instr.writes()) {
                if !reg.is_valid() {
                    errors.push(ValidateError::BadRegister {
                        block: b,
                        instr: i,
                        reg,
                    });
                } else if !kernel.metadata.instrumented && reg.0 >= FIRST_INSTRUMENTATION_REG {
                    errors.push(ValidateError::InstrumentationRegUsed {
                        block: b,
                        instr: i,
                        reg,
                    });
                }
            }
            if instr.immediate_count() > 1 {
                errors.push(ValidateError::TooManyImmediates { block: b, instr: i });
            }
            let has_desc = instr.send.is_some();
            if instr.opcode.is_send() != has_desc {
                errors.push(ValidateError::SendDescriptorMismatch { block: b, instr: i });
            }
            if instr.opcode == Opcode::Cmp && (instr.cond.is_none() || instr.flag.is_none()) {
                errors.push(ValidateError::CmpWithoutCondition { block: b, instr: i });
            }
            // Sources past the opcode's arity must be null.
            if instr.srcs.iter().enumerate().any(|(s, src)| {
                s >= instr.opcode.num_sources()
                    && !matches!(src, Src::Null)
                    && !instr.opcode.is_send()
            }) {
                errors.push(ValidateError::TooManyImmediates { block: b, instr: i });
            }
        }
        for target in block.term.successors() {
            if target.0 >= num_blocks {
                errors.push(ValidateError::BadBlockTarget {
                    block: b,
                    target: target.0,
                });
            }
        }
        if matches!(block.term, Terminator::Return) && kernel.blocks.len() == 1 {
            // A kernel whose only exit is `ret` never ends the thread;
            // tolerated for subroutines, but flagged for single-block
            // kernels where it is certainly a bug.
            errors.push(ValidateError::MissingFinalTerminator);
        }
    }
    errors
}

/// Validate a structured kernel binary.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found, scanning blocks in
/// layout order. Use [`validate_all`] to see every problem at once.
pub fn validate(kernel: &KernelBinary) -> Result<(), ValidateError> {
    match validate_all(kernel).into_iter().next() {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

/// Statistics over a kernel's static structure, used by tests and by
/// the static-structure profiling tool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticStats {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Encoded (flattened) instruction count.
    pub instructions: usize,
    /// Count of instructions per category, indexed per
    /// [`crate::opcode::OpcodeCategory::ALL`].
    pub per_category: [usize; 5],
}

/// Compute static statistics for a kernel.
pub fn static_stats(kernel: &KernelBinary) -> StaticStats {
    let flat = kernel.flatten();
    let mut per_category = [0usize; 5];
    for instr in &flat.instrs {
        per_category[instr.opcode.category().index()] += 1;
    }
    StaticStats {
        blocks: flat.num_blocks(),
        instructions: flat.instrs.len(),
        per_category,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instruction::{Instruction, SendDescriptor, SendOp, Surface};
    use crate::kernel::{BasicBlock, BlockId, KernelMetadata};
    use crate::opcode::ExecSize;

    fn raw_kernel(instrs: Vec<Instruction>, term: Terminator) -> KernelBinary {
        KernelBinary {
            name: "raw".into(),
            blocks: vec![BasicBlock {
                id: BlockId(0),
                instrs,
                term,
            }],
            metadata: KernelMetadata::default(),
        }
    }

    #[test]
    fn send_without_descriptor_rejected() {
        let i = Instruction::new(Opcode::Send, ExecSize::S8);
        let err = validate(&raw_kernel(vec![i], Terminator::Eot)).unwrap_err();
        assert!(matches!(err, ValidateError::SendDescriptorMismatch { .. }));
    }

    #[test]
    fn descriptor_on_non_send_rejected() {
        let mut i = Instruction::new(Opcode::Add, ExecSize::S8);
        i.dst = Some(Reg(1));
        i.send = Some(SendDescriptor {
            op: SendOp::Read,
            surface: Surface::Global,
            bytes: 4,
        });
        let err = validate(&raw_kernel(vec![i], Terminator::Eot)).unwrap_err();
        assert!(matches!(err, ValidateError::SendDescriptorMismatch { .. }));
    }

    #[test]
    fn cmp_without_condition_rejected() {
        let i = Instruction::new(Opcode::Cmp, ExecSize::S8);
        let err = validate(&raw_kernel(vec![i], Terminator::Eot)).unwrap_err();
        assert!(matches!(err, ValidateError::CmpWithoutCondition { .. }));
    }

    #[test]
    fn control_in_body_rejected() {
        let i = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        let err = validate(&raw_kernel(vec![i], Terminator::Eot)).unwrap_err();
        assert!(matches!(err, ValidateError::ControlInBlockBody { .. }));
    }

    #[test]
    fn call_unsupported() {
        let i = Instruction::new(Opcode::Call, ExecSize::S1);
        let err = validate(&raw_kernel(vec![i], Terminator::Eot)).unwrap_err();
        assert!(matches!(err, ValidateError::CallUnsupported { .. }));
    }

    #[test]
    fn bad_terminator_target_rejected() {
        let err = validate(&raw_kernel(vec![], Terminator::Jump(BlockId(7)))).unwrap_err();
        assert_eq!(
            err,
            ValidateError::BadBlockTarget {
                block: 0,
                target: 7
            }
        );
    }

    #[test]
    fn instrumented_kernels_may_use_reserved_registers() {
        let mut i = Instruction::new(Opcode::Mov, ExecSize::S1);
        i.dst = Some(Reg(FIRST_INSTRUMENTATION_REG));
        i.srcs[0] = crate::Src::Imm(0);
        let mut k = raw_kernel(vec![i], Terminator::Eot);
        k.metadata.instrumented = true;
        assert!(validate(&k).is_ok());
    }

    #[test]
    fn validate_all_reports_every_error() {
        // One instruction with two problems (control opcode in body,
        // plus a send descriptor on a non-send) and a bad terminator
        // target: three errors, in traversal order.
        let mut i = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        i.send = Some(SendDescriptor {
            op: SendOp::Read,
            surface: Surface::Global,
            bytes: 4,
        });
        let k = raw_kernel(vec![i], Terminator::Jump(BlockId(9)));
        let errors = validate_all(&k);
        assert_eq!(
            errors,
            vec![
                ValidateError::ControlInBlockBody { block: 0, instr: 0 },
                ValidateError::SendDescriptorMismatch { block: 0, instr: 0 },
                ValidateError::BadBlockTarget {
                    block: 0,
                    target: 9
                },
            ]
        );
        // The first-error API reports exactly the head of the list.
        assert_eq!(validate(&k).unwrap_err(), errors[0]);
    }

    #[test]
    fn validate_all_empty_kernel_is_single_error() {
        let k = KernelBinary {
            name: "empty".into(),
            blocks: vec![],
            metadata: KernelMetadata::default(),
        };
        assert_eq!(validate_all(&k), vec![ValidateError::EmptyKernel]);
    }

    #[test]
    fn static_stats_counts_categories() {
        let mut b = KernelBuilder::new("stats");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S8, Reg(1), crate::Src::Imm(0))
            .add(
                ExecSize::S8,
                Reg(2),
                crate::Src::Reg(Reg(1)),
                crate::Src::Imm(1),
            )
            .send_read(ExecSize::S8, Reg(3), Reg(2), Surface::Global, 32)
            .eot();
        let k = b.build().unwrap();
        let s = static_stats(&k);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.instructions, 4); // mov, add, send, eot
        assert_eq!(s.per_category, [1, 0, 1, 1, 1]); // move, logic, control(eot), comp, send
    }
}
