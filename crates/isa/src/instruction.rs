//! Instructions, operands, predication, and send descriptors.

use serde::{Deserialize, Serialize};

use crate::opcode::{ExecSize, Opcode};
use crate::register::Reg;

/// A flag register written by `cmp` and read by predication and
/// conditional branches. GEN has two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FlagReg {
    /// `f0`
    F0,
    /// `f1`
    F1,
}

impl FlagReg {
    /// Encoding index (0 or 1).
    pub fn index(self) -> usize {
        match self {
            FlagReg::F0 => 0,
            FlagReg::F1 => 1,
        }
    }
}

impl std::fmt::Display for FlagReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlagReg::F0 => f.write_str("f0"),
            FlagReg::F1 => f.write_str("f1"),
        }
    }
}

/// Lane predication on an instruction: execute only lanes where the
/// flag (possibly inverted) is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Which flag register gates the lanes.
    pub flag: FlagReg,
    /// If true, the predicate fires on *cleared* flag lanes (`-f0`).
    pub invert: bool,
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}{})", if self.invert { "-" } else { "+" }, self.flag)
    }
}

/// Condition modifier on `cmp`: the relation evaluated per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CondMod {
    /// Equal.
    Eq = 1,
    /// Not equal.
    Ne = 2,
    /// Unsigned less than.
    Lt = 3,
    /// Unsigned less than or equal.
    Le = 4,
    /// Unsigned greater than.
    Gt = 5,
    /// Unsigned greater than or equal.
    Ge = 6,
}

impl CondMod {
    /// Evaluate the relation on one lane.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            CondMod::Eq => a == b,
            CondMod::Ne => a != b,
            CondMod::Lt => a < b,
            CondMod::Le => a <= b,
            CondMod::Gt => a > b,
            CondMod::Ge => a >= b,
        }
    }

    /// Encoding byte (1–6).
    pub fn to_byte(self) -> u8 {
        self as u8
    }

    /// Decode from the encoding byte.
    pub fn from_byte(byte: u8) -> Option<CondMod> {
        match byte {
            1 => Some(CondMod::Eq),
            2 => Some(CondMod::Ne),
            3 => Some(CondMod::Lt),
            4 => Some(CondMod::Le),
            5 => Some(CondMod::Gt),
            6 => Some(CondMod::Ge),
            _ => None,
        }
    }

    /// Mnemonic suffix, e.g. `.lt`.
    pub fn suffix(self) -> &'static str {
        match self {
            CondMod::Eq => ".eq",
            CondMod::Ne => ".ne",
            CondMod::Lt => ".lt",
            CondMod::Le => ".le",
            CondMod::Gt => ".gt",
            CondMod::Ge => ".ge",
        }
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Src {
    /// The null register (reads as zero).
    Null,
    /// A general register.
    Reg(Reg),
    /// A 32-bit immediate, broadcast to all lanes. At most one source
    /// of an instruction may be an immediate.
    Imm(u32),
}

impl std::fmt::Display for Src {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Src::Null => f.write_str("null"),
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

/// The kind of message a `send` instruction carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SendOp {
    /// Read `bytes` from memory into the destination register.
    Read = 0,
    /// Write `bytes` from the source register to memory.
    Write = 1,
    /// Atomically add the source register's lane 0 to a memory cell;
    /// used heavily by GT-Pin counters.
    AtomicAdd = 2,
    /// Read the event timer register; used by GT-Pin's kernel timer
    /// tool (overhead under 10 cycles, Section III-C).
    ReadTimer = 3,
}

impl SendOp {
    /// Decode from the descriptor nibble.
    pub fn from_nibble(n: u8) -> Option<SendOp> {
        match n {
            0 => Some(SendOp::Read),
            1 => Some(SendOp::Write),
            2 => Some(SendOp::AtomicAdd),
            3 => Some(SendOp::ReadTimer),
            _ => None,
        }
    }

    /// Whether the message reads from memory.
    pub fn is_read(self) -> bool {
        matches!(self, SendOp::Read)
    }

    /// Whether the message writes to memory.
    pub fn is_write(self) -> bool {
        matches!(self, SendOp::Write | SendOp::AtomicAdd)
    }
}

/// The surface (address space) a send message targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Surface {
    /// Application global memory (buffers and images).
    Global = 0,
    /// The GT-Pin trace buffer, shared between CPU and GPU
    /// (Section III-A). Only instrumentation targets this surface.
    TraceBuffer = 1,
    /// Per-thread scratch.
    Scratch = 2,
}

impl Surface {
    /// Decode from the descriptor nibble.
    pub fn from_nibble(n: u8) -> Option<Surface> {
        match n {
            0 => Some(Surface::Global),
            1 => Some(Surface::TraceBuffer),
            2 => Some(Surface::Scratch),
            _ => None,
        }
    }
}

/// Descriptor carried by `send`/`sendc`: what the message does, where,
/// and how many bytes move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SendDescriptor {
    /// Message kind.
    pub op: SendOp,
    /// Target surface.
    pub surface: Surface,
    /// Bytes transferred by one execution of the message, across the
    /// active lanes (capped at 2^24-1 by the encoding).
    pub bytes: u32,
}

impl SendDescriptor {
    /// Maximum encodable byte count (24 bits).
    pub const MAX_BYTES: u32 = (1 << 24) - 1;

    /// Pack into the 32-bit descriptor word.
    pub fn to_word(self) -> u32 {
        ((self.op as u32) << 28) | ((self.surface as u32) << 24) | (self.bytes & Self::MAX_BYTES)
    }

    /// Unpack from the 32-bit descriptor word.
    pub fn from_word(word: u32) -> Option<SendDescriptor> {
        let op = SendOp::from_nibble((word >> 28) as u8)?;
        let surface = Surface::from_nibble(((word >> 24) & 0xF) as u8)?;
        Some(SendDescriptor {
            op,
            surface,
            bytes: word & Self::MAX_BYTES,
        })
    }
}

/// One GEN-flavoured instruction.
///
/// Control-flow instructions reference their target as a *signed
/// instruction offset* relative to the next instruction, exactly as
/// the encoded form does — the binary rewriter has to repair these
/// offsets when it splices code, which is the essential difficulty of
/// binary (as opposed to compiler) instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// SIMD width.
    pub exec_size: ExecSize,
    /// Destination register, or `None` for the null register.
    pub dst: Option<Reg>,
    /// Source operands; unused slots are `Src::Null`.
    pub srcs: [Src; 3],
    /// Lane predication.
    pub pred: Option<Predicate>,
    /// Condition modifier (meaningful on `cmp`, which writes `flag`).
    pub cond: Option<CondMod>,
    /// Flag register written by `cmp` / read by `brc`.
    pub flag: Option<FlagReg>,
    /// Branch displacement in instructions, relative to the following
    /// instruction (control opcodes only).
    pub branch_offset: i32,
    /// Send message descriptor (send opcodes only).
    pub send: Option<SendDescriptor>,
}

impl Instruction {
    /// A new instruction with the given opcode and width; all other
    /// fields empty. Builders fill in the rest.
    pub fn new(opcode: Opcode, exec_size: ExecSize) -> Instruction {
        Instruction {
            opcode,
            exec_size,
            dst: None,
            srcs: [Src::Null; 3],
            pred: None,
            cond: None,
            flag: None,
            branch_offset: 0,
            send: None,
        }
    }

    /// A `nop`.
    pub fn nop() -> Instruction {
        Instruction::new(Opcode::Nop, ExecSize::S1)
    }

    /// Registers read by this instruction.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|s| match s {
            Src::Reg(r) => Some(*r),
            _ => None,
        })
    }

    /// Register written by this instruction, if any.
    pub fn writes(&self) -> Option<Reg> {
        self.dst
    }

    /// Flat-stream index this instruction branches to when it sits at
    /// index `at`: branch offsets are relative to the *next*
    /// instruction, so the target is `at + 1 + branch_offset`.
    /// `None` for opcodes that do not carry a target (including `ret`
    /// and `eot`, which leave the kernel rather than jump within it).
    pub fn branch_target(&self, at: usize) -> Option<usize> {
        match self.opcode {
            Opcode::Jmpi | Opcode::Brc | Opcode::Call => {
                Some((at as i64 + 1 + self.branch_offset as i64) as usize)
            }
            _ => None,
        }
    }

    /// Number of immediate source operands.
    pub fn immediate_count(&self) -> usize {
        self.srcs
            .iter()
            .filter(|s| matches!(s, Src::Imm(_)))
            .count()
    }

    /// Bytes this instruction reads from application-visible memory
    /// (zero for non-send instructions and for trace-buffer traffic,
    /// which is instrumentation-private).
    pub fn app_bytes_read(&self) -> u64 {
        match self.send {
            Some(d) if d.surface == Surface::Global && d.op.is_read() => d.bytes as u64,
            _ => 0,
        }
    }

    /// Bytes this instruction writes to application-visible memory.
    pub fn app_bytes_written(&self) -> u64 {
        match self.send {
            Some(d) if d.surface == Surface::Global && d.op.is_write() => d.bytes as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_descriptor_word_round_trip() {
        let d = SendDescriptor {
            op: SendOp::AtomicAdd,
            surface: Surface::TraceBuffer,
            bytes: 12345,
        };
        assert_eq!(SendDescriptor::from_word(d.to_word()), Some(d));
    }

    #[test]
    fn send_descriptor_caps_bytes_at_24_bits() {
        let d = SendDescriptor {
            op: SendOp::Read,
            surface: Surface::Global,
            bytes: SendDescriptor::MAX_BYTES,
        };
        assert_eq!(SendDescriptor::from_word(d.to_word()), Some(d));
    }

    #[test]
    fn cond_mod_round_trip_and_semantics() {
        for c in [
            CondMod::Eq,
            CondMod::Ne,
            CondMod::Lt,
            CondMod::Le,
            CondMod::Gt,
            CondMod::Ge,
        ] {
            assert_eq!(CondMod::from_byte(c.to_byte()), Some(c));
        }
        assert!(CondMod::Lt.eval(1, 2));
        assert!(!CondMod::Lt.eval(2, 2));
        assert!(CondMod::Ge.eval(2, 2));
        assert_eq!(CondMod::from_byte(0), None);
        assert_eq!(CondMod::from_byte(7), None);
    }

    #[test]
    fn app_byte_accounting_ignores_trace_buffer_traffic() {
        let mut i = Instruction::new(Opcode::Send, ExecSize::S8);
        i.send = Some(SendDescriptor {
            op: SendOp::AtomicAdd,
            surface: Surface::TraceBuffer,
            bytes: 64,
        });
        assert_eq!(i.app_bytes_read(), 0);
        assert_eq!(i.app_bytes_written(), 0);

        i.send = Some(SendDescriptor {
            op: SendOp::Write,
            surface: Surface::Global,
            bytes: 64,
        });
        assert_eq!(i.app_bytes_written(), 64);
        assert_eq!(i.app_bytes_read(), 0);
    }

    #[test]
    fn reads_and_writes_enumerate_register_operands() {
        let mut i = Instruction::new(Opcode::Mad, ExecSize::S16);
        i.dst = Some(Reg(9));
        i.srcs = [Src::Reg(Reg(1)), Src::Imm(3), Src::Reg(Reg(2))];
        let reads: Vec<Reg> = i.reads().collect();
        assert_eq!(reads, vec![Reg(1), Reg(2)]);
        assert_eq!(i.writes(), Some(Reg(9)));
        assert_eq!(i.immediate_count(), 1);
    }
}
