//! Byte-level kernel binary format.
//!
//! Layout:
//!
//! ```text
//! magic   "GENK"                  4 bytes
//! version u16 LE                  2 bytes
//! flags   u16 LE (bit0 = instrumented)
//! name    u16 LE length + bytes
//! args    u8  num_args
//! regs    u8  max_app_reg
//! count   u32 LE instruction count
//! body    count × 16-byte instructions
//! ```
//!
//! Each instruction is 16 bytes, mirroring GEN's fixed 128-bit
//! encoding:
//!
//! ```text
//! b0      opcode
//! b1      exec size (bits 0..3) | predicate (bits 3..6)
//! b2      dst register (0xFF = null)
//! b3      cond modifier (bits 0..3) | flag register (bits 4..6)
//! b4      source kinds: src0 bits 0..2, src1 bits 2..4, src2 bits 4..6
//! b5..b8  source register indices
//! b8..b12 u32 LE shared immediate (at most one immediate source)
//! b12..b16 u32 LE: branch offset (control) or send descriptor (send)
//! ```

use crate::instruction::{CondMod, FlagReg, Instruction, Predicate, SendDescriptor, Src};
use crate::kernel::{BasicBlock, BlockId, KernelBinary, KernelMetadata, Terminator};
use crate::opcode::{ExecSize, Opcode};
use crate::register::Reg;
use crate::DecodeError;

/// Width of one encoded instruction in bytes.
pub const INSTRUCTION_BYTES: usize = 16;

/// Format magic.
pub const MAGIC: &[u8; 4] = b"GENK";

/// Format version this crate emits.
pub const VERSION: u16 = 1;

const SRC_NULL: u8 = 0;
const SRC_REG: u8 = 1;
const SRC_IMM: u8 = 2;

/// Encode a single instruction into its 16-byte form.
pub fn encode_instruction(instr: &Instruction, out: &mut Vec<u8>) {
    let mut bytes = [0u8; INSTRUCTION_BYTES];
    bytes[0] = instr.opcode.to_byte();
    let pred_code = match instr.pred {
        None => 0u8,
        Some(Predicate {
            flag: FlagReg::F0,
            invert: false,
        }) => 1,
        Some(Predicate {
            flag: FlagReg::F0,
            invert: true,
        }) => 2,
        Some(Predicate {
            flag: FlagReg::F1,
            invert: false,
        }) => 3,
        Some(Predicate {
            flag: FlagReg::F1,
            invert: true,
        }) => 4,
    };
    bytes[1] = instr.exec_size.to_code() | (pred_code << 3);
    bytes[2] = instr.dst.map(|r| r.0).unwrap_or(0xFF);
    let flag_code = match instr.flag {
        None => 0u8,
        Some(FlagReg::F0) => 1,
        Some(FlagReg::F1) => 2,
    };
    bytes[3] = instr.cond.map(CondMod::to_byte).unwrap_or(0) | (flag_code << 4);

    let mut imm = 0u32;
    let mut kinds = 0u8;
    for (i, src) in instr.srcs.iter().enumerate() {
        let (kind, reg) = match src {
            Src::Null => (SRC_NULL, 0),
            Src::Reg(r) => (SRC_REG, r.0),
            Src::Imm(v) => {
                imm = *v;
                (SRC_IMM, 0)
            }
        };
        kinds |= kind << (2 * i);
        bytes[5 + i] = reg;
    }
    bytes[4] = kinds;
    bytes[8..12].copy_from_slice(&imm.to_le_bytes());

    let tail: u32 = if instr.opcode.is_send() {
        instr.send.map(SendDescriptor::to_word).unwrap_or(0)
    } else {
        instr.branch_offset as u32
    };
    bytes[12..16].copy_from_slice(&tail.to_le_bytes());
    out.extend_from_slice(&bytes);
}

/// Decode a single instruction from its 16-byte form.
///
/// # Errors
///
/// Returns [`DecodeError`] on unknown opcode bytes or malformed
/// operand fields. `offset` is only used for error reporting.
pub fn decode_instruction(bytes: &[u8], offset: usize) -> Result<Instruction, DecodeError> {
    debug_assert_eq!(bytes.len(), INSTRUCTION_BYTES);
    let opcode = Opcode::from_byte(bytes[0]).ok_or(DecodeError::UnknownOpcode {
        offset,
        byte: bytes[0],
    })?;
    let exec_size = ExecSize::from_code(bytes[1] & 0b111).ok_or(DecodeError::BadOperand {
        offset,
        detail: "bad exec size",
    })?;
    let pred = match bytes[1] >> 3 {
        0 => None,
        1 => Some(Predicate {
            flag: FlagReg::F0,
            invert: false,
        }),
        2 => Some(Predicate {
            flag: FlagReg::F0,
            invert: true,
        }),
        3 => Some(Predicate {
            flag: FlagReg::F1,
            invert: false,
        }),
        4 => Some(Predicate {
            flag: FlagReg::F1,
            invert: true,
        }),
        _ => {
            return Err(DecodeError::BadOperand {
                offset,
                detail: "bad predicate",
            })
        }
    };
    let dst = match bytes[2] {
        0xFF => None,
        r if Reg(r).is_valid() => Some(Reg(r)),
        _ => {
            return Err(DecodeError::BadOperand {
                offset,
                detail: "bad dst register",
            })
        }
    };
    let cond = match bytes[3] & 0x0F {
        0 => None,
        c => Some(CondMod::from_byte(c).ok_or(DecodeError::BadOperand {
            offset,
            detail: "bad cond modifier",
        })?),
    };
    let flag = match bytes[3] >> 4 {
        0 => None,
        1 => Some(FlagReg::F0),
        2 => Some(FlagReg::F1),
        _ => {
            return Err(DecodeError::BadOperand {
                offset,
                detail: "bad flag register",
            })
        }
    };

    let imm = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let mut srcs = [Src::Null; 3];
    let mut imm_seen = false;
    for i in 0..3 {
        let kind = (bytes[4] >> (2 * i)) & 0b11;
        srcs[i] = match kind {
            SRC_NULL => Src::Null,
            SRC_REG => {
                let r = Reg(bytes[5 + i]);
                if !r.is_valid() {
                    return Err(DecodeError::BadOperand {
                        offset,
                        detail: "bad src register",
                    });
                }
                Src::Reg(r)
            }
            SRC_IMM => {
                if imm_seen {
                    return Err(DecodeError::BadOperand {
                        offset,
                        detail: "more than one immediate source",
                    });
                }
                imm_seen = true;
                Src::Imm(imm)
            }
            _ => {
                return Err(DecodeError::BadOperand {
                    offset,
                    detail: "bad source kind",
                })
            }
        };
    }

    let tail = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let (branch_offset, send) = if opcode.is_send() {
        let desc = SendDescriptor::from_word(tail).ok_or(DecodeError::BadOperand {
            offset,
            detail: "bad send descriptor",
        })?;
        (0, Some(desc))
    } else {
        (tail as i32, None)
    };

    Ok(Instruction {
        opcode,
        exec_size,
        dst,
        srcs,
        pred,
        cond,
        flag,
        branch_offset,
        send,
    })
}

/// Encode a kernel to the binary container format.
pub fn encode_kernel(kernel: &KernelBinary) -> Vec<u8> {
    let flat = kernel.flatten();
    encode_stream(&flat.name, &flat.metadata, &flat.instrs)
}

/// Encode an already-flattened instruction stream (used by the binary
/// rewriter, which works on streams rather than structured CFGs).
pub fn encode_stream(name: &str, metadata: &KernelMetadata, instrs: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + name.len() + instrs.len() * INSTRUCTION_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let flags: u16 = u16::from(metadata.instrumented);
    out.extend_from_slice(&flags.to_le_bytes());
    let name_bytes = name.as_bytes();
    out.extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(name_bytes);
    out.push(metadata.num_args);
    out.push(metadata.max_app_reg);
    out.extend_from_slice(&(instrs.len() as u32).to_le_bytes());
    for instr in instrs {
        encode_instruction(instr, &mut out);
    }
    out
}

/// The raw pieces of a decoded container, before CFG reconstruction.
pub struct DecodedStream {
    /// Kernel name from the header.
    pub name: String,
    /// Header metadata.
    pub metadata: KernelMetadata,
    /// Decoded instructions.
    pub instrs: Vec<Instruction>,
}

/// Decode the container header and instruction stream.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated streams, bad magic/version,
/// or malformed instructions.
pub fn decode_stream(bytes: &[u8]) -> Result<DecodedStream, DecodeError> {
    let fail = |_: ()| DecodeError::TruncatedStream { len: bytes.len() };
    let take = |range: std::ops::Range<usize>| bytes.get(range).ok_or(()).map_err(fail);

    if take(0..4)? != MAGIC {
        return Err(DecodeError::BadOperand {
            offset: 0,
            detail: "bad magic",
        });
    }
    let version = u16::from_le_bytes(take(4..6)?.try_into().unwrap());
    if version != VERSION {
        return Err(DecodeError::BadOperand {
            offset: 4,
            detail: "unsupported version",
        });
    }
    let flags = u16::from_le_bytes(take(6..8)?.try_into().unwrap());
    let name_len = u16::from_le_bytes(take(8..10)?.try_into().unwrap()) as usize;
    let name = String::from_utf8(take(10..10 + name_len)?.to_vec()).map_err(|_| {
        DecodeError::BadOperand {
            offset: 10,
            detail: "kernel name is not UTF-8",
        }
    })?;
    let mut cursor = 10 + name_len;
    let num_args = *bytes.get(cursor).ok_or(()).map_err(fail)?;
    let max_app_reg = *bytes.get(cursor + 1).ok_or(()).map_err(fail)?;
    cursor += 2;
    let count = u32::from_le_bytes(take(cursor..cursor + 4)?.try_into().unwrap()) as usize;
    cursor += 4;

    let body = &bytes[cursor..];
    if body.len() != count * INSTRUCTION_BYTES {
        return Err(DecodeError::TruncatedStream { len: bytes.len() });
    }
    let mut instrs = Vec::with_capacity(count);
    for i in 0..count {
        let chunk = &body[i * INSTRUCTION_BYTES..(i + 1) * INSTRUCTION_BYTES];
        instrs.push(decode_instruction(chunk, cursor + i * INSTRUCTION_BYTES)?);
    }
    Ok(DecodedStream {
        name,
        metadata: KernelMetadata {
            num_args,
            max_app_reg,
            instrumented: flags & 1 != 0,
        },
        instrs,
    })
}

/// Compute basic-block leader indices of an instruction stream:
/// index 0, every branch target, and every instruction following a
/// control transfer.
///
/// # Errors
///
/// Returns [`DecodeError::BadBranchTarget`] for targets outside the
/// stream.
pub fn leaders(instrs: &[Instruction]) -> Result<Vec<u32>, DecodeError> {
    let mut set = std::collections::BTreeSet::new();
    if !instrs.is_empty() {
        set.insert(0u32);
    }
    for (i, instr) in instrs.iter().enumerate() {
        if instr.opcode.is_control() && instr.opcode != Opcode::Eot && instr.opcode != Opcode::Ret {
            let target = i as i64 + 1 + instr.branch_offset as i64;
            if target < 0 || target > instrs.len() as i64 - 1 {
                return Err(DecodeError::BadBranchTarget {
                    offset: i * INSTRUCTION_BYTES,
                    target,
                });
            }
            set.insert(target as u32);
        }
        if instr.opcode.is_control() && i + 1 < instrs.len() {
            set.insert(i as u32 + 1);
        }
    }
    Ok(set.into_iter().collect())
}

/// Decode a container into a structured [`KernelBinary`], rebuilding
/// the CFG from leaders and control instructions.
///
/// # Errors
///
/// Propagates stream and branch-target errors, and reports
/// [`DecodeError::MissingTerminator`] when the final instruction can
/// fall off the end of the stream.
pub fn decode_kernel(bytes: &[u8]) -> Result<KernelBinary, DecodeError> {
    let stream = decode_stream(bytes)?;
    let instrs = &stream.instrs;
    if instrs.is_empty() {
        return Err(DecodeError::MissingTerminator);
    }
    let last = instrs[instrs.len() - 1];
    if !matches!(last.opcode, Opcode::Eot | Opcode::Ret | Opcode::Jmpi) {
        return Err(DecodeError::MissingTerminator);
    }

    let starts = leaders(instrs)?;
    let block_of = |instr_idx: u32| -> BlockId {
        match starts.binary_search(&instr_idx) {
            Ok(b) => BlockId(b as u32),
            Err(b) => BlockId(b as u32 - 1),
        }
    };

    let mut blocks = Vec::with_capacity(starts.len());
    for (b, &start) in starts.iter().enumerate() {
        let end = starts
            .get(b + 1)
            .map(|&s| s as usize)
            .unwrap_or(instrs.len());
        let body = &instrs[start as usize..end];
        let (body_instrs, term) = split_terminator(body, end, b, starts.len(), &block_of)?;
        blocks.push(BasicBlock {
            id: BlockId(b as u32),
            instrs: body_instrs,
            term,
        });
    }

    Ok(KernelBinary {
        name: stream.name,
        blocks,
        metadata: stream.metadata,
    })
}

fn split_terminator(
    body: &[Instruction],
    end: usize,
    block_index: usize,
    num_blocks: usize,
    block_of: &impl Fn(u32) -> BlockId,
) -> Result<(Vec<Instruction>, Terminator), DecodeError> {
    let last = *body.last().expect("blocks are non-empty between leaders");
    let target_of = |at: usize, off: i32| (at as i64 + 1 + off as i64) as u32;
    // `at` is the stream index of the last instruction.
    let at = end - 1;
    let term = match last.opcode {
        Opcode::Eot => Some(Terminator::Eot),
        Opcode::Ret => Some(Terminator::Return),
        Opcode::Jmpi => Some(Terminator::Jump(block_of(target_of(
            at,
            last.branch_offset,
        )))),
        Opcode::Brc => {
            let pred = last.pred.ok_or(DecodeError::BadOperand {
                offset: at * INSTRUCTION_BYTES,
                detail: "brc without predicate",
            })?;
            if block_index + 1 >= num_blocks {
                return Err(DecodeError::MissingTerminator);
            }
            Some(Terminator::CondJump {
                flag: pred.flag,
                invert: pred.invert,
                taken: block_of(target_of(at, last.branch_offset)),
                fallthrough: BlockId(block_index as u32 + 1),
            })
        }
        _ => None,
    };
    match term {
        Some(t) => {
            let mut instrs = body.to_vec();
            // Brc followed by an elided fallthrough keeps only the brc;
            // a Brc followed by a Jmpi was split into two blocks by the
            // leader rule, so each block still ends in one control op.
            instrs.pop();
            Ok((instrs, t))
        }
        None => {
            // No control instruction: plain fallthrough to next block.
            if block_index + 1 >= num_blocks {
                return Err(DecodeError::MissingTerminator);
            }
            Ok((
                body.to_vec(),
                Terminator::FallThrough(BlockId(block_index as u32 + 1)),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instruction::{SendOp, Surface};
    use crate::register::Reg;

    fn sample_instr() -> Instruction {
        let mut i = Instruction::new(Opcode::Mad, ExecSize::S16);
        i.dst = Some(Reg(7));
        i.srcs = [Src::Reg(Reg(1)), Src::Imm(0xDEAD_BEEF), Src::Reg(Reg(2))];
        i.pred = Some(Predicate {
            flag: FlagReg::F1,
            invert: true,
        });
        i
    }

    #[test]
    fn instruction_round_trip() {
        let i = sample_instr();
        let mut bytes = Vec::new();
        encode_instruction(&i, &mut bytes);
        assert_eq!(bytes.len(), INSTRUCTION_BYTES);
        let back = decode_instruction(&bytes, 0).unwrap();
        assert_eq!(i, back);
    }

    #[test]
    fn send_round_trip() {
        let mut i = Instruction::new(Opcode::Send, ExecSize::S8);
        i.dst = Some(Reg(10));
        i.srcs[0] = Src::Reg(Reg(11));
        i.send = Some(SendDescriptor {
            op: SendOp::Read,
            surface: Surface::Global,
            bytes: 256,
        });
        let mut bytes = Vec::new();
        encode_instruction(&i, &mut bytes);
        let back = decode_instruction(&bytes, 0).unwrap();
        assert_eq!(i, back);
    }

    #[test]
    fn branch_offset_round_trips_negative() {
        let mut i = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        i.branch_offset = -42;
        let mut bytes = Vec::new();
        encode_instruction(&i, &mut bytes);
        let back = decode_instruction(&bytes, 0).unwrap();
        assert_eq!(back.branch_offset, -42);
    }

    #[test]
    fn double_immediate_rejected_on_decode() {
        let mut i = sample_instr();
        i.srcs = [Src::Imm(1), Src::Imm(2), Src::Null];
        let mut bytes = Vec::new();
        encode_instruction(&i, &mut bytes);
        // Manually force both kinds to imm (encoder would share the word).
        let err = decode_instruction(&bytes, 0).unwrap_err();
        assert!(matches!(err, DecodeError::BadOperand { .. }));
    }

    #[test]
    fn kernel_container_round_trip() {
        let mut b = KernelBuilder::new("roundtrip");
        let entry = b.entry_block();
        b.block_mut(entry)
            .add(ExecSize::S16, Reg(3), Src::Reg(Reg(1)), Src::Imm(5))
            .eot();
        let k = b.build().unwrap();
        let bytes = k.encode();
        let back = KernelBinary::decode(&bytes).unwrap();
        assert_eq!(back.name, "roundtrip");
        assert_eq!(back.encode(), bytes, "encode∘decode is stable on bytes");
    }

    #[test]
    fn truncated_container_rejected() {
        let mut b = KernelBuilder::new("t");
        let entry = b.entry_block();
        b.block_mut(entry).eot();
        let bytes = b.build().unwrap().encode();
        let err = KernelBinary::decode(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, DecodeError::TruncatedStream { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = KernelBinary::decode(b"NOPE....").unwrap_err();
        assert!(matches!(
            err,
            DecodeError::BadOperand {
                detail: "bad magic",
                ..
            }
        ));
    }

    #[test]
    fn stream_missing_eot_rejected() {
        let mut i = Instruction::new(Opcode::Add, ExecSize::S1);
        i.dst = Some(Reg(0));
        let bytes = encode_stream("x", &KernelMetadata::default(), &[i]);
        let err = decode_kernel(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::MissingTerminator);
    }

    #[test]
    fn leaders_split_at_branches_and_targets() {
        // 0: add; 1: brc -> 0; 2: eot
        let mut add = Instruction::new(Opcode::Add, ExecSize::S1);
        add.dst = Some(Reg(1));
        let mut br = Instruction::new(Opcode::Brc, ExecSize::S1);
        br.pred = Some(Predicate {
            flag: FlagReg::F0,
            invert: false,
        });
        br.branch_offset = -2;
        let eot = Instruction::new(Opcode::Eot, ExecSize::S1);
        let l = leaders(&[add, br, eot]).unwrap();
        assert_eq!(l, vec![0, 2]);
    }

    #[test]
    fn out_of_range_branch_target_rejected() {
        let mut br = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        br.branch_offset = 100;
        let eot = Instruction::new(Opcode::Eot, ExecSize::S1);
        let err = leaders(&[br, eot]).unwrap_err();
        assert!(matches!(err, DecodeError::BadBranchTarget { .. }));
    }
}
