//! Property tests: encoding round-trips and CFG reconstruction.

use gen_isa::builder::KernelBuilder;
use gen_isa::encode::{decode_instruction, encode_instruction, INSTRUCTION_BYTES};
use gen_isa::{
    CondMod, ExecSize, FlagReg, Instruction, KernelBinary, Opcode, Predicate, Reg, SendDescriptor,
    SendOp, Src, Surface, Terminator,
};
use proptest::prelude::*;

fn arb_exec_size() -> impl Strategy<Value = ExecSize> {
    prop::sample::select(ExecSize::ALL.to_vec())
}

fn arb_alu_opcode() -> impl Strategy<Value = Opcode> {
    let alu: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|o| !o.is_control() && !o.is_send() && *o != Opcode::Nop && *o != Opcode::Cmp)
        .collect();
    prop::sample::select(alu)
}

fn arb_src(allow_imm: bool) -> impl Strategy<Value = Src> {
    if allow_imm {
        prop_oneof![
            Just(Src::Null),
            (0u8..120).prop_map(|r| Src::Reg(Reg(r))),
            any::<u32>().prop_map(Src::Imm),
        ]
        .boxed()
    } else {
        prop_oneof![Just(Src::Null), (0u8..120).prop_map(|r| Src::Reg(Reg(r))),].boxed()
    }
}

fn arb_pred() -> impl Strategy<Value = Option<Predicate>> {
    prop_oneof![
        Just(None),
        (prop::bool::ANY, prop::bool::ANY).prop_map(|(f1, inv)| Some(Predicate {
            flag: if f1 { FlagReg::F1 } else { FlagReg::F0 },
            invert: inv,
        })),
    ]
}

prop_compose! {
    fn arb_alu_instruction()(
        opcode in arb_alu_opcode(),
        w in arb_exec_size(),
        dst in 0u8..120,
        s0 in arb_src(true),
        s1 in arb_src(false),
        s2 in arb_src(false),
        pred in arb_pred(),
    ) -> Instruction {
        let mut i = Instruction::new(opcode, w);
        i.dst = Some(Reg(dst));
        let arity = opcode.num_sources();
        let cand = [s0, s1, s2];
        i.srcs[..arity].copy_from_slice(&cand[..arity]);
        i.pred = pred;
        i
    }
}

prop_compose! {
    fn arb_send_instruction()(
        w in arb_exec_size(),
        dst in 0u8..120,
        addr in 0u8..120,
        op in prop::sample::select(vec![SendOp::Read, SendOp::Write, SendOp::AtomicAdd, SendOp::ReadTimer]),
        surface in prop::sample::select(vec![Surface::Global, Surface::TraceBuffer, Surface::Scratch]),
        bytes in 0u32..SendDescriptor::MAX_BYTES,
    ) -> Instruction {
        let mut i = Instruction::new(Opcode::Send, w);
        i.dst = Some(Reg(dst));
        i.srcs[0] = Src::Reg(Reg(addr));
        i.send = Some(SendDescriptor { op, surface, bytes });
        i
    }
}

proptest! {
    #[test]
    fn alu_instruction_round_trips(instr in arb_alu_instruction()) {
        let mut bytes = Vec::new();
        encode_instruction(&instr, &mut bytes);
        prop_assert_eq!(bytes.len(), INSTRUCTION_BYTES);
        let back = decode_instruction(&bytes, 0).unwrap();
        prop_assert_eq!(instr, back);
    }

    #[test]
    fn send_instruction_round_trips(instr in arb_send_instruction()) {
        let mut bytes = Vec::new();
        encode_instruction(&instr, &mut bytes);
        let back = decode_instruction(&bytes, 0).unwrap();
        prop_assert_eq!(instr, back);
    }

    #[test]
    fn random_bytes_never_panic_on_decode(bytes in prop::collection::vec(any::<u8>(), INSTRUCTION_BYTES)) {
        let _ = decode_instruction(&bytes, 0);
    }

    /// Random structured loop-shaped kernels survive
    /// encode → decode → encode byte-identically.
    #[test]
    fn kernel_bytes_stable_under_decode_encode(
        body in prop::collection::vec(arb_alu_instruction(), 1..20),
        trip in 1u32..12,
    ) {
        let mut b = KernelBuilder::new("prop");
        let head = b.entry_block();
        let exit = b.new_block();
        for i in &body {
            b.block_mut(head).raw(*i);
        }
        b.block_mut(head)
            .add(ExecSize::S1, Reg(100), Src::Reg(Reg(100)), Src::Imm(1))
            .cmp(ExecSize::S1, CondMod::Lt, FlagReg::F0, Src::Reg(Reg(100)), Src::Imm(trip));
        b.set_terminator(head, Terminator::CondJump {
            flag: FlagReg::F0,
            invert: false,
            taken: head,
            fallthrough: exit,
        });
        b.block_mut(exit).eot();
        let kernel = b.build().unwrap();

        let bytes = kernel.encode();
        let decoded = KernelBinary::decode(&bytes).unwrap();
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Flattened instruction counts are invariant across the byte
    /// round trip (counts are the basis of every profile).
    #[test]
    fn instruction_count_invariant(
        body in prop::collection::vec(arb_alu_instruction(), 1..30),
    ) {
        let mut b = KernelBuilder::new("count");
        let e = b.entry_block();
        for i in &body {
            b.block_mut(e).raw(*i);
        }
        b.block_mut(e).eot();
        let kernel = b.build().unwrap();
        let n = kernel.static_instruction_count();
        let back = KernelBinary::decode(&kernel.encode()).unwrap();
        prop_assert_eq!(back.static_instruction_count(), n);
    }
}
