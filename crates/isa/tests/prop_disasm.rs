//! Property tests: disassembly is stable across the byte round trip
//! and faithfully reflects every encoded field — send descriptors and
//! predicated branches included.

use gen_isa::builder::KernelBuilder;
use gen_isa::disasm::{disassemble, disassemble_flat};
use gen_isa::{
    CondMod, ExecSize, FlagReg, Instruction, KernelBinary, Opcode, Predicate, Reg, SendDescriptor,
    SendOp, Src, Surface, Terminator,
};
use proptest::prelude::*;

fn arb_exec_size() -> impl Strategy<Value = ExecSize> {
    prop::sample::select(ExecSize::ALL.to_vec())
}

fn arb_alu_opcode() -> impl Strategy<Value = Opcode> {
    let alu: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|o| !o.is_control() && !o.is_send() && *o != Opcode::Nop && *o != Opcode::Cmp)
        .collect();
    prop::sample::select(alu)
}

fn arb_pred() -> impl Strategy<Value = Option<Predicate>> {
    prop_oneof![
        Just(None),
        (prop::bool::ANY, prop::bool::ANY).prop_map(|(f1, inv)| Some(Predicate {
            flag: if f1 { FlagReg::F1 } else { FlagReg::F0 },
            invert: inv,
        })),
    ]
}

prop_compose! {
    fn arb_alu_instruction()(
        opcode in arb_alu_opcode(),
        w in arb_exec_size(),
        dst in 0u8..120,
        s0 in (0u8..120).prop_map(|r| Src::Reg(Reg(r))),
        s1 in prop_oneof![
            (0u8..120).prop_map(|r| Src::Reg(Reg(r))),
            any::<u32>().prop_map(Src::Imm),
        ],
        s2 in (0u8..120).prop_map(|r| Src::Reg(Reg(r))),
        pred in arb_pred(),
    ) -> Instruction {
        let mut i = Instruction::new(opcode, w);
        i.dst = Some(Reg(dst));
        let arity = opcode.num_sources();
        let cand = [s0, s1, s2];
        i.srcs[..arity].copy_from_slice(&cand[..arity]);
        i.pred = pred;
        i
    }
}

prop_compose! {
    fn arb_send_instruction()(
        w in arb_exec_size(),
        dst in 0u8..120,
        addr in 0u8..120,
        op in prop::sample::select(vec![SendOp::Read, SendOp::Write, SendOp::AtomicAdd]),
        surface in prop::sample::select(vec![Surface::Global, Surface::Scratch]),
        bytes in 1u32..SendDescriptor::MAX_BYTES,
    ) -> Instruction {
        let mut i = Instruction::new(Opcode::Send, w);
        i.dst = Some(Reg(dst));
        i.srcs[0] = Src::Reg(Reg(addr));
        i.send = Some(SendDescriptor { op, surface, bytes });
        i
    }
}

/// A structured loop kernel mixing ALU work, a send, and a predicated
/// backedge (`brc` carries the flag as a predicate).
fn build_kernel(body: &[Instruction], send: Instruction, invert: bool, trip: u32) -> KernelBinary {
    let mut b = KernelBuilder::new("prop-disasm");
    let head = b.entry_block();
    let exit = b.new_block();
    for i in body {
        b.block_mut(head).raw(*i);
    }
    b.block_mut(head).raw(send);
    b.block_mut(head)
        .add(ExecSize::S1, Reg(100), Src::Reg(Reg(100)), Src::Imm(1))
        .cmp(
            ExecSize::S1,
            CondMod::Lt,
            FlagReg::F0,
            Src::Reg(Reg(100)),
            Src::Imm(trip),
        );
    b.set_terminator(
        head,
        Terminator::CondJump {
            flag: FlagReg::F0,
            invert,
            taken: head,
            fallthrough: exit,
        },
    );
    b.block_mut(exit).eot();
    b.build().unwrap()
}

proptest! {
    /// Disassembly text is identical before and after the byte round
    /// trip: every field the text reflects survives encode → decode.
    #[test]
    fn disassembly_stable_across_byte_round_trip(
        body in prop::collection::vec(arb_alu_instruction(), 1..12),
        send in arb_send_instruction(),
        invert in prop::bool::ANY,
        trip in 1u32..10,
    ) {
        let kernel = build_kernel(&body, send, invert, trip);
        let text = disassemble(&kernel);
        let back = KernelBinary::decode(&kernel.encode()).unwrap();
        prop_assert_eq!(disassemble(&back), text);
    }

    /// The flat disassembly names every instruction exactly once and
    /// renders the send descriptor and the predicated backedge.
    #[test]
    fn disassembly_reflects_sends_and_predicated_branches(
        body in prop::collection::vec(arb_alu_instruction(), 1..8),
        send in arb_send_instruction(),
        invert in prop::bool::ANY,
    ) {
        let kernel = build_kernel(&body, send, invert, 5);
        let flat = kernel.flatten();
        let text = disassemble_flat(&flat);

        // One line per instruction plus one label per block plus the
        // header.
        let lines = text.lines().count();
        prop_assert_eq!(lines, flat.instrs.len() + flat.num_blocks() + 1);

        let d = send.send.unwrap();
        let op = match d.op {
            SendOp::Read => "read",
            SendOp::Write => "write",
            SendOp::AtomicAdd => "atomic_add",
            SendOp::ReadTimer => "timer",
        };
        let surf = match d.surface {
            Surface::Global => "global",
            Surface::TraceBuffer => "trace",
            Surface::Scratch => "scratch",
        };
        prop_assert!(text.contains(&format!("{{{op}.{surf}, {}B}}", d.bytes)), "{}", text);

        // The backedge is a predicated brc with a negative offset.
        let prefix = if invert { "(-f0) brc" } else { "(+f0) brc" };
        prop_assert!(text.contains(prefix), "{}", text);
        prop_assert!(text.contains("ip-"), "{}", text);

        // Every predicated ALU instruction renders its prefix.
        for i in &body {
            if let Some(p) = i.pred {
                let want = format!(
                    "({}{}) {}",
                    if p.invert { "-" } else { "+" },
                    if p.flag == FlagReg::F1 { "f1" } else { "f0" },
                    i.opcode.mnemonic()
                );
                prop_assert!(text.contains(&want), "missing `{}` in: {}", want, text);
            }
        }
    }
}
