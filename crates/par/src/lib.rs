//! Deterministic parallel execution primitives.
//!
//! Everything in this workspace that fans out across threads goes
//! through this crate, and everything here preserves one contract:
//! **the result is bitwise identical to the serial execution at any
//! thread count**. That holds because
//!
//! - tasks are pure with respect to each other (no shared mutable
//!   state inside a fan-out; each task owns its RNG and scratch), and
//! - results are collected **by task index**, never by completion
//!   order, so every reduction downstream sees the serial order.
//!
//! The thread count comes from the `GTPIN_THREADS` environment
//! variable (or an explicit argument); `threads <= 1` falls back to a
//! plain serial loop with no thread machinery at all. Workers are
//! `std::thread::scope` scoped threads — no pool, no queues, no
//! external dependencies — which keeps the fan-out cheap enough for
//! per-kernel-launch use.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub mod supervisor;

pub use supervisor::{Admission, Outcome, Supervisor, SupervisorConfig, SupervisorReport};

/// The environment variable controlling workspace-wide parallelism.
pub const THREADS_ENV: &str = "GTPIN_THREADS";

/// The environment variable overriding the worker count of the
/// detailed cycle-level simulator specifically. Unset, the simulator
/// inherits [`THREADS_ENV`].
pub const SIM_THREADS_ENV: &str = "GTPIN_SIM_THREADS";

/// The thread count to use: `GTPIN_THREADS` when set (values that
/// fail to parse, or `0`, fall back to `1` — the serial path);
/// otherwise the machine's available parallelism.
///
/// The lenient fallback keeps library embedders running; the CLI
/// rejects malformed values up front via [`validate_threads_env`] so
/// users are never silently clamped.
pub fn configured_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The detailed simulator's worker count: `GTPIN_SIM_THREADS` when
/// set (same lenient fallback as [`configured_threads`]), otherwise
/// whatever [`configured_threads`] says.
pub fn configured_sim_threads() -> usize {
    match std::env::var(SIM_THREADS_ENV) {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        Err(_) => configured_threads(),
    }
}

/// How strict parsing should treat a `GTPIN_*` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKnobKind {
    /// A worker count: a positive integer (`0` is malformed — use
    /// `1` for the serial path).
    ThreadCount,
    /// A budget/limit: any unsigned integer (`0` conventionally
    /// means "disabled" and is accepted).
    Limit,
    /// An on/off switch: `1`/`true`/`yes`/`on` enable,
    /// `0`/`false`/`no`/`off`/empty disable; anything else (e.g. the
    /// typo `ture`) is malformed instead of silently off.
    Flag,
    /// A `GTPIN_FAULTS` plan spec, validated by
    /// [`gtpin_faults::FaultPlan::parse`].
    FaultPlan,
}

/// Every numeric `GTPIN_*` environment knob the suite reads, with
/// the strictness class its value must satisfy. The serve/chaos knob
/// names are string literals here (not re-exported consts) because
/// this crate sits below those layers — each owning crate defines a
/// matching const and a test pins the spelling.
pub const NUMERIC_ENV_KNOBS: [(&str, EnvKnobKind); 11] = [
    (THREADS_ENV, EnvKnobKind::ThreadCount),
    (SIM_THREADS_ENV, EnvKnobKind::ThreadCount),
    (supervisor::DEADLINE_ENV, EnvKnobKind::Limit),
    (supervisor::BREAKER_ENV, EnvKnobKind::Limit),
    (supervisor::MAX_TASKS_ENV, EnvKnobKind::Limit),
    (supervisor::MAX_VIRTUAL_ENV, EnvKnobKind::Limit),
    // gtpin-serve: session lease length (virtual ms, 0 disables) and
    // the client retry policy (attempt cap, base backoff ms).
    ("GTPIN_LEASE_MS", EnvKnobKind::Limit),
    ("GTPIN_RETRY_MAX", EnvKnobKind::Limit),
    ("GTPIN_RETRY_BASE_MS", EnvKnobKind::Limit),
    // gtpin-chaos: restart bound per scenario and the base seed.
    ("GTPIN_CHAOS_MAX_RESTARTS", EnvKnobKind::Limit),
    ("GTPIN_CHAOS_SEED", EnvKnobKind::Limit),
];

/// The non-numeric `GTPIN_*` knobs: on/off switches plus the fault
/// plan. `GTPIN_OBS=ture` used to silently disable telemetry; the
/// strict parser makes that an `error[cli]` instead.
pub const FLAG_ENV_KNOBS: [(&str, EnvKnobKind); 4] = [
    ("GTPIN_OBS", EnvKnobKind::Flag),
    ("GTPIN_VERIFY", EnvKnobKind::Flag),
    ("GTPIN_PRESCREEN", EnvKnobKind::Flag),
    (gtpin_faults::FAULTS_ENV, EnvKnobKind::FaultPlan),
];

/// Strict validation of every `GTPIN_*` knob ([`NUMERIC_ENV_KNOBS`]
/// and [`FLAG_ENV_KNOBS`]), for front ends that should fail loudly
/// instead of clamping: `Err` describes the first malformed value
/// and names the variable, ready for an `error[cli]` report. One
/// table, one parser — the library getters stay lenient so embedders
/// keep running.
pub fn validate_env() -> Result<(), String> {
    for (var, kind) in NUMERIC_ENV_KNOBS.into_iter().chain(FLAG_ENV_KNOBS) {
        if let Ok(raw) = std::env::var(var) {
            validate_env_value(var, &raw, kind)?;
        }
    }
    Ok(())
}

/// Strict validation of the two thread-count variables only. Kept
/// for callers that tolerate lenient budget knobs; new front ends
/// should call [`validate_env`].
pub fn validate_threads_env() -> Result<(), String> {
    for var in [THREADS_ENV, SIM_THREADS_ENV] {
        if let Ok(raw) = std::env::var(var) {
            validate_env_value(var, &raw, EnvKnobKind::ThreadCount)?;
        }
    }
    Ok(())
}

/// The strict check behind [`validate_env`], separated so it is
/// testable without touching process environment.
fn validate_env_value(var: &str, raw: &str, kind: EnvKnobKind) -> Result<(), String> {
    match kind {
        EnvKnobKind::Flag => match raw.trim().to_ascii_lowercase().as_str() {
            "" | "1" | "true" | "yes" | "on" | "0" | "false" | "no" | "off" => Ok(()),
            _ => Err(format!(
                "{var}={raw:?} is not a valid on/off flag \
                 (expected 1/true/yes/on or 0/false/no/off)"
            )),
        },
        EnvKnobKind::FaultPlan => gtpin_faults::FaultPlan::parse(raw)
            .map(|_| ())
            .map_err(|e| format!("{var}={raw:?} is not a valid fault plan: {e}")),
        EnvKnobKind::ThreadCount | EnvKnobKind::Limit => match (raw.trim().parse::<u64>(), kind) {
            (Ok(n), EnvKnobKind::ThreadCount) if n >= 1 => Ok(()),
            (Ok(_), EnvKnobKind::ThreadCount) => Err(format!(
                "{var}={raw:?} is not a valid thread count (must be >= 1)"
            )),
            (Ok(_), _) => Ok(()),
            (Err(_), EnvKnobKind::ThreadCount) => Err(format!(
                "{var}={raw:?} is not a valid thread count (expected a positive integer)"
            )),
            (Err(_), _) => Err(format!(
                "{var}={raw:?} is not a valid limit (expected an unsigned integer)"
            )),
        },
    }
}

/// Run `f(0..n)` across up to `threads` workers and return results in
/// index order.
///
/// Tasks are claimed through a shared counter (work stealing), so
/// uneven task costs balance; results are scattered back by index, so
/// the output is independent of claiming order. With `threads <= 1`
/// or `n <= 1` this is exactly `(0..n).map(f).collect()`.
pub fn parallel_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        if !gtpin_faults::enabled() {
            return (0..n).map(f).collect();
        }
        // Faults armed: the worker-panic seam is keyed per
        // `(task, attempt)`, never per worker, so the serial path
        // must offer the identical injection points and recovery
        // ladder as the fan-out below — otherwise whether the seam
        // even exists would depend on the worker count, and any
        // digest folding the injected accounting would move with
        // the ambient `GTPIN_THREADS`.
        return (0..n)
            .map(|i| {
                run_guarded(&f, i, 0).unwrap_or_else(|| {
                    gtpin_faults::note("recovered.worker_retry", 1);
                    run_guarded(&f, i, 1).unwrap_or_else(|| {
                        gtpin_faults::note("recovered.serial_fallback", 1);
                        gtpin_obs::warn!("par: task {i} panicked twice, running serial unguarded");
                        f(i)
                    })
                })
            })
            .collect();
    }
    let workers = threads.min(n);
    // Telemetry is observational only: timings and counts are
    // recorded, but nothing about claiming or collection changes, so
    // the determinism contract holds with GTPIN_OBS on or off.
    let obs = gtpin_obs::enabled();
    // With faults armed, workers run tasks under `catch_unwind` so an
    // injected (or genuine) panic loses one task, not the fan-out.
    // Failed tasks are retried once, then fall back to an unguarded
    // serial run with no injection — a pure task always completes,
    // and because recovery happens by task index the output stays
    // serial-identical at any panic rate. One branch when unarmed.
    let faults_on = gtpin_faults::enabled();
    let mut fanout = gtpin_obs::span("par.fanout");
    fanout.arg_u64("tasks", n as u64);
    fanout.arg_u64("workers", workers as u64);
    let start_ns = gtpin_obs::now_ns();
    let busy_ns_total = AtomicU64::new(0);
    let counter = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    let mut failed: Vec<usize> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let counter = &counter;
            let f = &f;
            let busy_ns_total = &busy_ns_total;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut lost: Vec<usize> = Vec::new();
                let mut busy_ns = 0u64;
                let mut first_claim = true;
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = gtpin_obs::now_ns();
                    if obs && first_claim {
                        first_claim = false;
                        gtpin_obs::hist_ns("par.queue_wait_ns", t0.saturating_sub(start_ns));
                    }
                    if faults_on {
                        match run_guarded(f, i, 0) {
                            Some(r) => local.push((i, r)),
                            None => lost.push(i),
                        }
                    } else {
                        local.push((i, f(i)));
                    }
                    if obs {
                        let dt = gtpin_obs::now_ns().saturating_sub(t0);
                        busy_ns += dt;
                        gtpin_obs::hist_ns("par.task_ns", dt);
                    }
                }
                if obs {
                    busy_ns_total.fetch_add(busy_ns, Ordering::Relaxed);
                    gtpin_obs::counter_add("par.tasks", local.len() as u64);
                    // Per-worker provenance: which pool worker did how
                    // much of this fan-out (wall-clock context; the
                    // deterministic outputs never depend on it).
                    gtpin_obs::global().instant(
                        "par.worker",
                        vec![
                            ("worker", gtpin_obs::ArgVal::U64(w as u64)),
                            ("tasks", gtpin_obs::ArgVal::U64(local.len() as u64)),
                            ("busy_ns", gtpin_obs::ArgVal::U64(busy_ns)),
                        ],
                    );
                }
                (local, lost)
            }));
        }
        for handle in handles {
            let (local, lost) = handle.join().expect("parallel worker panicked");
            for (i, r) in local {
                out[i] = Some(r);
            }
            failed.extend(lost);
        }
    });

    if !failed.is_empty() {
        // Degradation ladder, in task-index order so accounting and
        // results replay identically: retry once (still guarded, a
        // fresh injection decision), then unguarded serial with no
        // injection.
        failed.sort_unstable();
        for i in failed {
            gtpin_faults::note("recovered.worker_retry", 1);
            match run_guarded(&f, i, 1) {
                Some(r) => out[i] = Some(r),
                None => {
                    gtpin_faults::note("recovered.serial_fallback", 1);
                    gtpin_obs::warn!("par: task {i} panicked twice, running serial unguarded");
                    out[i] = Some(f(i));
                }
            }
        }
    }

    if obs {
        gtpin_obs::counter_add("par.fanouts", 1);
        let elapsed = gtpin_obs::now_ns().saturating_sub(start_ns);
        if elapsed > 0 {
            // Pool occupancy: busy worker-time over available
            // worker-time for this fan-out (1.0 = perfectly packed).
            let occupancy =
                busy_ns_total.load(Ordering::Relaxed) as f64 / (elapsed as f64 * workers as f64);
            gtpin_obs::gauge_set("par.occupancy", occupancy);
            gtpin_obs::hist_ns("par.occupancy_pct", (occupancy * 100.0) as u64);
        }
    }

    out.into_iter()
        .map(|r| r.expect("every index produced exactly once"))
        .collect()
}

/// Run task `i` under `catch_unwind`, with the `par.worker_panic`
/// fault able to fire per `(task, attempt)`. `None` means the task
/// panicked (injected or genuine) and the caller should walk the
/// recovery ladder.
fn run_guarded<R, F>(f: &F, i: usize, attempt: u64) -> Option<R>
where
    F: Fn(usize) -> R + Sync,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if gtpin_faults::should_inject(
            gtpin_faults::site::WORKER_PANIC,
            ((i as u64) << 8) | attempt,
        ) {
            std::panic::panic_any(gtpin_faults::INJECTED_PANIC_MARKER);
        }
        f(i)
    }))
    .ok()
}

/// Map a slice in parallel, preserving order: `parallel_map(items,
/// t, f)[i] == f(i, &items[i])` for every `i` and every `t`.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_indexed(items.len(), threads, |i| f(i, &items[i]))
}

/// Fill `out[i] = f(i)` with contiguous chunks fanned across
/// `threads` workers — the cheap shape for very large `out` (one
/// chunk per worker, no per-item claiming). Below `min_len` items the
/// serial loop runs instead; either way the result is identical.
pub fn parallel_fill<R, F>(out: &mut [R], threads: usize, min_len: usize, f: F)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = out.len();
    if threads <= 1 || n < min_len.max(2) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut span = gtpin_obs::span("par.fill");
    span.arg_u64("items", n as u64);
    span.arg_u64("workers", workers as u64);
    std::thread::scope(|scope| {
        for (c, piece) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = c * chunk;
                for (j, slot) in piece.iter_mut().enumerate() {
                    *slot = f(base + j);
                }
            });
        }
    });
}

/// The faults registry is process-global and one test in this crate
/// arms it at rate 1.0; any sibling test running `parallel_*`
/// concurrently (including the supervisor's) would both hit injected
/// panics and pollute the recovery accounting. Every test in this
/// crate takes this lock.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_guard as guard;

    #[test]
    fn parallel_map_matches_serial_at_every_thread_count() {
        let _guard = guard();
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(&items, 1, |i, &x| x * x + i as u64);
        for threads in 2..=8 {
            let par = parallel_map(&items, threads, |i, &x| x * x + i as u64);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_fill_matches_serial() {
        let _guard = guard();
        let mut serial = vec![0u64; 10_000];
        parallel_fill(&mut serial, 1, 0, |i| (i as u64).wrapping_mul(0x9E37));
        for threads in 2..=8 {
            let mut par = vec![0u64; 10_000];
            parallel_fill(&mut par, threads, 0, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_work_still_collects_in_order() {
        let _guard = guard();
        // Make early tasks slow so late tasks finish first.
        let out = parallel_indexed(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let _guard = guard();
        let empty: Vec<usize> = parallel_indexed(0, 8, |i| i);
        assert!(empty.is_empty());
        assert_eq!(parallel_indexed(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        let _guard = guard();
        assert!(configured_threads() >= 1);
        assert!(configured_sim_threads() >= 1);
    }

    #[test]
    fn strict_validation_rejects_what_the_lenient_getters_clamp() {
        let _guard = guard();
        for good in ["1", "4", " 8 ", "128"] {
            assert!(
                validate_env_value(THREADS_ENV, good, EnvKnobKind::ThreadCount).is_ok(),
                "{good}"
            );
        }
        for bad in ["0", "-1", "four", "4.5", "", "  "] {
            let err = validate_env_value(SIM_THREADS_ENV, bad, EnvKnobKind::ThreadCount)
                .expect_err("malformed counts must be rejected");
            assert!(
                err.contains(SIM_THREADS_ENV),
                "error names the variable: {err}"
            );
        }
    }

    #[test]
    fn limit_knobs_accept_zero_but_reject_garbage() {
        let _guard = guard();
        // Budget knobs: 0 means "disabled", so it parses.
        for good in ["0", "1", "250", " 1000 "] {
            assert!(
                validate_env_value(supervisor::DEADLINE_ENV, good, EnvKnobKind::Limit).is_ok(),
                "{good}"
            );
        }
        for bad in ["-1", "fast", "2.5", "", "1e9"] {
            let err = validate_env_value(supervisor::MAX_TASKS_ENV, bad, EnvKnobKind::Limit)
                .expect_err("malformed limits must be rejected");
            assert!(
                err.contains(supervisor::MAX_TASKS_ENV),
                "error names the variable: {err}"
            );
        }
        // The knob table names every supervised env variable exactly
        // once, so a new knob cannot dodge front-end validation.
        let names: Vec<&str> = NUMERIC_ENV_KNOBS.iter().map(|(n, _)| *n).collect();
        for var in [
            THREADS_ENV,
            SIM_THREADS_ENV,
            supervisor::DEADLINE_ENV,
            supervisor::BREAKER_ENV,
            supervisor::MAX_TASKS_ENV,
            supervisor::MAX_VIRTUAL_ENV,
            "GTPIN_LEASE_MS",
            "GTPIN_RETRY_MAX",
            "GTPIN_RETRY_BASE_MS",
            "GTPIN_CHAOS_MAX_RESTARTS",
            "GTPIN_CHAOS_SEED",
        ] {
            assert_eq!(names.iter().filter(|n| **n == var).count(), 1, "{var}");
        }
    }

    #[test]
    fn serve_and_chaos_knobs_strict_parse_as_limits() {
        let _guard = guard();
        for var in [
            "GTPIN_LEASE_MS",
            "GTPIN_RETRY_MAX",
            "GTPIN_RETRY_BASE_MS",
            "GTPIN_CHAOS_MAX_RESTARTS",
            "GTPIN_CHAOS_SEED",
        ] {
            assert!(validate_env_value(var, "0", EnvKnobKind::Limit).is_ok());
            assert!(validate_env_value(var, " 25 ", EnvKnobKind::Limit).is_ok());
            let err = validate_env_value(var, "soon", EnvKnobKind::Limit)
                .expect_err("garbage must be rejected");
            assert!(err.contains(var), "error names the variable: {err}");
        }
    }

    #[test]
    fn flag_knobs_accept_both_polarities_and_reject_typos() {
        let _guard = guard();
        for good in [
            "1", "true", "yes", "on", "0", "false", "no", "off", "", " ON ", "True",
        ] {
            assert!(
                validate_env_value("GTPIN_OBS", good, EnvKnobKind::Flag).is_ok(),
                "{good:?}"
            );
        }
        // `GTPIN_OBS=ture` used to silently disable telemetry; the
        // strict parser now names the variable and rejects it.
        for bad in ["ture", "2", "enable", "y", "1.0"] {
            let err = validate_env_value("GTPIN_OBS", bad, EnvKnobKind::Flag)
                .expect_err("typos must be rejected");
            assert!(err.contains("GTPIN_OBS"), "error names the variable: {err}");
        }
        let err = validate_env_value("GTPIN_PRESCREEN", "ture", EnvKnobKind::Flag)
            .expect_err("prescreen typo rejected");
        assert!(err.contains("GTPIN_PRESCREEN"));
    }

    #[test]
    fn fault_plan_knob_delegates_to_the_faults_parser() {
        let _guard = guard();
        let rated = format!("{}=1.0,seed=7", gtpin_faults::site::WORKER_PANIC);
        for good in ["", "0", "1", "on", "all=0.5", rated.as_str()] {
            assert!(
                validate_env_value(gtpin_faults::FAULTS_ENV, good, EnvKnobKind::FaultPlan).is_ok(),
                "{good:?}"
            );
        }
        for bad in ["journal.crash", "rate=fast", "=0.5"] {
            let err = validate_env_value(gtpin_faults::FAULTS_ENV, bad, EnvKnobKind::FaultPlan)
                .expect_err("malformed fault specs must be rejected");
            assert!(
                err.contains(gtpin_faults::FAULTS_ENV),
                "error names the variable: {err}"
            );
        }
    }

    #[test]
    fn injected_worker_panics_recover_to_serial_results() {
        let _guard = guard();
        // Even at rate 1.0 (every guarded attempt panics) the ladder
        // bottoms out in the unguarded serial fallback, so pure tasks
        // always complete with serial-identical results. The faults
        // registry is process-global; this is the only test in this
        // crate that installs a plan.
        gtpin_faults::install(gtpin_faults::FaultPlan::single(
            gtpin_faults::site::WORKER_PANIC,
            1.0,
            42,
        ));
        let serial: Vec<u64> = (0..40u64).map(|i| i * i + 1).collect();
        for threads in 2..=6 {
            let par = parallel_indexed(40, threads, |i| (i as u64) * (i as u64) + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
        let acc: std::collections::BTreeMap<String, u64> =
            gtpin_faults::take_accounting().into_iter().collect();
        assert_eq!(acc["recovered.worker_retry"], 40 * 5);
        assert_eq!(acc["recovered.serial_fallback"], 40 * 5);
        gtpin_faults::disable();
    }
}
