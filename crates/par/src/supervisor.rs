//! Supervised fan-out: deadlines, circuit breakers, and run budgets
//! on top of the deterministic parallel primitives.
//!
//! A long sweep (25 apps × 30 configurations) must not be taken down
//! by one misbehaving app, and must stop cleanly when it exhausts its
//! allowance. The [`Supervisor`] wraps `parallel_indexed` with three
//! policies, all evaluated **deterministically**:
//!
//! - **Per-task virtual-clock deadlines.** Every task reports its
//!   virtual cost (device virtual nanoseconds, never wall clock); a
//!   task over the deadline is demoted to
//!   [`Outcome::DeadlineExceeded`] and counts as a failure.
//! - **Per-group circuit breakers.** After N *consecutive* failures
//!   within a group (an app), the breaker opens: the group is marked
//!   degraded and its remaining units are skipped rather than run —
//!   the sweep continues instead of aborting.
//! - **A global run budget.** Max tasks and max virtual time across
//!   the whole run; once exhausted, every remaining unit is skipped
//!   with [`Outcome::SkippedBudget`] and the caller reports a
//!   partial result.
//!
//! Determinism comes from fixed structure, not timing: units are
//! dispatched in **rounds** of `batch` consecutive indices (a config
//! knob, independent of the thread count), rounds run through the
//! order-preserving fan-out, and all policy state advances by folding
//! outcomes in index order. The same inputs therefore produce the
//! same outcomes at any `GTPIN_THREADS`.
//!
//! Resume support: [`Supervisor::run_units`] accepts a `cached`
//! lookup. A unit with a journaled outcome is **replayed** — its
//! recorded outcome feeds the breaker and budget exactly as a fresh
//! execution would — so a resumed sweep walks the identical policy
//! trajectory and produces a bit-identical report.

use std::collections::BTreeMap;

/// The terminal state of one supervised unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<R, E> {
    /// The unit completed within its deadline.
    Done {
        /// The unit's result.
        value: R,
        /// Virtual nanoseconds the unit consumed.
        virtual_ns: u64,
    },
    /// The unit ran and failed.
    Failed(E),
    /// The unit completed but blew its virtual-clock deadline; the
    /// result is discarded and the unit counts as a failure.
    DeadlineExceeded {
        /// Virtual nanoseconds the unit consumed (> deadline).
        virtual_ns: u64,
    },
    /// Skipped: the group's circuit breaker was open.
    SkippedBreakerOpen,
    /// Skipped: the global run budget was exhausted.
    SkippedBudget,
}

impl<R, E> Outcome<R, E> {
    /// Stable short label, used for accounting and journal records.
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Done { .. } => "done",
            Outcome::Failed(_) => "failed",
            Outcome::DeadlineExceeded { .. } => "deadline",
            Outcome::SkippedBreakerOpen => "skip-breaker",
            Outcome::SkippedBudget => "skip-budget",
        }
    }

    /// Virtual time this outcome charges against the budget.
    pub fn virtual_ns(&self) -> u64 {
        match self {
            Outcome::Done { virtual_ns, .. } | Outcome::DeadlineExceeded { virtual_ns } => {
                *virtual_ns
            }
            _ => 0,
        }
    }

    /// True for `Done`.
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done { .. })
    }

    /// True for the outcomes that trip breakers (`Failed`,
    /// `DeadlineExceeded`).
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Failed(_) | Outcome::DeadlineExceeded { .. })
    }
}

/// Policy knobs for a supervised run. Every limit is optional; the
/// zero-config default supervises nothing away (no deadline, breaker
/// at 3, no budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Per-task virtual-time deadline; `None` = unlimited.
    pub deadline_virtual_ns: Option<u64>,
    /// Consecutive failures within a group that open its breaker;
    /// `0` disables circuit breaking.
    pub breaker_threshold: u32,
    /// Max units actually run (not skipped) across the whole run.
    pub max_tasks: Option<u64>,
    /// Max cumulative virtual nanoseconds across the whole run.
    pub max_virtual_ns: Option<u64>,
    /// Units per dispatch round. Policy checks happen between
    /// rounds, so this bounds over-dispatch after a breaker opens or
    /// the budget runs out. Independent of the thread count — the
    /// outcome sequence is identical at any `GTPIN_THREADS`.
    pub batch: usize,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            deadline_virtual_ns: None,
            breaker_threshold: 3,
            max_tasks: None,
            max_virtual_ns: None,
            batch: 8,
        }
    }
}

/// Environment variable: per-task deadline in virtual milliseconds.
pub const DEADLINE_ENV: &str = "GTPIN_DEADLINE_MS";
/// Environment variable: breaker threshold (consecutive failures).
pub const BREAKER_ENV: &str = "GTPIN_BREAKER";
/// Environment variable: max units run across the sweep.
pub const MAX_TASKS_ENV: &str = "GTPIN_MAX_TASKS";
/// Environment variable: max cumulative virtual milliseconds.
pub const MAX_VIRTUAL_ENV: &str = "GTPIN_MAX_VIRTUAL_MS";

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl SupervisorConfig {
    /// Defaults overridden by the `GTPIN_DEADLINE_MS`,
    /// `GTPIN_BREAKER`, `GTPIN_MAX_TASKS`, and `GTPIN_MAX_VIRTUAL_MS`
    /// environment knobs (milliseconds are virtual time).
    pub fn from_env() -> SupervisorConfig {
        let mut config = SupervisorConfig::default();
        if let Some(ms) = env_u64(DEADLINE_ENV) {
            config.deadline_virtual_ns = Some(ms.saturating_mul(1_000_000));
        }
        if let Some(n) = env_u64(BREAKER_ENV) {
            config.breaker_threshold = n as u32;
        }
        if let Some(n) = env_u64(MAX_TASKS_ENV) {
            config.max_tasks = Some(n);
        }
        if let Some(ms) = env_u64(MAX_VIRTUAL_ENV) {
            config.max_virtual_ns = Some(ms.saturating_mul(1_000_000));
        }
        config
    }
}

#[derive(Debug, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open: bool,
}

/// The supervisor's answer to "may this unit start right now?" —
/// the admission-ticket half of the policy, usable one unit at a
/// time (a served session) as well as in batches
/// ([`Supervisor::run_units`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Run it; report the terminal [`Outcome`] back through
    /// [`Supervisor::finish`].
    Granted,
    /// The group's circuit breaker is open — shed the unit instead
    /// of running it.
    RejectedBreakerOpen,
    /// The global run budget is exhausted — shed the unit instead
    /// of running it.
    RejectedBudget,
}

/// Aggregate accounting for a supervised run, for reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Units that actually ran (or replayed as having run).
    pub tasks_run: u64,
    /// Units that finished successfully within deadline.
    pub completed: u64,
    /// Units that ran and failed.
    pub failed: u64,
    /// Units demoted for blowing their virtual deadline.
    pub deadline_exceeded: u64,
    /// Units skipped behind an open breaker.
    pub skipped_breaker: u64,
    /// Units skipped after budget exhaustion.
    pub skipped_budget: u64,
    /// Cumulative virtual time charged.
    pub virtual_ns_spent: u64,
    /// True once any budget limit was hit.
    pub budget_exhausted: bool,
    /// Groups whose breaker opened, in open order.
    pub degraded_groups: Vec<String>,
}

/// Policy state threaded across every `run_units` call of one sweep.
#[derive(Debug)]
pub struct Supervisor {
    config: SupervisorConfig,
    breakers: BTreeMap<String, BreakerState>,
    report: SupervisorReport,
}

impl Supervisor {
    /// A fresh supervisor under `config`.
    pub fn new(config: SupervisorConfig) -> Supervisor {
        Supervisor {
            config: SupervisorConfig {
                batch: config.batch.max(1),
                ..config
            },
            breakers: BTreeMap::new(),
            report: SupervisorReport::default(),
        }
    }

    /// The active policy knobs.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// True once any budget limit has been hit.
    pub fn budget_exhausted(&self) -> bool {
        self.report.budget_exhausted
    }

    /// True when `group`'s breaker is open.
    pub fn group_degraded(&self, group: &str) -> bool {
        self.breakers.get(group).is_some_and(|b| b.open)
    }

    /// Accounting snapshot.
    pub fn report(&self) -> SupervisorReport {
        self.report.clone()
    }

    fn out_of_budget(&self) -> bool {
        let over_tasks = self
            .config
            .max_tasks
            .is_some_and(|m| self.report.tasks_run >= m);
        let over_virtual = self
            .config
            .max_virtual_ns
            .is_some_and(|m| self.report.virtual_ns_spent >= m);
        over_tasks || over_virtual
    }

    /// Fold one outcome (fresh or replayed) into breaker, budget,
    /// and accounting state — always in unit-index order.
    fn absorb<R, E>(&mut self, group: &str, outcome: &Outcome<R, E>) {
        match outcome {
            Outcome::Done { virtual_ns, .. } => {
                self.report.tasks_run += 1;
                self.report.completed += 1;
                self.report.virtual_ns_spent += virtual_ns;
                self.breakers
                    .entry(group.to_string())
                    .or_default()
                    .consecutive_failures = 0;
            }
            Outcome::Failed(_) | Outcome::DeadlineExceeded { .. } => {
                self.report.tasks_run += 1;
                if outcome.is_failure() {
                    match outcome {
                        Outcome::Failed(_) => self.report.failed += 1,
                        _ => self.report.deadline_exceeded += 1,
                    }
                }
                self.report.virtual_ns_spent += outcome.virtual_ns();
                let threshold = self.config.breaker_threshold;
                let breaker = self.breakers.entry(group.to_string()).or_default();
                breaker.consecutive_failures += 1;
                if threshold > 0 && breaker.consecutive_failures >= threshold && !breaker.open {
                    breaker.open = true;
                    self.report.degraded_groups.push(group.to_string());
                    gtpin_obs::counter_add("supervisor.breaker_opened", 1);
                    gtpin_faults::note("supervisor.breaker_open", 1);
                }
            }
            Outcome::SkippedBreakerOpen => self.report.skipped_breaker += 1,
            Outcome::SkippedBudget => self.report.skipped_budget += 1,
        }
        if !self.report.budget_exhausted && self.out_of_budget() {
            self.report.budget_exhausted = true;
            gtpin_obs::counter_add("supervisor.budget_exhausted", 1);
        }
    }

    /// One-unit admission ticket: may a unit of `group` start right
    /// now? Pure policy read plus the budget-exhaustion latch — the
    /// same gates [`Supervisor::run_units`] applies between rounds,
    /// exposed so a long-running service can admit sessions one at a
    /// time through identical policy state. Budget is checked before
    /// the breaker, mirroring the between-round order.
    pub fn admit(&mut self, group: &str) -> Admission {
        if self.out_of_budget() {
            if !self.report.budget_exhausted {
                self.report.budget_exhausted = true;
                gtpin_obs::counter_add("supervisor.budget_exhausted", 1);
            }
            return Admission::RejectedBudget;
        }
        if self.group_degraded(group) {
            return Admission::RejectedBreakerOpen;
        }
        Admission::Granted
    }

    /// Judge one fresh result against the per-task deadline — the
    /// demotion [`Supervisor::run_units`] applies to every fan-out
    /// result, exposed for single-unit callers.
    pub fn judge<R, E>(&self, result: Result<(R, u64), E>) -> Outcome<R, E> {
        match result {
            Ok((value, virtual_ns)) => {
                if self
                    .config
                    .deadline_virtual_ns
                    .is_some_and(|d| virtual_ns > d)
                {
                    Outcome::DeadlineExceeded { virtual_ns }
                } else {
                    Outcome::Done { value, virtual_ns }
                }
            }
            Err(e) => Outcome::Failed(e),
        }
    }

    /// Fold one terminal outcome into breaker, budget, and
    /// accounting state. Every admitted unit must be finished
    /// exactly once; replayed (journaled) outcomes go through here
    /// too, so a resumed service walks the identical policy
    /// trajectory.
    pub fn finish<R, E>(&mut self, group: &str, outcome: &Outcome<R, E>) {
        self.absorb(group, outcome);
    }

    /// Run `items.len()` units of `group` under supervision,
    /// returning one [`Outcome`] per unit in index order.
    ///
    /// `cached(i)` supplies a journaled outcome for unit `i` — it is
    /// **replayed** (fed to policy state, never re-run). `run(i,
    /// &items[i])` executes a fresh unit, returning the value and its
    /// virtual cost. Units are dispatched in rounds of
    /// `config.batch`; policy is re-checked between rounds, so the
    /// outcome sequence is a pure function of the config, the cached
    /// set, and the task results — identical at any thread count.
    pub fn run_units<T, R, E>(
        &mut self,
        group: &str,
        items: &[T],
        threads: usize,
        cached: impl Fn(usize) -> Option<Outcome<R, E>>,
        run: impl Fn(usize, &T) -> Result<(R, u64), E> + Sync,
    ) -> Vec<Outcome<R, E>>
    where
        T: Sync,
        R: Send,
        E: Send,
    {
        let n = items.len();
        let mut span = gtpin_obs::span("supervisor.units");
        if span.active() {
            span.arg_str("group", group.to_string());
            span.arg_u64("units", n as u64);
        }
        let mut out: Vec<Outcome<R, E>> = Vec::with_capacity(n);
        let mut index = 0usize;
        while index < n {
            let round_end = (index + self.config.batch).min(n);
            // Policy gates between rounds: an exhausted budget or an
            // open breaker skips everything that has not started.
            if self.out_of_budget() {
                self.report.budget_exhausted = true;
                for i in index..n {
                    let outcome = cached(i).unwrap_or(Outcome::SkippedBudget);
                    self.absorb(group, &outcome);
                    out.push(outcome);
                }
                break;
            }
            if self.group_degraded(group) {
                for i in index..n {
                    let outcome = cached(i).unwrap_or(Outcome::SkippedBreakerOpen);
                    self.absorb(group, &outcome);
                    out.push(outcome);
                }
                break;
            }

            // Fresh units of this round fan out; cached ones replay.
            let mut round: Vec<Option<Outcome<R, E>>> = (index..round_end).map(&cached).collect();
            let fresh: Vec<usize> = (index..round_end)
                .filter(|&i| round[i - index].is_none())
                .collect();
            let results = crate::parallel_indexed(fresh.len(), threads, |j| {
                let i = fresh[j];
                run(i, &items[i])
            });
            for (j, result) in fresh.iter().zip(results) {
                round[j - index] = Some(self.judge(result));
            }
            for outcome in round {
                let outcome = outcome.expect("every round slot resolved");
                self.absorb(group, &outcome);
                out.push(outcome);
            }
            index = round_end;
        }
        gtpin_obs::counter_add("supervisor.units", n as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds<R, E>(outcomes: &[Outcome<R, E>]) -> Vec<&'static str> {
        outcomes.iter().map(Outcome::kind).collect()
    }

    /// Tasks 3..6 fail; everything else succeeds with cost 10ns.
    fn flaky(i: usize, _: &u64) -> Result<(u64, u64), String> {
        if (3..6).contains(&i) {
            Err(format!("task {i} failed"))
        } else {
            Ok((i as u64, 10))
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_skips_the_rest() {
        let _guard = crate::test_guard();
        let items: Vec<u64> = (0..16).collect();
        let mut sup = Supervisor::new(SupervisorConfig {
            breaker_threshold: 3,
            batch: 2,
            ..SupervisorConfig::default()
        });
        let out = sup.run_units("app-a", &items, 1, |_| None, flaky);
        // Rounds of 2: failures at 3, 4, 5 — breaker opens folding
        // index 5 (round {4,5} completes), rest skipped.
        assert_eq!(
            kinds(&out),
            vec![
                "done",
                "done",
                "done",
                "failed",
                "failed",
                "failed",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
                "skip-breaker",
            ]
        );
        assert!(sup.group_degraded("app-a"));
        assert!(!sup.group_degraded("app-b"));
        assert_eq!(sup.report().degraded_groups, vec!["app-a".to_string()]);
        assert_eq!(sup.report().skipped_breaker, 10);
    }

    #[test]
    fn success_resets_the_consecutive_counter() {
        let _guard = crate::test_guard();
        let items: Vec<u64> = (0..12).collect();
        let mut sup = Supervisor::new(SupervisorConfig {
            breaker_threshold: 3,
            batch: 1,
            ..SupervisorConfig::default()
        });
        // Alternate fail/ok: never 3 consecutive, breaker stays shut.
        let out = sup.run_units(
            "app",
            &items,
            1,
            |_| None,
            |i, _| {
                if i % 2 == 0 {
                    Err("even fails".to_string())
                } else {
                    Ok((i as u64, 1))
                }
            },
        );
        assert!(!sup.group_degraded("app"));
        assert_eq!(out.iter().filter(|o| o.is_failure()).count(), 6);
    }

    #[test]
    fn deadline_demotes_slow_tasks() {
        let _guard = crate::test_guard();
        let items: Vec<u64> = (0..6).collect();
        let mut sup = Supervisor::new(SupervisorConfig {
            deadline_virtual_ns: Some(100),
            breaker_threshold: 0,
            ..SupervisorConfig::default()
        });
        let out = sup.run_units(
            "app",
            &items,
            4,
            |_| None,
            |i, _| Ok::<_, String>((i as u64, if i == 2 { 500 } else { 50 })),
        );
        assert_eq!(out[2], Outcome::DeadlineExceeded { virtual_ns: 500 });
        assert_eq!(out.iter().filter(|o| o.is_done()).count(), 5);
        let report = sup.report();
        assert_eq!(report.deadline_exceeded, 1);
        assert_eq!(report.virtual_ns_spent, 5 * 50 + 500);
    }

    #[test]
    fn budget_exhaustion_skips_cleanly() {
        let _guard = crate::test_guard();
        let items: Vec<u64> = (0..10).collect();
        let mut sup = Supervisor::new(SupervisorConfig {
            max_tasks: Some(4),
            batch: 2,
            ..SupervisorConfig::default()
        });
        let out = sup.run_units(
            "app",
            &items,
            2,
            |_| None,
            |i, _| Ok::<_, String>((i as u64, 1)),
        );
        assert_eq!(
            kinds(&out),
            vec![
                "done",
                "done",
                "done",
                "done",
                "skip-budget",
                "skip-budget",
                "skip-budget",
                "skip-budget",
                "skip-budget",
                "skip-budget",
            ]
        );
        assert!(sup.budget_exhausted());
        let report = sup.report();
        assert_eq!(report.tasks_run, 4);
        assert_eq!(report.skipped_budget, 6);
    }

    #[test]
    fn virtual_budget_spans_groups() {
        let _guard = crate::test_guard();
        let mut sup = Supervisor::new(SupervisorConfig {
            max_virtual_ns: Some(100),
            batch: 4,
            ..SupervisorConfig::default()
        });
        let items: Vec<u64> = (0..4).collect();
        let a = sup.run_units(
            "a",
            &items,
            1,
            |_| None,
            |i, _| Ok::<_, String>((i as u64, 30)),
        );
        assert!(a.iter().all(|o| o.is_done()));
        assert!(sup.budget_exhausted(), "120ns spent of 100ns budget");
        let b = sup.run_units(
            "b",
            &items,
            1,
            |_| None,
            |i, _| Ok::<_, String>((i as u64, 30)),
        );
        assert!(b.iter().all(|o| *o == Outcome::SkippedBudget));
    }

    #[test]
    fn outcomes_identical_at_every_thread_count() {
        let _guard = crate::test_guard();
        let items: Vec<u64> = (0..23).collect();
        let run_at = |threads: usize| {
            let mut sup = Supervisor::new(SupervisorConfig {
                breaker_threshold: 2,
                batch: 4,
                deadline_virtual_ns: Some(90),
                ..SupervisorConfig::default()
            });
            let out = sup.run_units(
                "app",
                &items,
                threads,
                |_| None,
                |i, _| {
                    if i % 7 == 3 {
                        Err(format!("flake {i}"))
                    } else {
                        Ok((i as u64 * 3, (i as u64 * 13) % 120))
                    }
                },
            );
            (kinds(&out), sup.report())
        };
        let serial = run_at(1);
        for threads in 2..=8 {
            assert_eq!(run_at(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn single_unit_admission_matches_batch_policy() {
        let _guard = crate::test_guard();
        let config = SupervisorConfig {
            breaker_threshold: 2,
            max_tasks: Some(5),
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(config);
        // Two consecutive failures open app-a's breaker.
        for _ in 0..2 {
            assert_eq!(sup.admit("app-a"), Admission::Granted);
            let o: Outcome<u64, String> = sup.judge(Err("boom".to_string()));
            sup.finish("app-a", &o);
        }
        assert_eq!(sup.admit("app-a"), Admission::RejectedBreakerOpen);
        // Other groups still run — until the task budget (5) is gone.
        for _ in 0..3 {
            assert_eq!(sup.admit("app-b"), Admission::Granted);
            let o: Outcome<u64, String> = sup.judge(Ok((1, 10)));
            sup.finish("app-b", &o);
        }
        assert_eq!(sup.admit("app-b"), Admission::RejectedBudget);
        assert!(sup.budget_exhausted());
        // Budget outranks the breaker, mirroring run_units' gates.
        assert_eq!(sup.admit("app-a"), Admission::RejectedBudget);
        let report = sup.report();
        assert_eq!(report.tasks_run, 5);
        assert_eq!(report.failed, 2);
        assert_eq!(report.degraded_groups, vec!["app-a".to_string()]);
    }

    #[test]
    fn judge_applies_the_deadline_demotion() {
        let _guard = crate::test_guard();
        let sup = Supervisor::new(SupervisorConfig {
            deadline_virtual_ns: Some(100),
            ..SupervisorConfig::default()
        });
        assert_eq!(
            sup.judge(Ok::<_, String>((7u64, 99))),
            Outcome::Done {
                value: 7,
                virtual_ns: 99
            }
        );
        assert_eq!(
            sup.judge(Ok::<_, String>((7u64, 101))),
            Outcome::DeadlineExceeded { virtual_ns: 101 }
        );
    }

    #[test]
    fn cached_outcomes_replay_the_same_policy_trajectory() {
        let _guard = crate::test_guard();
        let items: Vec<u64> = (0..16).collect();
        let config = SupervisorConfig {
            breaker_threshold: 3,
            batch: 2,
            ..SupervisorConfig::default()
        };
        let mut fresh_sup = Supervisor::new(config.clone());
        let fresh = fresh_sup.run_units("app", &items, 3, |_| None, flaky);

        // Resume after "crash at unit 5": outcomes 0..5 replay from
        // the journal, the rest run fresh.
        let prefix: Vec<Outcome<u64, String>> = fresh[..5].to_vec();
        let mut resumed_sup = Supervisor::new(config);
        let resumed = resumed_sup.run_units("app", &items, 3, |i| prefix.get(i).cloned(), flaky);
        assert_eq!(resumed, fresh);
        assert_eq!(resumed_sup.report(), fresh_sup.report());
    }
}
