//! The `gtpin serve` wire protocol.
//!
//! One connection carries one session: the client writes a single
//! framed [`Request`], the daemon streams framed [`Response`]
//! messages back and closes. Frames reuse the workspace-wide
//! `[len: u32 LE][fnv64: u64 LE][payload]` codec from
//! [`gtpin_obs::frame`] — the exact framing the durable journal and
//! the binary telemetry journal already tear-check — so a truncated
//! or corrupted frame is always detected, never partially decoded.
//! Payloads are externally-tagged JSON (the workspace serde).
//!
//! Robustness contract, pinned by `tests/prop_wire.rs`:
//!
//! - any request/response round-trips bit-exactly through
//!   encode → decode;
//! - truncating an encoded stream at **every** byte offset of its
//!   final frame yields [`WireError::Torn`] for that frame (the
//!   intact prefix still decodes) — never a panic, never a
//!   partial decode;
//! - flipping any payload byte is detected by the checksum.

use gtpin_obs::frame::{frame_record, split_record, RecordSplit, RECORD_HEADER};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Upper bound on one frame's payload. A daemon reading a
/// length-prefix from an untrusted client must not allocate
/// whatever the prefix claims; anything larger than this is a
/// protocol violation, not an allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// One client request — one session of daemon work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Profile `app` once (native + instrumented) and report the
    /// joined characterization.
    Profile {
        /// Application name (see `gtpin list`).
        app: String,
        /// Workload scale: `test` or `default`.
        scale: String,
    },
    /// Explore all 30 interval/feature configurations of `app` and
    /// report the error-minimizing and co-optimized selections.
    Explore {
        /// Application name.
        app: String,
        /// Workload scale: `test` or `default`.
        scale: String,
        /// Co-optimization error threshold, percent.
        threshold_pct: f64,
    },
    /// Detailed-simulate the first `launches` launches of `app` and
    /// report the deterministic stats digest.
    Sim {
        /// Application name.
        app: String,
        /// Max launches to simulate (0 = all).
        launches: u64,
    },
    /// Run the static lints and the instrumentation-safety verifier
    /// over every kernel of `app`.
    Lint {
        /// Application name.
        app: String,
    },
    /// Run the structural analysis (dominators, loop forest, value
    /// ranges, static cycle estimate) over every kernel of `app`.
    /// Per-kernel analyses are memoized by kernel content hash, so
    /// apps sharing kernels share the work across requests.
    Analyze {
        /// Application name.
        app: String,
    },
}

impl Request {
    /// Stable label of the request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Profile { .. } => "profile",
            Request::Explore { .. } => "explore",
            Request::Sim { .. } => "sim",
            Request::Lint { .. } => "lint",
            Request::Analyze { .. } => "analyze",
        }
    }

    /// The application this session is about — the supervisor's
    /// breaker group, so one misbehaving app cannot poison the
    /// daemon for every other app.
    pub fn app(&self) -> &str {
        match self {
            Request::Profile { app, .. }
            | Request::Explore { app, .. }
            | Request::Sim { app, .. }
            | Request::Lint { app }
            | Request::Analyze { app } => app,
        }
    }

    /// Deterministic session identity: equal requests share one key
    /// (and therefore one journaled/memoized response), regardless
    /// of which connection, thread, or daemon lifetime serves them.
    pub fn session_key(&self) -> String {
        match self {
            Request::Profile { app, scale } => format!("profile/{app}/{scale}"),
            Request::Explore {
                app,
                scale,
                threshold_pct,
            } => format!("explore/{app}/{scale}/{threshold_pct}"),
            Request::Sim { app, launches } => format!("sim/{app}/{launches}"),
            Request::Lint { app } => format!("lint/{app}"),
            Request::Analyze { app } => format!("analyze/{app}"),
        }
    }
}

/// One framed daemon → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// One line-oriented piece of the session's report. The
    /// concatenation of all chunks is the deterministic session
    /// response — byte-identical between a fresh computation, a
    /// memoized replay, and a crash-resumed daemon.
    Chunk {
        /// Report text (may span multiple lines).
        text: String,
    },
    /// Terminal: the session completed. No volatile fields — a
    /// resumed daemon's `Done` is bit-identical to a fresh one's.
    Done,
    /// Terminal: the session failed or was shed. `kind` matches the
    /// CLI's `error[kind]` taxonomy (`busy`, `budget`, `deadline`,
    /// `session`, `cli`, ...).
    Err {
        /// Stable error-kind label.
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

/// Errors from the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// A frame was truncated or failed its checksum.
    Torn,
    /// A frame's length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        claimed: usize,
    },
    /// A frame's payload was not a valid message.
    BadPayload(String),
    /// The underlying stream failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Torn => f.write_str("torn frame (truncated or checksum mismatch)"),
            WireError::Oversized { claimed } => {
                write!(f, "frame claims {claimed} bytes (max {MAX_FRAME})")
            }
            WireError::BadPayload(e) => write!(f, "bad frame payload: {e}"),
            WireError::Io(e) => write!(f, "stream I/O failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Encode one message as a single framed record.
pub fn encode_message<T: Serialize>(message: &T) -> Result<Vec<u8>, WireError> {
    let json = serde_json::to_string(message).map_err(|e| WireError::BadPayload(e.to_string()))?;
    let mut out = Vec::with_capacity(RECORD_HEADER + json.len());
    frame_record(json.as_bytes(), &mut out);
    Ok(out)
}

/// Decode every framed payload in `bytes`. A torn tail fails the
/// whole decode — byte-stream decoding is for tests and offline
/// tooling; live connections read frame-at-a-time via
/// [`read_message`].
pub fn decode_payloads(bytes: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    loop {
        match split_record(&bytes[offset..]) {
            RecordSplit::Done => return Ok(out),
            RecordSplit::Torn => return Err(WireError::Torn),
            RecordSplit::Record { payload, consumed } => {
                out.push(payload.to_vec());
                offset += consumed;
            }
        }
    }
}

/// Decode every framed message in `bytes`.
pub fn decode_messages<T: Deserialize>(bytes: &[u8]) -> Result<Vec<T>, WireError> {
    decode_payloads(bytes)?
        .into_iter()
        .map(|p| {
            let text = std::str::from_utf8(&p).map_err(|e| WireError::BadPayload(e.to_string()))?;
            serde_json::from_str(text).map_err(|e| WireError::BadPayload(e.to_string()))
        })
        .collect()
}

/// Write one framed message to a stream.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, message: &T) -> Result<(), WireError> {
    let frame = encode_message(message)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message off a stream. `Ok(None)` is a clean EOF
/// *between* frames (the peer finished); EOF inside a frame, a
/// checksum mismatch, or an oversized length prefix are errors —
/// the torn-frame rules of the durable journal, applied to a live
/// socket.
pub fn read_message<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, WireError> {
    let mut header = [0u8; RECORD_HEADER];
    let mut filled = 0usize;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::Torn);
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { claimed: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Torn
        } else {
            WireError::Io(e)
        }
    })?;
    let want = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    if gtpin_obs::frame::fnv64(&payload) != want {
        return Err(WireError::Torn);
    }
    let text = std::str::from_utf8(&payload).map_err(|e| WireError::BadPayload(e.to_string()))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| WireError::BadPayload(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_a_stream() {
        let req = Request::Explore {
            app: "cb-gaussian-image".into(),
            scale: "test".into(),
            threshold_pct: 3.0,
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &req).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back: Request = read_message(&mut cursor).unwrap().expect("one frame");
        assert_eq!(back, req);
        assert_eq!(read_message::<_, Request>(&mut cursor).unwrap(), None);
    }

    #[test]
    fn responses_stream_in_order() {
        let msgs = vec![
            Response::Chunk {
                text: "line one\n".into(),
            },
            Response::Chunk {
                text: "line two\n".into(),
            },
            Response::Done,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let back: Vec<Response> = decode_messages(&buf).unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        let mut cursor = std::io::Cursor::new(buf);
        match read_message::<_, Response>(&mut cursor) {
            Err(WireError::Oversized { .. }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_torn_not_a_panic() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Response::Done).unwrap();
        for cut in 1..buf.len() {
            let mut cursor = std::io::Cursor::new(&buf[..cut]);
            match read_message::<_, Response>(&mut cursor) {
                Err(WireError::Torn) => {}
                other => panic!("cut {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn session_keys_are_identity() {
        let a = Request::Sim {
            app: "x".into(),
            launches: 4,
        };
        let b = Request::Sim {
            app: "x".into(),
            launches: 4,
        };
        let c = Request::Sim {
            app: "x".into(),
            launches: 5,
        };
        assert_eq!(a.session_key(), b.session_key());
        assert_ne!(a.session_key(), c.session_key());
        assert_eq!(a.kind(), "sim");
        assert_eq!(a.app(), "x");
    }
}
