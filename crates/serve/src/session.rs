//! The session engine: admission control, memoized computation,
//! journaled outcomes, and crash resume.
//!
//! One [`SessionEngine`] lives for the lifetime of the daemon and is
//! shared by every connection thread. A session walks a fixed
//! pipeline:
//!
//! 1. **Response cache.** Equal requests share one
//!    [`Request::session_key`]; a key with a journaled/cached
//!    terminal result is served directly — no admission charge, no
//!    recompute, bit-identical bytes.
//! 2. **Admission ticket.** The concurrent-session cap sheds with
//!    `error[busy]`; [`Supervisor::admit`] sheds `error[budget]`
//!    (global budget) or `error[busy]` (per-app breaker open) —
//!    deterministic typed errors, never a queue.
//! 3. **Journal Start.** The request is recorded before compute, so
//!    a SIGKILL mid-session leaves a Start without a Finish and the
//!    resumed daemon knows to recompute it.
//! 4. **Compute under `catch_unwind`.** A panicking handler (the
//!    `serve.session_crash` fault site) is demoted to a typed
//!    `error[session]` outcome; sibling sessions never notice.
//! 5. **Judge + finish.** The supervisor applies the virtual-clock
//!    deadline and folds the outcome into breaker/budget state —
//!    the same policy trajectory `run_units` walks for batch sweeps.
//! 6. **Journal Finish + cache.** The terminal result is durable
//!    before it is delivered; delivery failures
//!    (`serve.conn_drop`) lose nothing.
//!
//! Cross-request memoization: the expensive artifacts — the one-time
//! profiling pass and the 30-configuration interval-table sweep —
//! are cached per `(app, scale)`, so a `profile` and any number of
//! `explore`s at different thresholds share one pass.

use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use gpu_device::detailed::{DetailedConfig, DetailedSimulator};
use gpu_device::{Gpu, GpuConfig, GpuGeneration};
use gtpin_durable::Journal;
use gtpin_faults::site;
use gtpin_par::{Admission, Outcome, Supervisor, SupervisorConfig};
use ocl_runtime::runtime::{OclRuntime, Schedule};
use serde::{Deserialize, Serialize};
use simpoint::SimpointConfig;
use subset_select::{default_approx_target, profile_app, Exploration, ProfiledApp};
use workloads::{build_program, spec_by_name, Scale};

use crate::wire::{self, Request, Response};
use crate::ServeError;

/// Env knob: session lease length in **virtual** milliseconds
/// (strict-parsed by `validate_env`; `0` disables leases).
pub const LEASE_ENV: &str = "GTPIN_LEASE_MS";

/// Default lease length in virtual milliseconds — generous relative
/// to test-scale virtual time, so only genuinely stuck sessions
/// (whose journal Start outlives this much of everyone else's
/// virtual work) are reaped.
pub const DEFAULT_LEASE_VIRTUAL_MS: u64 = 60_000;

/// Daemon configuration. Supervision knobs come from
/// [`SupervisorConfig::from_env`] (`GTPIN_DEADLINE_MS`,
/// `GTPIN_BREAKER`, `GTPIN_MAX_TASKS`, `GTPIN_MAX_VIRTUAL_MS`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path the daemon binds.
    pub socket: PathBuf,
    /// Session journal directory; `None` disables durability.
    pub journal_dir: Option<PathBuf>,
    /// Recover `journal_dir` instead of creating it fresh.
    pub resume: bool,
    /// Concurrent-session cap; the N+1th simultaneous session sheds
    /// with `error[busy]` instead of queueing.
    pub max_sessions: usize,
    /// Admission policy (deadline, breaker, budget).
    pub supervisor: SupervisorConfig,
    /// Worker threads for per-session fan-out: exploration workers,
    /// executor hardware-thread fan-out, and detailed-sim shard
    /// workers are all pinned here, never to the ambient
    /// `GTPIN_THREADS`, so a session's behavior (including which
    /// fault seams it exercises) is a pure function of this config.
    pub threads: usize,
    /// Session lease length in virtual milliseconds (`GTPIN_LEASE_MS`,
    /// 0 disables): each journaled Start carries a virtual-clock
    /// deadline, and the resume reaper reclaims pending sessions
    /// whose deadline the clock has passed into `error[lease]`
    /// instead of recomputing them.
    pub lease_virtual_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            socket: crate::default_socket(),
            journal_dir: None,
            resume: false,
            max_sessions: 8,
            supervisor: SupervisorConfig::default(),
            threads: 1,
            lease_virtual_ms: std::env::var(LEASE_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_LEASE_VIRTUAL_MS),
        }
    }
}

/// The terminal result of one session — exactly what gets journaled,
/// cached, and rendered to response frames. No volatile fields: a
/// resumed daemon's result is bit-identical to a fresh one's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionResult {
    /// The session completed; `report` is the full deterministic
    /// report text.
    Done {
        /// Report text, streamed to the client one line per chunk.
        report: String,
        /// Virtual nanoseconds charged against the run budget.
        virtual_ns: u64,
    },
    /// The session failed or was demoted; `kind` matches the CLI's
    /// `error[kind]` taxonomy.
    Failed {
        /// Stable error-kind label (`busy`, `budget`, `deadline`,
        /// `session`, `cli`, `run`, ...).
        kind: String,
        /// Human-readable message.
        message: String,
        /// Virtual nanoseconds charged (deadline demotions still
        /// cost their virtual time).
        virtual_ns: u64,
    },
}

impl SessionResult {
    /// True for shed/failed sessions.
    pub fn is_err(&self) -> bool {
        matches!(self, SessionResult::Failed { .. })
    }

    /// Render as the wire frames a client receives: one
    /// [`Response::Chunk`] per report line, then the terminal frame.
    pub fn responses(&self) -> Vec<Response> {
        match self {
            SessionResult::Done { report, .. } => {
                let mut out: Vec<Response> = report
                    .split_inclusive('\n')
                    .map(|line| Response::Chunk {
                        text: line.to_string(),
                    })
                    .collect();
                out.push(Response::Done);
                out
            }
            SessionResult::Failed { kind, message, .. } => vec![Response::Err {
                kind: kind.clone(),
                message: message.clone(),
            }],
        }
    }
}

/// One record of the session journal, serialized as JSON inside the
/// `GTJRNL01` framing. `Start` is appended before compute, `Finish`
/// after — a Start without a matching Finish marks a session the
/// crash interrupted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SessionRecord {
    /// A session was admitted and is about to compute.
    Start {
        /// The session key ([`Request::session_key`]).
        key: String,
        /// The full request, so resume can recompute it.
        request: Request,
    },
    /// A session reached its terminal result.
    Finish {
        /// The session key.
        key: String,
        /// The supervisor group (the app) the outcome is charged to.
        app: String,
        /// The terminal result, replayed verbatim on resume.
        result: SessionResult,
    },
    /// A lease on a started session: if the virtual clock passes
    /// `deadline_virtual_ns` with no Finish journaled, the resume
    /// reaper reclaims the session into `error[lease]` instead of
    /// recomputing it. A separate record (not a `Start` field) so
    /// pre-lease journals replay unchanged.
    Lease {
        /// The session key the lease covers.
        key: String,
        /// The supervisor group the reaped outcome is charged to.
        app: String,
        /// Virtual-clock deadline in nanoseconds.
        deadline_virtual_ns: u64,
    },
}

/// What resume recovered, for the daemon's stderr report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeReport {
    /// Completed sessions replayed from the journal.
    pub replayed: usize,
    /// Interrupted sessions (Start without Finish) recomputed.
    pub recomputed: usize,
    /// Torn records recovery truncated away.
    pub torn_records: usize,
    /// Orphan `.tmp` segments recovery swept.
    pub orphan_tmps: usize,
    /// Pending sessions whose lease had expired, reclaimed into
    /// `error[lease]` by the virtual-clock reaper.
    pub reaped: usize,
}

/// Mutex guard that survives poisoning: a caught session panic must
/// never wedge the daemon's shared state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A memo-cache entry guarded by a verify-on-read canary seal.
///
/// The canary is a canonical byte rendering of the entry sealed with
/// its fnv64 ([`gtpin_faults::Sealed`]); every cache read verifies it
/// before trusting the `Arc`. A mismatch (the `cache.corrupt` fault
/// site, or real rot) quarantines the whole entry — the caller
/// removes it, accounts the heal, and recomputes from source, which
/// is bitwise identical because recompute is the path that filled
/// the cache. Verification costs one fnv64 pass over the canary, not
/// a deserialization.
struct SealedSlot<T> {
    value: Arc<T>,
    seal: gtpin_faults::Sealed,
}

impl<T> SealedSlot<T> {
    fn new(value: Arc<T>, canary: Vec<u8>) -> SealedSlot<T> {
        SealedSlot {
            value,
            seal: gtpin_faults::Sealed::new(canary),
        }
    }

    /// Verify the canary under `ident`; `Some` shares the value,
    /// `None` means the entry must be quarantined and recomputed.
    fn verified(&mut self, ident: u64) -> Option<Arc<T>> {
        self.seal.read(ident).map(|_| self.value.clone())
    }
}

/// The shared state behind every connection of one daemon lifetime.
pub struct SessionEngine {
    config: ServeConfig,
    supervisor: Mutex<Supervisor>,
    journal: Option<Mutex<Journal>>,
    /// Terminal results by session key — the response cache.
    responses: Mutex<BTreeMap<String, SessionResult>>,
    /// One-time profiling passes by `app/scale`, shared by `profile`
    /// and `explore` sessions. Sealed: reads verify a canary over the
    /// profiled trace data and heal on mismatch.
    profiles: Mutex<BTreeMap<String, SealedSlot<ProfiledApp>>>,
    /// 30-configuration sweeps by `app/scale`; the co-optimization
    /// threshold only affects selection over the finished sweep, so
    /// explores at different thresholds share one entry. Sealed.
    explorations: Mutex<BTreeMap<String, SealedSlot<Exploration>>>,
    /// Structural analyses by kernel **content hash** — apps sharing
    /// a kernel binary share its dominator/loop/cost analysis, and a
    /// re-request of the same app re-renders from the cache instead
    /// of re-walking the CFG. Sealed over the rendered report text.
    analyses: Mutex<BTreeMap<u64, SealedSlot<gtpin_analyze::KernelReport>>>,
    /// Sessions currently computing (admission cap).
    active: AtomicUsize,
}

impl SessionEngine {
    /// Build an engine under `config`: create or recover the journal
    /// and — when resuming — replay completed sessions through the
    /// supervisor and recompute the interrupted ones.
    pub fn new(config: ServeConfig) -> Result<(SessionEngine, ResumeReport), ServeError> {
        let mut report = ResumeReport::default();
        let mut journal = None;
        let mut replay: Vec<SessionRecord> = Vec::new();
        if let Some(dir) = &config.journal_dir {
            if config.resume {
                let (j, recovery) = Journal::recover(dir)?;
                report.torn_records = recovery.torn_records;
                report.orphan_tmps = recovery.orphan_tmps;
                for payload in &recovery.records {
                    // Unparsable records are recovery debris, not
                    // fatal: the session they belonged to recomputes.
                    if let Ok(record) =
                        serde_json::from_str::<SessionRecord>(&String::from_utf8_lossy(payload))
                    {
                        replay.push(record);
                    }
                }
                journal = Some(Mutex::new(j));
            } else {
                journal = Some(Mutex::new(Journal::create(dir)?));
            }
        }

        let engine = SessionEngine {
            supervisor: Mutex::new(Supervisor::new(config.supervisor.clone())),
            journal,
            responses: Mutex::new(BTreeMap::new()),
            profiles: Mutex::new(BTreeMap::new()),
            explorations: Mutex::new(BTreeMap::new()),
            analyses: Mutex::new(BTreeMap::new()),
            active: AtomicUsize::new(0),
            config,
        };

        // Replay finished sessions in journal order so the resumed
        // supervisor walks the identical breaker/budget trajectory,
        // then sweep the interrupted ones (Start, no Finish): a
        // pending session whose lease deadline the virtual clock has
        // passed is *reaped* into `error[lease]` — it was stuck, and
        // recomputing it would re-run work the original owner may
        // still be mid-flight on — while an unexpired (or unleased)
        // one recomputes as before.
        let mut pending: Vec<(String, Request)> = Vec::new();
        let mut leases: BTreeMap<String, u64> = BTreeMap::new();
        for record in replay {
            match record {
                SessionRecord::Start { key, request } => {
                    if !pending.iter().any(|(k, _)| *k == key) {
                        pending.push((key, request));
                    }
                }
                SessionRecord::Finish { key, app, result } => {
                    pending.retain(|(k, _)| *k != key);
                    leases.remove(&key);
                    engine.replay_finish(&app, &key, result);
                    report.replayed += 1;
                }
                SessionRecord::Lease {
                    key,
                    deadline_virtual_ns,
                    ..
                } => {
                    leases.insert(key, deadline_virtual_ns);
                }
            }
        }
        let virtual_now = lock(&engine.supervisor).report().virtual_ns_spent;
        for (key, request) in pending {
            if lock(&engine.responses).contains_key(&key) {
                continue;
            }
            if let Some(&deadline) = leases.get(&key) {
                if deadline <= virtual_now {
                    engine.reap(&key, &request, deadline, virtual_now);
                    report.reaped += 1;
                    continue;
                }
            }
            gtpin_obs::counter_add("serve.resume_recomputed", 1);
            engine.handle(&request);
            report.recomputed += 1;
        }
        Ok((engine, report))
    }

    /// Reclaim a pending session whose lease expired: journal a
    /// durable `error[lease]` Finish, charge the supervisor a
    /// failure, and cache the typed result — all deterministic, so a
    /// second resume replays the identical trajectory.
    fn reap(&self, key: &str, request: &Request, deadline_virtual_ns: u64, virtual_now: u64) {
        let app = request.app().to_string();
        let result = SessionResult::Failed {
            kind: "lease".to_string(),
            message: format!(
                "session lease expired at {deadline_virtual_ns} virtual ns \
                 (clock {virtual_now}); reclaimed by the reaper"
            ),
            virtual_ns: 0,
        };
        lock(&self.supervisor).finish(&app, &Outcome::<(), ()>::Failed(()));
        self.journal_append(&SessionRecord::Finish {
            key: key.to_string(),
            app,
            result: result.clone(),
        });
        lock(&self.responses).insert(key.to_string(), result);
        gtpin_obs::counter_add("lease.reaped", 1);
        gtpin_faults::note("recovered.lease_reaped", 1);
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The cached terminal result for a session key, if any.
    pub fn cached(&self, key: &str) -> Option<SessionResult> {
        lock(&self.responses).get(key).cloned()
    }

    /// Deterministic digest over every cached terminal result —
    /// the faults-matrix identity contracts hash this.
    pub fn response_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (key, result) in lock(&self.responses).iter() {
            h = fnv_fold(h, key.as_bytes());
            let json = serde_json::to_string(result).unwrap_or_default();
            h = fnv_fold(h, json.as_bytes());
        }
        h
    }

    /// Snapshot of the supervisor's accounting.
    pub fn supervisor_report(&self) -> gtpin_par::SupervisorReport {
        lock(&self.supervisor).report()
    }

    /// Serve one request to its terminal result. Never panics and
    /// never blocks indefinitely: overload and policy rejections
    /// come back as typed [`SessionResult::Failed`] values.
    pub fn handle(&self, request: &Request) -> SessionResult {
        let key = request.session_key();
        let mut span = gtpin_obs::span("serve.session");
        if span.active() {
            span.arg_str("kind", request.kind().to_string());
            span.arg_str("app", request.app().to_string());
        }
        gtpin_obs::counter_add("serve.sessions", 1);

        // 1. Memoized terminal result: serve it even to a degraded
        // group — a cache hit costs nothing, so there is nothing to
        // protect the daemon from.
        if let Some(cached) = self.cached(&key) {
            gtpin_obs::counter_add("serve.cache_hit", 1);
            return cached;
        }

        // 2. Concurrent-session cap: shed, never queue.
        let active = self.active.fetch_add(1, Ordering::SeqCst);
        let _guard = ActiveGuard { engine: self };
        if active >= self.config.max_sessions {
            gtpin_obs::counter_add("serve.shed_busy", 1);
            return SessionResult::Failed {
                kind: "busy".to_string(),
                message: format!(
                    "daemon at capacity ({} concurrent sessions); retry later",
                    self.config.max_sessions
                ),
                virtual_ns: 0,
            };
        }

        // 3. Admission ticket from the supervisor.
        match lock(&self.supervisor).admit(request.app()) {
            Admission::Granted => {}
            Admission::RejectedBudget => {
                gtpin_obs::counter_add("serve.shed_budget", 1);
                return SessionResult::Failed {
                    kind: "budget".to_string(),
                    message: "run budget exhausted; the daemon is shedding new sessions"
                        .to_string(),
                    virtual_ns: 0,
                };
            }
            Admission::RejectedBreakerOpen => {
                gtpin_obs::counter_add("serve.shed_breaker", 1);
                return SessionResult::Failed {
                    kind: "busy".to_string(),
                    message: format!(
                        "circuit breaker open for {} after repeated failures",
                        request.app()
                    ),
                    virtual_ns: 0,
                };
            }
        }

        // 4. Journal the Start before any compute, then its lease: a
        // virtual-clock deadline after which a resume may reap the
        // session instead of recomputing it.
        self.journal_append(&SessionRecord::Start {
            key: key.clone(),
            request: request.clone(),
        });
        if self.config.lease_virtual_ms > 0 {
            let now_ns = lock(&self.supervisor).report().virtual_ns_spent;
            self.journal_append(&SessionRecord::Lease {
                key: key.clone(),
                app: request.app().to_string(),
                deadline_virtual_ns: now_ns
                    .saturating_add(self.config.lease_virtual_ms.saturating_mul(1_000_000)),
            });
        }

        // 5. Compute in panic isolation. The `serve.session_crash`
        // seam fires at the top of `compute`, before any shared lock
        // is held, so an injected crash can never poison the caches.
        let computed = catch_unwind(AssertUnwindSafe(|| self.compute(request, &key)));
        let outcome: Outcome<(String, u64), (String, String)> = match computed {
            Ok(result) => lock(&self.supervisor).judge(match result {
                Ok((report, virtual_ns)) => Ok(((report, virtual_ns), virtual_ns)),
                Err(e) => Err(e),
            }),
            Err(payload) => {
                gtpin_faults::note("recovered.serve_session_crash", 1);
                gtpin_obs::counter_add("serve.session_panic", 1);
                let what = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("opaque panic payload");
                Outcome::Failed((
                    "session".to_string(),
                    format!("session handler panicked ({what}); session isolated"),
                ))
            }
        };
        lock(&self.supervisor).finish(request.app(), &outcome);

        let result = match outcome {
            Outcome::Done {
                value: (report, _),
                virtual_ns,
            } => SessionResult::Done { report, virtual_ns },
            Outcome::DeadlineExceeded { virtual_ns } => SessionResult::Failed {
                kind: "deadline".to_string(),
                message: format!(
                    "session exceeded its virtual deadline ({virtual_ns} ns); result discarded"
                ),
                virtual_ns,
            },
            Outcome::Failed((kind, message)) => SessionResult::Failed {
                kind,
                message,
                virtual_ns: 0,
            },
            // admit() granted, so the skip outcomes cannot occur.
            Outcome::SkippedBreakerOpen | Outcome::SkippedBudget => unreachable!(),
        };

        // 6. Terminal result is durable before it is delivered.
        self.journal_append(&SessionRecord::Finish {
            key: key.clone(),
            app: request.app().to_string(),
            result: result.clone(),
        });
        lock(&self.responses).insert(key, result.clone());
        result
    }

    /// Stream a terminal result's frames to `w`. Returns `Ok(false)`
    /// when the `serve.conn_drop` fault abandoned delivery mid-stream
    /// — the result stays journaled and cached, so nothing but this
    /// one delivery is lost.
    pub fn deliver<W: Write>(
        &self,
        key: &str,
        result: &SessionResult,
        w: &mut W,
    ) -> Result<bool, wire::WireError> {
        let ident = gtpin_faults::hash_str(key);
        for response in result.responses() {
            if gtpin_faults::enabled() {
                // Each frame of each delivery attempt gets an
                // independent, deterministic decision.
                let occ = gtpin_faults::occurrence(site::SERVE_CONN_DROP, ident);
                if gtpin_faults::should_inject(
                    site::SERVE_CONN_DROP,
                    ident.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(occ),
                ) {
                    gtpin_faults::note("recovered.serve_conn_drop", 1);
                    gtpin_obs::counter_add("serve.conn_dropped", 1);
                    return Ok(false);
                }
            }
            wire::write_message(w, &response)?;
        }
        Ok(true)
    }

    /// Feed one journaled terminal result back through the
    /// supervisor (the single-session equivalent of `run_units`'s
    /// cached replay) and into the response cache.
    fn replay_finish(&self, app: &str, key: &str, result: SessionResult) {
        let outcome: Outcome<(), ()> = match &result {
            SessionResult::Done { virtual_ns, .. } => Outcome::Done {
                value: (),
                virtual_ns: *virtual_ns,
            },
            SessionResult::Failed {
                kind, virtual_ns, ..
            } if kind == "deadline" => Outcome::DeadlineExceeded {
                virtual_ns: *virtual_ns,
            },
            SessionResult::Failed { .. } => Outcome::Failed(()),
        };
        lock(&self.supervisor).finish(app, &outcome);
        gtpin_obs::counter_add("serve.resume_replayed", 1);
        lock(&self.responses).insert(key.to_string(), result);
    }

    /// Best-effort durable append: a failing journal degrades the
    /// daemon to in-memory serving (the session still completes; it
    /// just will not survive a crash), which beats refusing service.
    fn journal_append(&self, record: &SessionRecord) {
        let Some(journal) = &self.journal else { return };
        let Ok(json) = serde_json::to_string(record) else {
            return;
        };
        if let Err(e) = lock(journal).append_with_recovery(json.as_bytes()) {
            gtpin_obs::warn!("serve: journal append failed, session not durable: {e}");
            gtpin_obs::counter_add("serve.journal_degraded", 1);
        }
    }

    /// The session body: dispatch by request kind. The
    /// `serve.session_crash` seam fires here, before any shared
    /// state is touched.
    fn compute(&self, request: &Request, key: &str) -> Result<(String, u64), (String, String)> {
        if gtpin_faults::enabled() {
            let ident = gtpin_faults::hash_str(key);
            let occ = gtpin_faults::occurrence(site::SERVE_SESSION_CRASH, ident);
            if gtpin_faults::should_inject(
                site::SERVE_SESSION_CRASH,
                ident.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(occ),
            ) {
                std::panic::panic_any(gtpin_faults::INJECTED_PANIC_MARKER);
            }
        }
        match request {
            Request::Profile { app, scale } => self.compute_profile(app, scale),
            Request::Explore {
                app,
                scale,
                threshold_pct,
            } => self.compute_explore(app, scale, *threshold_pct),
            Request::Sim { app, launches } => {
                compute_sim(app, *launches, self.config.threads.max(1))
            }
            Request::Lint { app } => compute_lint(app),
            Request::Analyze { app } => self.compute_analyze(app),
        }
    }

    /// Structurally analyze every kernel of `app` at test scale,
    /// memoizing each kernel's analysis by content hash. The
    /// per-kernel text and the analysis digest match
    /// `gtpin analyze <app>` exactly.
    fn compute_analyze(&self, app: &str) -> Result<(String, u64), (String, String)> {
        use gpu_device::jit::compile_kernel;

        let spec = lookup_spec(app)?;
        let program = build_program(&spec, Scale::Test);
        let params = GpuGeneration::IvyBridgeHd4000.topology().cost_params();

        let mut report = String::new();
        let mut digest = 0xCBF2_9CE4_8422_2325u64;
        digest = fnv_fold(digest, app.as_bytes());
        let mut loops = 0usize;
        let mut proven = 0usize;
        let mut kernels = 0usize;
        let mut virtual_ns = 0u64;
        for ir in &program.source.kernels {
            let bin = compile_kernel(ir).map_err(|e| ("jit".to_string(), e.to_string()))?;
            let hash = gtpin_analyze::report::fnv64(&bin.encode());
            let cached = {
                let mut map = lock(&self.analyses);
                match map.get_mut(&hash) {
                    // Verify-on-read over the rendered report text;
                    // a corrupted entry is quarantined and the CFG
                    // re-analyzed (deterministic, so identical).
                    Some(slot) => match slot.verified(hash) {
                        Some(a) => Some(a),
                        None => {
                            map.remove(&hash);
                            gtpin_faults::sealed::note_heal("serve.analysis");
                            None
                        }
                    },
                    None => None,
                }
            };
            let analysis = match cached {
                Some(a) => {
                    gtpin_obs::counter_add("serve.memo_analyze_hit", 1);
                    a
                }
                None => {
                    let a = gtpin_analyze::analyze_kernel(&bin, &params)
                        .map_err(|e| ("analyze".to_string(), e.to_string()))?;
                    let canary = a.render().into_bytes();
                    lock(&self.analyses)
                        .entry(hash)
                        .or_insert_with(|| SealedSlot::new(Arc::new(a), canary))
                        .value
                        .clone()
                }
            };
            kernels += 1;
            loops += analysis.loops.len();
            proven += analysis
                .loops
                .iter()
                .filter(|l| !l.trips.starts_with('?'))
                .count();
            virtual_ns += analysis.cost.cycles_per_invocation;
            let text = analysis.render();
            digest = fnv_fold(digest, text.as_bytes());
            report.push_str(&text);
        }
        report.push_str(&format!(
            "analyze {app}: {kernels} kernel(s): {loops} loop(s), \
             {proven} with proven trip bounds\n\
             analysis digest: {digest:016x}\n"
        ));
        Ok((report, virtual_ns))
    }

    /// The memoized one-time profiling pass for `(app, scale)`.
    /// Verify-on-read: the cached entry's canary (the serialized
    /// trace data) must prove itself on every hit; a corrupted entry
    /// is quarantined and the pass recomputes — bitwise identical,
    /// since profiling is deterministic.
    fn profiled(&self, app: &str, scale: &str) -> Result<Arc<ProfiledApp>, (String, String)> {
        let scale = parse_scale(scale)?;
        let memo_key = format!("{app}/{scale:?}");
        let ident = gtpin_faults::hash_str(&memo_key);
        let cached = {
            let mut map = lock(&self.profiles);
            match map.get_mut(&memo_key) {
                Some(slot) => match slot.verified(ident) {
                    Some(p) => Some(p),
                    None => {
                        map.remove(&memo_key);
                        gtpin_faults::sealed::note_heal("serve.profile");
                        None
                    }
                },
                None => None,
            }
        };
        if let Some(p) = cached {
            gtpin_obs::counter_add("serve.memo_profile_hit", 1);
            return Ok(p);
        }
        let spec = lookup_spec(app)?;
        let program = build_program(&spec, scale);
        // The engine's configured thread count governs executor
        // fan-out too — never the ambient GTPIN_THREADS — so fault
        // accounting (which seams exist depends on worker count) is a
        // pure function of the ServeConfig.
        let mut gpu = GpuConfig::hd4000();
        gpu.exec.threads = self.config.threads.max(1);
        let profiled =
            profile_app(&program, gpu, 1).map_err(|e| ("pipeline".to_string(), e.to_string()))?;
        let canary = serde_json::to_string(&profiled.data)
            .unwrap_or_default()
            .into_bytes();
        // First writer wins on a duplicate-compute race; the work is
        // deterministic, so either Arc is the same data.
        Ok(lock(&self.profiles)
            .entry(memo_key)
            .or_insert_with(|| SealedSlot::new(Arc::new(profiled), canary))
            .value
            .clone())
    }

    /// The memoized 30-configuration sweep for `(app, scale)`.
    /// Verify-on-read with quarantine-and-recompute, like
    /// [`Self::profiled`].
    fn exploration(&self, app: &str, scale: &str) -> Result<Arc<Exploration>, (String, String)> {
        let parsed = parse_scale(scale)?;
        let memo_key = format!("{app}/{parsed:?}");
        let ident = gtpin_faults::hash_str(&memo_key) ^ 0x5EED;
        let cached = {
            let mut map = lock(&self.explorations);
            match map.get_mut(&memo_key) {
                Some(slot) => match slot.verified(ident) {
                    Some(ex) => Some(ex),
                    None => {
                        map.remove(&memo_key);
                        gtpin_faults::sealed::note_heal("serve.exploration");
                        None
                    }
                },
                None => None,
            }
        };
        if let Some(ex) = cached {
            gtpin_obs::counter_add("serve.memo_explore_hit", 1);
            return Ok(ex);
        }
        let profiled = self.profiled(app, scale)?;
        let ex = Exploration::run_with_threads(
            &profiled.data,
            default_approx_target(&profiled.data),
            &SimpointConfig::default(),
            self.config.threads.max(1),
        );
        let canary = serde_json::to_string(&ex).unwrap_or_default().into_bytes();
        Ok(lock(&self.explorations)
            .entry(memo_key)
            .or_insert_with(|| SealedSlot::new(Arc::new(ex), canary))
            .value
            .clone())
    }

    fn compute_profile(&self, app: &str, scale: &str) -> Result<(String, u64), (String, String)> {
        let profiled = self.profiled(app, scale)?;
        let data = &profiled.data;
        let report = format!(
            "profile {app} @ {scale}\n\
             invocations {}  unique kernels {}\n\
             dynamic instructions {}\n\
             instrumentation: {:.2}x dynamic instruction overhead\n\
             native virtual time {:.6} s\n",
            data.invocations.len(),
            profiled.profile.unique_kernels(),
            data.total_instructions(),
            profiled.profile.dynamic_overhead_factor(),
            data.total_seconds(),
        );
        Ok((report, (data.total_seconds() * 1e9) as u64))
    }

    fn compute_explore(
        &self,
        app: &str,
        scale: &str,
        threshold_pct: f64,
    ) -> Result<(String, u64), (String, String)> {
        let profiled = self.profiled(app, scale)?;
        let ex = self.exploration(app, scale)?;
        let best = ex.min_error().ok_or_else(|| {
            (
                "explore".to_string(),
                "no configurations evaluated".to_string(),
            )
        })?;
        let co = ex.co_optimize(threshold_pct).ok_or_else(|| {
            (
                "explore".to_string(),
                "no configurations evaluated".to_string(),
            )
        })?;
        let mut report = format!(
            "explore {app} @ {scale} ({} configurations)\n\
             min-error:      {:24} error {:.3}%  speedup {:.1}x  k={}\n\
             co-opt @ {threshold_pct:>4}%: {:24} error {:.3}%  speedup {:.1}x  k={}\n",
            ex.evaluations.len(),
            best.config.to_string(),
            best.error_pct,
            best.speedup(),
            best.selection.k,
            co.config.to_string(),
            co.error_pct,
            co.speedup(),
            co.selection.k,
        );
        for pick in &co.selection.picks {
            let iv = co.intervals[pick.interval];
            report.push_str(&format!(
                "  simulate invocations [{:>6}, {:>6})  ratio {:.2}%\n",
                iv.start,
                iv.end,
                pick.ratio * 100.0
            ));
        }
        Ok((report, (profiled.data.total_seconds() * 1e9) as u64))
    }
}

/// RAII decrement of the engine's active-session counter.
struct ActiveGuard<'a> {
    engine: &'a SessionEngine,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.engine.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn lookup_spec(app: &str) -> Result<workloads::WorkloadSpec, (String, String)> {
    spec_by_name(app).ok_or_else(|| {
        (
            "cli".to_string(),
            format!("unknown application {app}; try `gtpin list`"),
        )
    })
}

fn parse_scale(scale: &str) -> Result<Scale, (String, String)> {
    match scale {
        "test" => Ok(Scale::Test),
        "default" => Ok(Scale::Default),
        other => Err((
            "cli".to_string(),
            format!("unknown scale {other} (known: test, default)"),
        )),
    }
}

/// Detailed-simulate the first `launches` launches (0 = all) at test
/// scale, mirroring `gtpin sim`'s deterministic digest.
fn compute_sim(
    app: &str,
    launches: u64,
    threads: usize,
) -> Result<(String, u64), (String, String)> {
    let spec = lookup_spec(app)?;
    let program = build_program(&spec, Scale::Test);
    // Pin both the functional replay's executor fan-out and the
    // detailed simulator's shard workers to the engine's configured
    // thread count: results are bit-identical at any value by
    // contract, and the fault seams exercised stay independent of
    // the ambient GTPIN_THREADS / GTPIN_SIM_THREADS.
    let mut gpu_config = GpuConfig::hd4000();
    gpu_config.exec.threads = threads;
    let mut rt = OclRuntime::new(Gpu::new(gpu_config));
    rt.run(&program, Schedule::Replay)
        .map_err(|e| ("run".to_string(), e.to_string()))?;
    let gpu = rt.into_device();

    let topo = GpuGeneration::IvyBridgeHd4000.topology();
    let mut sim =
        DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default()).with_workers(threads);
    let all = gpu.launches();
    let n = if launches == 0 {
        all.len()
    } else {
        all.len().min(launches as usize)
    };
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut busy_cycles = 0u64;
    let mut eu_cycles = 0u64;
    for launch in &all[..n] {
        let kernel = gpu.driver().kernel(launch.kernel.index()).ok_or_else(|| {
            (
                "sim".to_string(),
                "launch references an unbuilt kernel".to_string(),
            )
        })?;
        let r = sim
            .simulate_launch(kernel, &launch.args, launch.global_work_size)
            .map_err(|e| ("sim".to_string(), e.to_string()))?;
        cycles += r.cycles;
        instructions += r.stats.instructions;
        busy_cycles += r.busy_cycles;
        eu_cycles += r.eu_cycles;
        digest = fnv_fold(digest, &r.cycles.to_le_bytes());
        digest = fnv_fold(digest, &r.busy_cycles.to_le_bytes());
        digest = fnv_fold(digest, &r.eu_cycles.to_le_bytes());
        let stats_json =
            serde_json::to_string(&r.stats).map_err(|e| ("json".to_string(), e.to_string()))?;
        digest = fnv_fold(digest, stats_json.as_bytes());
    }
    let report = format!(
        "{app}: {n} launch(es) detailed-simulated at Test scale\n\
         cycles {cycles}  instructions {instructions}  occupancy {:.4}\n\
         stats digest: {digest:016x}\n",
        if eu_cycles == 0 {
            0.0
        } else {
            busy_cycles as f64 / eu_cycles as f64
        }
    );
    // Virtual cost: simulated cycles at the 1.15 GHz device clock.
    Ok((report, cycles.saturating_mul(20) / 23))
}

/// Run the static lints and the instrumentation-safety verifier over
/// every kernel of `app` at test scale.
fn compute_lint(app: &str) -> Result<(String, u64), (String, String)> {
    use gpu_device::jit::compile_kernel;
    use gtpin_analyze::{lint_kernel, verify_rewrite, LintConfig, Severity};
    use gtpin_core::rewriter::rewrite_binary;
    use gtpin_core::RewriteConfig;

    let spec = lookup_spec(app)?;
    let program = build_program(&spec, Scale::Test);
    let verify_config = RewriteConfig {
        count_basic_blocks: true,
        time_kernels: true,
        trace_memory: true,
        naive_per_instruction_counters: false,
    };

    let mut report = String::new();
    let mut kernels = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut verify_failures = 0usize;
    for ir in &program.source.kernels {
        let kernel = compile_kernel(ir).map_err(|e| ("jit".to_string(), e.to_string()))?;
        kernels += 1;
        let diags = lint_kernel(&kernel, &LintConfig::for_metadata(&kernel.metadata))
            .map_err(|e| ("lint".to_string(), e.to_string()))?;
        for d in &diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            report.push_str(&format!("{d}\n"));
        }
        let bytes = kernel.encode();
        let rw =
            rewrite_binary(&bytes, &verify_config, 0, 0).map_err(|e| ("lint".to_string(), e))?;
        match verify_rewrite(&bytes, &rw.bytes) {
            Ok(v) => report.push_str(&format!(
                "verify[ok] {} — {} probes, {} repaired branches\n",
                kernel.name, v.probes, v.repaired_branches
            )),
            Err(e) => {
                verify_failures += 1;
                report.push_str(&format!("verify[FAIL] {}: {e}\n", kernel.name));
            }
        }
    }
    report.push_str(&format!(
        "lint {app}: {kernels} kernel(s): {errors} error(s), {warnings} warning(s)\n"
    ));
    if errors > 0 || verify_failures > 0 {
        return Err((
            "lint".to_string(),
            format!(
                "lint {app}: {errors} error-severity finding(s), \
                 {verify_failures} verify failure(s) across {kernels} kernel(s)"
            ),
        ));
    }
    Ok((report, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(config: ServeConfig) -> SessionEngine {
        SessionEngine::new(config).expect("engine builds").0
    }

    fn first_app() -> String {
        workloads::all_specs()
            .into_iter()
            .next()
            .expect("workloads exist")
            .name
            .to_string()
    }

    #[test]
    fn unknown_app_fails_typed_and_identical_twice() {
        let e = engine(ServeConfig::default());
        let req = Request::Sim {
            app: "no-such-app".to_string(),
            launches: 1,
        };
        let first = e.handle(&req);
        match &first {
            SessionResult::Failed { kind, .. } => assert_eq!(kind, "cli"),
            other => panic!("expected cli failure, got {other:?}"),
        }
        // Second identical request: served from the response cache.
        assert_eq!(e.handle(&req), first);
    }

    #[test]
    fn breaker_opens_per_app_and_sheds_busy() {
        let e = engine(ServeConfig {
            supervisor: SupervisorConfig {
                breaker_threshold: 2,
                ..SupervisorConfig::default()
            },
            ..ServeConfig::default()
        });
        // Two distinct failing sessions in group "nope" open its
        // breaker; a third request to the group sheds error[busy].
        for launches in 1..=2 {
            let r = e.handle(&Request::Sim {
                app: "nope".to_string(),
                launches,
            });
            assert!(r.is_err());
        }
        match e.handle(&Request::Lint {
            app: "nope".to_string(),
        }) {
            SessionResult::Failed { kind, message, .. } => {
                assert_eq!(kind, "busy");
                assert!(message.contains("circuit breaker"));
            }
            other => panic!("expected busy shed, got {other:?}"),
        }
        // Other groups still fail on their own merits, not the shed
        // path (unknown app → cli, not busy).
        match e.handle(&Request::Lint {
            app: "also-unknown".to_string(),
        }) {
            SessionResult::Failed { kind, .. } => assert_eq!(kind, "cli"),
            other => panic!("expected cli failure, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_sheds_deterministically() {
        let e = engine(ServeConfig {
            supervisor: SupervisorConfig {
                max_tasks: Some(1),
                breaker_threshold: 0,
                ..SupervisorConfig::default()
            },
            ..ServeConfig::default()
        });
        let app = first_app();
        let first = e.handle(&Request::Sim {
            app: app.clone(),
            launches: 1,
        });
        assert!(!first.is_err(), "first session runs: {first:?}");
        match e.handle(&Request::Lint { app: app.clone() }) {
            SessionResult::Failed { kind, .. } => assert_eq!(kind, "budget"),
            other => panic!("expected budget shed, got {other:?}"),
        }
        // A cached response is still served after exhaustion — it
        // costs nothing.
        assert_eq!(e.handle(&Request::Sim { app, launches: 1 }), first);
    }

    #[test]
    fn zero_session_cap_sheds_busy() {
        let e = engine(ServeConfig {
            max_sessions: 0,
            ..ServeConfig::default()
        });
        match e.handle(&Request::Lint {
            app: "anything".to_string(),
        }) {
            SessionResult::Failed { kind, .. } => assert_eq!(kind, "busy"),
            other => panic!("expected busy shed, got {other:?}"),
        }
    }

    #[test]
    fn responses_render_one_chunk_per_line_and_terminal() {
        let done = SessionResult::Done {
            report: "a\nb\n".to_string(),
            virtual_ns: 7,
        };
        let frames = done.responses();
        assert_eq!(frames.len(), 3);
        assert_eq!(
            frames[0],
            Response::Chunk {
                text: "a\n".to_string()
            }
        );
        assert_eq!(frames[2], Response::Done);
        let failed = SessionResult::Failed {
            kind: "busy".to_string(),
            message: "m".to_string(),
            virtual_ns: 0,
        };
        assert_eq!(
            failed.responses(),
            vec![Response::Err {
                kind: "busy".to_string(),
                message: "m".to_string()
            }]
        );
    }

    #[test]
    fn sim_session_is_deterministic_and_cached() {
        let e = engine(ServeConfig::default());
        let req = Request::Sim {
            app: first_app(),
            launches: 1,
        };
        let first = e.handle(&req);
        match &first {
            SessionResult::Done { report, virtual_ns } => {
                assert!(report.contains("stats digest"));
                assert!(*virtual_ns > 0);
            }
            other => panic!("sim session failed: {other:?}"),
        }
        assert_eq!(e.handle(&req), first);
        // A fresh engine recomputes to the identical bytes.
        let e2 = engine(ServeConfig::default());
        assert_eq!(e2.handle(&req), first);
    }

    #[test]
    fn analyze_session_is_deterministic_and_memoizes_per_kernel() {
        let e = engine(ServeConfig::default());
        let req = Request::Analyze { app: first_app() };
        let first = e.handle(&req);
        match &first {
            SessionResult::Done { report, .. } => {
                assert!(report.contains("analysis digest:"));
                assert!(report.contains("kernel "));
            }
            other => panic!("analyze session failed: {other:?}"),
        }
        // Second identical request: response cache.
        assert_eq!(e.handle(&req), first);
        // A fresh engine recomputes to the identical bytes.
        let e2 = engine(ServeConfig::default());
        assert_eq!(e2.handle(&req), first);
        // The per-kernel cache is keyed by content hash: after one
        // analyze, every kernel of the app is cached.
        assert!(!lock(&e.analyses).is_empty());
        let before = lock(&e2.analyses).len();
        // Re-analyzing via a *different* session key (unknown apps
        // fail before compile, so reuse the same app through a fresh
        // engine whose response cache is cold) does not grow the
        // kernel cache: every kernel hits by hash.
        let mut cold = lock(&e2.responses);
        cold.clear();
        drop(cold);
        assert_eq!(e2.handle(&req), first);
        assert_eq!(lock(&e2.analyses).len(), before);
    }

    #[test]
    fn journal_resume_replays_and_recomputes_to_identical_responses() {
        let app = first_app();
        let requests = [
            Request::Sim {
                app: app.clone(),
                launches: 1,
            },
            Request::Lint { app: app.clone() },
        ];
        let dir = std::env::temp_dir().join(format!("gtpin-serve-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted baseline (no journal).
        let baseline = engine(ServeConfig::default());
        let expect: Vec<SessionResult> = requests.iter().map(|r| baseline.handle(r)).collect();

        // Journaled run that "crashes" before the second session
        // finishes: complete session 1, then hand-append session 2's
        // Start with no Finish — exactly what a SIGKILL leaves.
        {
            let journaled = engine(ServeConfig {
                journal_dir: Some(dir.clone()),
                ..ServeConfig::default()
            });
            journaled.handle(&requests[0]);
        }
        {
            let (mut j, _) = Journal::recover(&dir).expect("recovers");
            let start = SessionRecord::Start {
                key: requests[1].session_key(),
                request: requests[1].clone(),
            };
            j.append(serde_json::to_string(&start).unwrap().as_bytes())
                .expect("appends");
        }

        let (resumed, report) = SessionEngine::new(ServeConfig {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..ServeConfig::default()
        })
        .expect("resumes");
        assert_eq!(report.replayed, 1);
        assert_eq!(report.recomputed, 1);
        for (req, want) in requests.iter().zip(&expect) {
            assert_eq!(&resumed.handle(req), want);
        }
        // Policy trajectory matches the uninterrupted run too.
        assert_eq!(resumed.supervisor_report(), baseline.supervisor_report());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_reaper_reclaims_expired_sessions_into_error_lease() {
        let app = first_app();
        let dir = std::env::temp_dir().join(format!("gtpin-serve-lease-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stuck = Request::Lint { app: app.clone() };

        // One completed session advances the virtual clock well past
        // the tiny lease deadline appended below.
        {
            let journaled = engine(ServeConfig {
                journal_dir: Some(dir.clone()),
                ..ServeConfig::default()
            });
            let done = journaled.handle(&Request::Sim {
                app: app.clone(),
                launches: 1,
            });
            assert!(!done.is_err(), "clock-advancing session runs: {done:?}");
        }
        // A SIGKILL'd session: Start + Lease, no Finish.
        {
            let (mut j, _) = Journal::recover(&dir).expect("recovers");
            let start = SessionRecord::Start {
                key: stuck.session_key(),
                request: stuck.clone(),
            };
            j.append(serde_json::to_string(&start).unwrap().as_bytes())
                .expect("appends start");
            let lease = SessionRecord::Lease {
                key: stuck.session_key(),
                app: app.clone(),
                deadline_virtual_ns: 1,
            };
            j.append(serde_json::to_string(&lease).unwrap().as_bytes())
                .expect("appends lease");
        }

        let (resumed, report) = SessionEngine::new(ServeConfig {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..ServeConfig::default()
        })
        .expect("resumes");
        assert_eq!(report.replayed, 1);
        assert_eq!(report.recomputed, 0, "reaped, not recomputed");
        assert_eq!(report.reaped, 1);
        match resumed.cached(&stuck.session_key()) {
            Some(SessionResult::Failed { kind, message, .. }) => {
                assert_eq!(kind, "lease");
                assert!(message.contains("reaper"), "message: {message}");
            }
            other => panic!("expected reaped error[lease], got {other:?}"),
        }
        let digest = resumed.response_digest();

        // The reaped Finish is durable: a second resume replays it
        // verbatim — identical responses and policy trajectory,
        // nothing left to reap.
        let (again, second) = SessionEngine::new(ServeConfig {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..ServeConfig::default()
        })
        .expect("resumes again");
        assert_eq!(second.reaped, 0);
        assert_eq!(second.replayed, 2);
        assert_eq!(again.response_digest(), digest);
        assert_eq!(again.supervisor_report(), resumed.supervisor_report());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unexpired_lease_still_recomputes_on_resume() {
        let app = first_app();
        let dir = std::env::temp_dir().join(format!("gtpin-serve-lease-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stuck = Request::Lint { app: app.clone() };

        // Start + far-future Lease, no Finish, no prior virtual time:
        // the lease has not expired, so resume recomputes as always.
        {
            let mut j = Journal::create(&dir).expect("creates");
            let start = SessionRecord::Start {
                key: stuck.session_key(),
                request: stuck.clone(),
            };
            j.append(serde_json::to_string(&start).unwrap().as_bytes())
                .expect("appends start");
            let lease = SessionRecord::Lease {
                key: stuck.session_key(),
                app: app.clone(),
                deadline_virtual_ns: u64::MAX,
            };
            j.append(serde_json::to_string(&lease).unwrap().as_bytes())
                .expect("appends lease");
        }
        let (resumed, report) = SessionEngine::new(ServeConfig {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..ServeConfig::default()
        })
        .expect("resumes");
        assert_eq!(report.reaped, 0);
        assert_eq!(report.recomputed, 1);
        let recomputed = resumed.cached(&stuck.session_key()).expect("recomputed");
        // The recomputed result matches a fresh engine's.
        let fresh = engine(ServeConfig::default());
        assert_eq!(fresh.handle(&stuck), recomputed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The fault registry is process-global; tests that install plans
    // serialize on this lock.
    static FAULTS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn corrupted_memo_caches_heal_to_identical_responses() {
        use gtpin_faults::FaultPlan;

        let _g = FAULTS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        gtpin_faults::disable();
        let app = first_app();
        let profile = Request::Profile {
            app: app.clone(),
            scale: "test".to_string(),
        };
        let explore = Request::Explore {
            app: app.clone(),
            scale: "test".to_string(),
            threshold_pct: 5.0,
        };

        // Clean baseline: the bytes every faulted run must reproduce.
        let clean = engine(ServeConfig::default());
        let want_profile = clean.handle(&profile);
        let want_explore = clean.handle(&explore);
        assert!(!want_profile.is_err() && !want_explore.is_err());

        // Corrupt every cache read: each memo hit trips its canary,
        // quarantines the entry, and recomputes — the responses stay
        // bitwise identical to the clean baseline.
        gtpin_faults::install(FaultPlan::single(site::CACHE_CORRUPT, 1.0, 99));
        let e = engine(ServeConfig::default());
        assert_eq!(e.handle(&profile), want_profile);
        assert_eq!(e.handle(&explore), want_explore);
        let acc: BTreeMap<String, u64> = gtpin_faults::take_accounting().into_iter().collect();
        gtpin_faults::disable();
        assert!(acc["injected.cache.corrupt"] >= 1, "{acc:?}");
        assert!(acc["healed.serve.profile"] >= 1, "{acc:?}");
        assert!(acc["recovered.cache_heal"] >= 1, "{acc:?}");
    }
}
