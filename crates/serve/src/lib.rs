//! # gtpin-serve
//!
//! A long-running profiling daemon for the GT-Pin suite: `gtpin
//! serve` binds a Unix socket, accepts profile / explore / sim /
//! lint requests over the length-prefixed [`wire`] protocol, and
//! keeps shared work memoized across requests (one interval-table
//! sweep serves every exploration of the same app, one profiling
//! pass serves both `profile` and `explore`).
//!
//! Robustness is the design center, not a bolt-on:
//!
//! - **Admission tickets, never unbounded queueing.** Every session
//!   asks the generalized [`gtpin_par::Supervisor`] for an admission
//!   ticket before any work starts: the per-app circuit breaker and
//!   the global run budget (the `GTPIN_DEADLINE_MS` / `GTPIN_BREAKER`
//!   / `GTPIN_MAX_TASKS` / `GTPIN_MAX_VIRTUAL_MS` knobs) shed
//!   overload **deterministically** with typed `error[busy]` /
//!   `error[budget]` responses inside the deadline.
//! - **Crash consistency.** Each accepted session is journaled
//!   through `gtpin-durable` (Start before compute, Finish after): a
//!   SIGKILL'd daemon restarted with `--resume` recovers torn tails,
//!   replays completed sessions through identical supervisor policy
//!   state, recomputes the in-flight ones, and serves responses
//!   **bit-identical** to an uninterrupted run.
//! - **Fault isolation.** A panicking session handler
//!   (`serve.session_crash`) is caught and demoted to a typed
//!   `error[session]` response; a dropped client connection
//!   (`serve.conn_drop`) abandons delivery only — the computed
//!   response is already journaled and cached, and every sibling
//!   session keeps running. `gtpin faults-matrix` pins both
//!   contracts.
//! - **Graceful drain.** SIGTERM/SIGINT stop the accept loop,
//!   in-flight sessions finish, and the socket is removed.

pub mod daemon;
pub mod session;
pub mod wire;

pub use daemon::{request_drain, request_once, request_with_retry, serve, RetryPolicy};
pub use session::{ResumeReport, ServeConfig, SessionEngine, SessionRecord, SessionResult};

use std::path::PathBuf;

/// Errors from the serving layer itself (socket, protocol, session
/// journal). Session *outcomes* — including shed and crashed
/// sessions — are in-band [`wire::Response::Err`] payloads, not
/// `ServeError`s: the daemon survives them by design.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or filesystem operation failed.
    Io {
        /// What the daemon was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The wire protocol was violated (torn frame, oversized length
    /// prefix, unparsable payload).
    Wire(wire::WireError),
    /// The session journal could not be created, recovered, or
    /// appended to.
    Journal(gtpin_durable::JournalError),
    /// Bad arguments (unknown request kind, malformed flag values).
    Cli(String),
    /// Another live daemon already owns the socket — the startup
    /// liveness probe got an answer, so this instance refuses to
    /// replace it (only *dead* sockets are reclaimed).
    Busy(String),
}

impl ServeError {
    /// Stable short label, matching the CLI's `error[kind]` scheme.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Io { .. } => "io",
            ServeError::Wire(_) => "wire",
            ServeError::Journal(_) => "journal",
            ServeError::Cli(_) => "cli",
            ServeError::Busy(_) => "busy",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Wire(e) => write!(f, "{e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::Cli(s) => f.write_str(s),
            ServeError::Busy(s) => f.write_str(s),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Wire(e) => Some(e),
            ServeError::Journal(e) => Some(e),
            ServeError::Cli(_) | ServeError::Busy(_) => None,
        }
    }
}

impl From<wire::WireError> for ServeError {
    fn from(e: wire::WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

impl From<gtpin_durable::JournalError> for ServeError {
    fn from(e: gtpin_durable::JournalError) -> ServeError {
        ServeError::Journal(e)
    }
}

impl From<String> for ServeError {
    fn from(s: String) -> ServeError {
        ServeError::Cli(s)
    }
}

impl From<&str> for ServeError {
    fn from(s: &str) -> ServeError {
        ServeError::Cli(s.to_string())
    }
}

fn io_err(context: impl Into<String>, source: std::io::Error) -> ServeError {
    ServeError::Io {
        context: context.into(),
        source,
    }
}

/// The default Unix socket path when `--socket` is not given.
pub fn default_socket() -> PathBuf {
    PathBuf::from("target/gtpin.sock")
}
