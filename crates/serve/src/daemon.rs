//! The Unix-socket daemon loop and the one-shot client.
//!
//! `serve` binds the socket, accepts connections on a nonblocking
//! listener, and hands each connection to a thread that reads one
//! framed [`Request`], runs it through the shared [`SessionEngine`],
//! and streams the framed responses back. SIGTERM/SIGINT flip a
//! drain flag: the accept loop stops, in-flight sessions finish and
//! deliver, and the socket is removed. A SIGKILL skips all of that —
//! which is exactly what the session journal plus `--resume` is for.

use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::session::{ServeConfig, SessionEngine};
use crate::wire::{self, Request, Response};
use crate::{io_err, ServeError};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout: a client that connects and then
/// never sends a frame cannot pin a worker thread past the drain.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Drain requested (SIGTERM/SIGINT or [`request_drain`]). Reset at
/// every `serve` entry so one daemon's drain does not leak into the
/// next.
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // SIGTERM = 15, SIGINT = 2. Raw libc `signal` keeps the crate
    // dependency-free; the handler only stores one atomic flag,
    // which is async-signal-safe.
    type SigHandler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

/// Ask a running in-process daemon to drain (the test equivalent of
/// `kill -TERM`).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Probe an existing socket file: connect to tell a live daemon from
/// a stale corpse. `Err(Busy)` if something answers; `Ok(())` after
/// removing a dead socket (a SIGKILL'd predecessor's leftover) or
/// when no socket exists. The probe connection sends no frame, so a
/// live daemon sees a clean EOF and carries on.
fn reclaim_socket(socket: &Path) -> Result<(), ServeError> {
    if !socket.exists() {
        return Ok(());
    }
    match UnixStream::connect(socket) {
        Ok(_probe) => Err(ServeError::Busy(format!(
            "a live daemon already serves {}; stop it first or use another --socket",
            socket.display()
        ))),
        Err(_) => {
            eprintln!(
                "serve: removing stale socket {} (liveness probe got no answer)",
                socket.display()
            );
            let _ = std::fs::remove_file(socket);
            Ok(())
        }
    }
}

/// Run the daemon until drained. Lifecycle messages go to stderr;
/// stdout stays clean.
pub fn serve(config: ServeConfig) -> Result<(), ServeError> {
    let socket = config.socket.clone();
    // Refuse to fight a live daemon *before* paying for resume; a
    // dead predecessor's socket is reclaimed here.
    reclaim_socket(&socket)?;
    let (engine, resume) = SessionEngine::new(config)?;
    let engine = Arc::new(engine);
    if resume.replayed + resume.recomputed + resume.reaped > 0
        || resume.torn_records + resume.orphan_tmps > 0
    {
        eprintln!(
            "serve: resume replayed {} session(s), recomputed {} interrupted, \
             reaped {} expired lease(s), truncated {} torn record(s), swept {} orphan tmp(s)",
            resume.replayed,
            resume.recomputed,
            resume.reaped,
            resume.torn_records,
            resume.orphan_tmps
        );
    }

    let listener = UnixListener::bind(&socket)
        .map_err(|e| io_err(format!("binding {}", socket.display()), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("setting the listener nonblocking", e))?;
    install_signal_handlers();
    DRAIN.store(false, Ordering::SeqCst);
    eprintln!("serve: listening on {}", socket.display());

    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !DRAIN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let engine = engine.clone();
                workers.push(std::thread::spawn(move || {
                    handle_connection(&engine, stream);
                }));
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                let _ = std::fs::remove_file(&socket);
                return Err(io_err("accepting a connection", e));
            }
        }
    }

    // Graceful drain: stop accepting, let in-flight sessions finish
    // and deliver, then remove the socket.
    eprintln!("serve: draining {} in-flight connection(s)", workers.len());
    for handle in workers {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&socket);
    eprintln!("serve: drained");
    Ok(())
}

/// One connection: read one request, serve it, stream the response.
/// Panics are contained here as a last resort — the engine already
/// isolates session panics, so anything reaching this guard is a
/// wire-layer bug, and it still must not take the daemon down.
fn handle_connection(engine: &SessionEngine, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(engine, &mut stream)));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            gtpin_obs::counter_add("serve.connection_error", 1);
            // Best effort: tell the client what went wrong before
            // hanging up on it.
            let _ = wire::write_message(
                &mut stream,
                &Response::Err {
                    kind: "wire".to_string(),
                    message: e.to_string(),
                },
            );
        }
        Err(_) => {
            gtpin_obs::counter_add("serve.connection_panic", 1);
        }
    }
    let _ = stream.flush();
}

fn serve_connection(
    engine: &SessionEngine,
    stream: &mut UnixStream,
) -> Result<(), wire::WireError> {
    let Some(request) = wire::read_message::<_, Request>(stream)? else {
        // Clean EOF before any frame: the peer connected and left.
        return Ok(());
    };
    let key = request.session_key();
    let result = engine.handle(&request);
    match engine.deliver(&key, &result, stream) {
        Ok(true) => {}
        Ok(false) => {
            // serve.conn_drop fired: this delivery is abandoned, but
            // the result is journaled and cached — the daemon and its
            // other sessions carry on.
        }
        Err(e) => return Err(e),
    }
    Ok(())
}

/// One-shot client: connect, submit `request`, collect the streamed
/// responses until the terminal frame. The CLI's `gtpin request`
/// subcommand is a thin wrapper over this.
pub fn request_once(socket: &Path, request: &Request) -> Result<Vec<Response>, ServeError> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| io_err(format!("connecting to {}", socket.display()), e))?;
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    wire::write_message(&mut stream, request)?;
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut responses = Vec::new();
    while let Some(response) = wire::read_message::<_, Response>(&mut stream)? {
        let terminal = matches!(response, Response::Done | Response::Err { .. });
        responses.push(response);
        if terminal {
            break;
        }
    }
    Ok(responses)
}

/// Env knob: retry attempt cap for the one-shot client
/// (strict-parsed by `validate_env`).
pub const RETRY_MAX_ENV: &str = "GTPIN_RETRY_MAX";

/// Env knob: retry base backoff in milliseconds (strict-parsed by
/// `validate_env`).
pub const RETRY_BASE_ENV: &str = "GTPIN_RETRY_BASE_MS";

/// Deterministic jittered-backoff retry policy for the one-shot
/// client. Retryable outcomes are transport failures (connection
/// refused or dropped mid-stream — `ServeError::Io`/`Wire`) and
/// terminal `error[busy]` sheds (capacity or breaker — transient by
/// construction); every other outcome returns immediately. The
/// backoff schedule is a pure function of `(seed, session key,
/// attempt)`, so a retried run replays identically — no wall-clock
/// randomness ever reaches an output.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempt cap (first try included). 1 disables retry.
    pub max_attempts: u32,
    /// Base backoff in milliseconds; attempt `n` waits
    /// `base << min(n, 6)` halved plus deterministic jitter below
    /// `base`.
    pub base_ms: u64,
    /// Jitter seed, mixed with the session key and attempt index.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 10,
            seed: 0x6774_7069_6e21,
        }
    }
}

impl RetryPolicy {
    /// Read `GTPIN_RETRY_MAX` / `GTPIN_RETRY_BASE_MS` (lenient here;
    /// `validate_env` strict-parses at CLI start).
    pub fn from_env() -> RetryPolicy {
        let mut policy = RetryPolicy::default();
        if let Some(n) = std::env::var(RETRY_MAX_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
        {
            policy.max_attempts = n;
        }
        if let Some(ms) = std::env::var(RETRY_BASE_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
        {
            policy.base_ms = ms;
        }
        policy
    }

    /// The wait before retry attempt `attempt` (1-based): capped
    /// exponential backoff with deterministic jitter — pure in
    /// `(seed, key, attempt)`.
    pub fn backoff_ms(&self, key: &str, attempt: u32) -> u64 {
        let ceiling = self.base_ms << attempt.min(6);
        let jitter_src = gtpin_faults::mix64(
            self.seed ^ gtpin_faults::hash_str(key) ^ u64::from(attempt).wrapping_mul(0x9E37),
        );
        let jitter = if self.base_ms == 0 {
            0
        } else {
            jitter_src % self.base_ms
        };
        ceiling / 2 + jitter
    }
}

/// Whether a terminal response is a retryable shed: `error[busy]`
/// means capacity or an open breaker — both transient.
fn is_busy_shed(responses: &[Response]) -> bool {
    matches!(
        responses.last(),
        Some(Response::Err { kind, .. }) if kind == "busy"
    )
}

/// [`request_once`] under a [`RetryPolicy`]: connection failures and
/// `error[busy]` sheds are retried with deterministic jittered
/// backoff, up to the attempt cap; the last attempt's outcome is
/// returned as-is. Each retry bumps the `serve.retry_attempts`
/// counter.
pub fn request_with_retry(
    socket: &Path,
    request: &Request,
    policy: &RetryPolicy,
) -> Result<Vec<Response>, ServeError> {
    let key = request.session_key();
    let mut attempt = 1u32;
    loop {
        let outcome = request_once(socket, request);
        let retryable = match &outcome {
            Ok(responses) => is_busy_shed(responses),
            Err(ServeError::Io { .. } | ServeError::Wire(_)) => true,
            Err(_) => false,
        };
        if !retryable || attempt >= policy.max_attempts.max(1) {
            return outcome;
        }
        gtpin_obs::counter_add("serve.retry_attempts", 1);
        std::thread::sleep(Duration::from_millis(policy.backoff_ms(&key, attempt)));
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_socket_is_reclaimed_and_live_socket_refused() {
        let dir = std::env::temp_dir().join(format!("gtpin-serve-probe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");

        // A SIGKILL'd daemon's leftover: the file exists but nothing
        // listens (dropping the listener leaves the socket file).
        let stale = dir.join("stale.sock");
        drop(UnixListener::bind(&stale).expect("binds"));
        assert!(stale.exists(), "dropped listener leaves its socket file");
        reclaim_socket(&stale).expect("dead socket is reclaimed");
        assert!(!stale.exists(), "stale socket removed");

        // A live daemon answers the probe: refuse, never remove.
        let live = dir.join("live.sock");
        let _listener = UnixListener::bind(&live).expect("binds");
        match reclaim_socket(&live) {
            Err(e) => {
                assert_eq!(e.kind(), "busy");
                assert!(e.to_string().contains("live daemon"));
            }
            Ok(()) => panic!("a live socket must refuse with error[busy]"),
        }
        assert!(live.exists(), "a live socket is never removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..=8 {
            let a = p.backoff_ms("explore/bitonic/5", attempt);
            assert_eq!(
                a,
                p.backoff_ms("explore/bitonic/5", attempt),
                "pure in (seed, key, attempt)"
            );
            assert!(a <= (p.base_ms << 6) / 2 + p.base_ms, "capped shift");
        }
        // The schedule grows: late attempts back off far longer than
        // the first (jitter is bounded below base_ms).
        assert!(p.backoff_ms("k", 1) < p.backoff_ms("k", 6));
        // Different keys de-synchronize their jitter somewhere in the
        // schedule (thundering-herd protection).
        assert!((1..=6).any(|n| p.backoff_ms("key-a", n) != p.backoff_ms("key-b", n)));
    }

    #[test]
    fn retry_gives_up_after_capped_attempts_on_dead_socket() {
        let missing = std::env::temp_dir().join("gtpin-no-such-daemon.sock");
        let _ = std::fs::remove_file(&missing);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_ms: 0,
            seed: 1,
        };
        let req = Request::Lint {
            app: "anything".to_string(),
        };
        match request_with_retry(&missing, &req, &policy) {
            Err(e) => assert_eq!(e.kind(), "io"),
            Ok(r) => panic!("expected io failure, got {r:?}"),
        }
    }
}
