//! The Unix-socket daemon loop and the one-shot client.
//!
//! `serve` binds the socket, accepts connections on a nonblocking
//! listener, and hands each connection to a thread that reads one
//! framed [`Request`], runs it through the shared [`SessionEngine`],
//! and streams the framed responses back. SIGTERM/SIGINT flip a
//! drain flag: the accept loop stops, in-flight sessions finish and
//! deliver, and the socket is removed. A SIGKILL skips all of that —
//! which is exactly what the session journal plus `--resume` is for.

use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::session::{ServeConfig, SessionEngine};
use crate::wire::{self, Request, Response};
use crate::{io_err, ServeError};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout: a client that connects and then
/// never sends a frame cannot pin a worker thread past the drain.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Drain requested (SIGTERM/SIGINT or [`request_drain`]). Reset at
/// every `serve` entry so one daemon's drain does not leak into the
/// next.
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // SIGTERM = 15, SIGINT = 2. Raw libc `signal` keeps the crate
    // dependency-free; the handler only stores one atomic flag,
    // which is async-signal-safe.
    type SigHandler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

/// Ask a running in-process daemon to drain (the test equivalent of
/// `kill -TERM`).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Run the daemon until drained. Lifecycle messages go to stderr;
/// stdout stays clean.
pub fn serve(config: ServeConfig) -> Result<(), ServeError> {
    let socket = config.socket.clone();
    let (engine, resume) = SessionEngine::new(config)?;
    let engine = Arc::new(engine);
    if resume.replayed + resume.recomputed > 0 || resume.torn_records + resume.orphan_tmps > 0 {
        eprintln!(
            "serve: resume replayed {} session(s), recomputed {} interrupted, \
             truncated {} torn record(s), swept {} orphan tmp(s)",
            resume.replayed, resume.recomputed, resume.torn_records, resume.orphan_tmps
        );
    }

    // A SIGKILL'd predecessor leaves its socket file behind; it is
    // ours to replace.
    let _ = std::fs::remove_file(&socket);
    let listener = UnixListener::bind(&socket)
        .map_err(|e| io_err(format!("binding {}", socket.display()), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("setting the listener nonblocking", e))?;
    install_signal_handlers();
    DRAIN.store(false, Ordering::SeqCst);
    eprintln!("serve: listening on {}", socket.display());

    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !DRAIN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let engine = engine.clone();
                workers.push(std::thread::spawn(move || {
                    handle_connection(&engine, stream);
                }));
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                let _ = std::fs::remove_file(&socket);
                return Err(io_err("accepting a connection", e));
            }
        }
    }

    // Graceful drain: stop accepting, let in-flight sessions finish
    // and deliver, then remove the socket.
    eprintln!("serve: draining {} in-flight connection(s)", workers.len());
    for handle in workers {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&socket);
    eprintln!("serve: drained");
    Ok(())
}

/// One connection: read one request, serve it, stream the response.
/// Panics are contained here as a last resort — the engine already
/// isolates session panics, so anything reaching this guard is a
/// wire-layer bug, and it still must not take the daemon down.
fn handle_connection(engine: &SessionEngine, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(engine, &mut stream)));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            gtpin_obs::counter_add("serve.connection_error", 1);
            // Best effort: tell the client what went wrong before
            // hanging up on it.
            let _ = wire::write_message(
                &mut stream,
                &Response::Err {
                    kind: "wire".to_string(),
                    message: e.to_string(),
                },
            );
        }
        Err(_) => {
            gtpin_obs::counter_add("serve.connection_panic", 1);
        }
    }
    let _ = stream.flush();
}

fn serve_connection(
    engine: &SessionEngine,
    stream: &mut UnixStream,
) -> Result<(), wire::WireError> {
    let Some(request) = wire::read_message::<_, Request>(stream)? else {
        // Clean EOF before any frame: the peer connected and left.
        return Ok(());
    };
    let key = request.session_key();
    let result = engine.handle(&request);
    match engine.deliver(&key, &result, stream) {
        Ok(true) => {}
        Ok(false) => {
            // serve.conn_drop fired: this delivery is abandoned, but
            // the result is journaled and cached — the daemon and its
            // other sessions carry on.
        }
        Err(e) => return Err(e),
    }
    Ok(())
}

/// One-shot client: connect, submit `request`, collect the streamed
/// responses until the terminal frame. The CLI's `gtpin request`
/// subcommand is a thin wrapper over this.
pub fn request_once(socket: &Path, request: &Request) -> Result<Vec<Response>, ServeError> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| io_err(format!("connecting to {}", socket.display()), e))?;
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    wire::write_message(&mut stream, request)?;
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut responses = Vec::new();
    while let Some(response) = wire::read_message::<_, Response>(&mut stream)? {
        let terminal = matches!(response, Response::Done | Response::Err { .. });
        responses.push(response);
        if terminal {
            break;
        }
    }
    Ok(responses)
}
