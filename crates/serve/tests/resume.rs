//! SIGKILL/resume bit-identity: a daemon killed mid-session and
//! restarted with `--resume` must deliver responses byte-identical
//! to an uninterrupted daemon, at every `GTPIN_THREADS` 1..=8.
//!
//! The kill is simulated the way a real SIGKILL manifests: the
//! journal holds a Finish for the completed session and a Start
//! without a Finish for the interrupted one.

use gtpin_durable::Journal;
use gtpin_serve::wire::{write_message, Request};
use gtpin_serve::{ServeConfig, SessionEngine, SessionRecord, SessionResult};

fn first_app() -> String {
    workloads::all_specs()
        .into_iter()
        .next()
        .expect("workloads exist")
        .name
        .to_string()
}

fn requests(app: &str) -> Vec<Request> {
    vec![
        Request::Explore {
            app: app.to_string(),
            scale: "test".to_string(),
            threshold_pct: 3.0,
        },
        Request::Sim {
            app: app.to_string(),
            launches: 1,
        },
        Request::Lint {
            app: app.to_string(),
        },
    ]
}

/// The exact bytes a client reads for `result`: every response frame,
/// wire-encoded.
fn delivered_bytes(result: &SessionResult) -> Vec<u8> {
    let mut out = Vec::new();
    for frame in result.responses() {
        write_message(&mut out, &frame).expect("encodes");
    }
    out
}

#[test]
fn resumed_responses_are_bit_identical_at_every_thread_count() {
    let app = first_app();
    let reqs = requests(&app);

    // Uninterrupted reference at threads=1. Exploration is
    // deterministic across thread counts by contract (pinned by the
    // selection crate's own proptests), so one reference serves all.
    let (reference, _) = SessionEngine::new(ServeConfig::default()).expect("reference engine");
    let expect: Vec<Vec<u8>> = reqs
        .iter()
        .map(|r| delivered_bytes(&reference.handle(r)))
        .collect();

    for threads in 1..=8usize {
        let dir = std::env::temp_dir().join(format!(
            "gtpin-serve-resume-{}-t{threads}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // The pre-kill daemon: completes the explore session, then is
        // "SIGKILL'd" while sim and lint are in flight — their Start
        // records are journaled, their Finish records never land.
        {
            let (journaled, _) = SessionEngine::new(ServeConfig {
                journal_dir: Some(dir.clone()),
                threads,
                ..ServeConfig::default()
            })
            .expect("journaled engine");
            let r = journaled.handle(&reqs[0]);
            assert!(!r.is_err(), "explore at threads={threads} failed: {r:?}");
        }
        {
            let (mut j, _) = Journal::recover(&dir).expect("journal recovers");
            for req in &reqs[1..] {
                let start = SessionRecord::Start {
                    key: req.session_key(),
                    request: req.clone(),
                };
                j.append(serde_json::to_string(&start).unwrap().as_bytes())
                    .expect("appends");
            }
        }

        // Restart with --resume: the explore replays from its Finish
        // record, the interrupted sessions recompute.
        let (resumed, report) = SessionEngine::new(ServeConfig {
            journal_dir: Some(dir.clone()),
            resume: true,
            threads,
            ..ServeConfig::default()
        })
        .expect("resumed engine");
        assert_eq!(report.replayed, 1, "threads={threads}");
        assert_eq!(report.recomputed, 2, "threads={threads}");

        for (req, want) in reqs.iter().zip(&expect) {
            let got = delivered_bytes(&resumed.handle(req));
            assert_eq!(
                &got,
                want,
                "threads={threads}: resumed {} response differs from uninterrupted run",
                req.kind()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
