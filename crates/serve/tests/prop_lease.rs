//! Torn-tail behavior of lease records.
//!
//! A lease is journaled as its own sealed segment. If the machine
//! dies mid-write, the segment's tail is torn at an arbitrary byte.
//! Recovery must classify the session by what actually survived:
//!
//! - **intact lease** (cut at the full length): the deadline is
//!   readable and expired, so the reaper reclaims the session into a
//!   durable `error[lease]`;
//! - **torn lease** (cut anywhere short of full): the record is
//!   truncated away, never parsed — the session is an ordinary
//!   interrupted Start and is recomputed, not reaped.
//!
//! The exhaustive test walks every byte offset of the lease segment;
//! the proptest wrapper re-samples offsets to document the property
//! form.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use gtpin_durable::Journal;
use gtpin_serve::wire::Request;
use gtpin_serve::{ServeConfig, SessionEngine, SessionRecord, SessionResult};
use proptest::prelude::*;

/// Serialize trials: each one resumes an engine against a scratch
/// copy of the shared master journal.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn first_app() -> String {
    workloads::all_specs()
        .into_iter()
        .next()
        .expect("workloads exist")
        .name
        .to_string()
}

fn stuck_request() -> Request {
    Request::Lint { app: first_app() }
}

/// The master journal, built once: a completed Sim session (which
/// advances the virtual clock far past the tiny deadline below),
/// then the SIGKILL'd session's Start and Lease, each sealed as its
/// own segment. Returns the directory, the lease segment's file
/// name, and its byte length.
fn master() -> &'static (PathBuf, String, usize) {
    static MASTER: OnceLock<(PathBuf, String, usize)> = OnceLock::new();
    MASTER.get_or_init(|| {
        gtpin_faults::disable();
        let dir = std::env::temp_dir().join(format!(
            "gtpin-serve-lease-torn-master-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let app = first_app();
        {
            let (engine, _) = SessionEngine::new(ServeConfig {
                journal_dir: Some(dir.clone()),
                ..ServeConfig::default()
            })
            .expect("journaled engine");
            let done = engine.handle(&Request::Sim {
                app: app.clone(),
                launches: 1,
            });
            assert!(!done.is_err(), "clock-advancing session runs: {done:?}");
        }
        let stuck = stuck_request();
        let before: Vec<String> = segment_names(&dir);
        {
            let (mut j, _) = Journal::recover(&dir).expect("recovers");
            let start = SessionRecord::Start {
                key: stuck.session_key(),
                request: stuck.clone(),
            };
            j.append(serde_json::to_string(&start).unwrap().as_bytes())
                .expect("appends start");
            let lease = SessionRecord::Lease {
                key: stuck.session_key(),
                app,
                deadline_virtual_ns: 1,
            };
            j.append(serde_json::to_string(&lease).unwrap().as_bytes())
                .expect("appends lease");
        }
        // The lease segment is the single new highest-numbered one.
        let lease_seg = segment_names(&dir)
            .into_iter()
            .filter(|n| !before.contains(n))
            .max()
            .expect("lease segment sealed");
        let len = std::fs::metadata(dir.join(&lease_seg)).unwrap().len() as usize;
        (dir, lease_seg, len)
    })
}

fn segment_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok()))
                .filter(|n| n.ends_with(".log"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// One trial: copy the master journal, tear the lease segment at
/// `cut`, resume, and report
/// `(reaped, recomputed, torn_records, stuck_is_error_lease)`.
fn classify(cut: usize) -> (usize, usize, usize, bool) {
    let (master_dir, lease_seg, len) = master();
    assert!(cut <= *len);
    let dir = std::env::temp_dir().join(format!(
        "gtpin-serve-lease-torn-{}-{cut}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for name in segment_names(master_dir) {
        std::fs::copy(master_dir.join(&name), dir.join(&name)).expect("copies segment");
    }
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(lease_seg))
        .expect("opens lease segment");
    f.set_len(cut as u64).expect("tears the tail");
    drop(f);

    let (resumed, report) = SessionEngine::new(ServeConfig {
        journal_dir: Some(dir.clone()),
        resume: true,
        ..ServeConfig::default()
    })
    .expect("resumes");
    let is_lease_error = matches!(
        resumed.cached(&stuck_request().session_key()),
        Some(SessionResult::Failed { ref kind, .. }) if kind == "lease"
    );
    let _ = std::fs::remove_dir_all(&dir);
    (
        report.reaped,
        report.recomputed,
        report.torn_records,
        is_lease_error,
    )
}

/// A segment opens with an 8-byte magic; a cut landing exactly
/// there leaves a validly-empty sealed segment, not a torn one.
const SEGMENT_MAGIC_LEN: usize = 8;

fn check(cut: usize, full: usize) {
    let (reaped, recomputed, torn, is_lease_error) = classify(cut);
    if cut == full {
        assert_eq!(
            (reaped, recomputed, torn, is_lease_error),
            (1, 0, 0, true),
            "cut {cut}/{full}: intact expired lease must be reaped into error[lease]"
        );
    } else {
        let want_torn = usize::from(cut != SEGMENT_MAGIC_LEN);
        assert_eq!(
            (reaped, recomputed, torn, is_lease_error),
            (0, 1, want_torn, false),
            "cut {cut}/{full}: torn lease must be truncated away and the session recomputed"
        );
    }
}

/// Every byte offset of the lease segment, exhaustively: the torn
/// record is never parsed, never reaped, and never lost — the
/// session always reaches exactly one of its two legal recoveries.
#[test]
fn every_lease_tear_offset_recovers_to_a_legal_state() {
    let _guard = lock();
    let full = master().2;
    for cut in 0..=full {
        check(cut, full);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property form of the exhaustive walk above, with offsets
    /// drawn at random (scaled into the segment's byte range).
    #[test]
    fn sampled_lease_tear_offsets_recover_to_a_legal_state(frac in 0u32..=1000) {
        let _guard = lock();
        let full = master().2;
        let cut = (frac as usize * full) / 1000;
        check(cut, full);
    }
}
