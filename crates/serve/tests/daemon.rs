//! End-to-end daemon test: bind a real Unix socket, serve concurrent
//! one-shot clients, then drain gracefully (the in-process version of
//! `kill -TERM`).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use gtpin_serve::wire::{Request, Response};
use gtpin_serve::{request_drain, request_once, serve, ServeConfig};

fn first_app() -> String {
    workloads::all_specs()
        .into_iter()
        .next()
        .expect("workloads exist")
        .name
        .to_string()
}

fn wait_for_socket(path: &PathBuf) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !path.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {path:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn daemon_serves_concurrent_clients_and_drains() {
    let socket = std::env::temp_dir().join(format!("gtpin-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let config = ServeConfig {
        socket: socket.clone(),
        ..ServeConfig::default()
    };
    let daemon = std::thread::spawn(move || serve(config));
    wait_for_socket(&socket);

    // Concurrent clients: two identical sims (second is a cache hit
    // on the daemon side — same bytes either way) and one unknown app.
    let app = first_app();
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let socket = socket.clone();
            let app = app.clone();
            std::thread::spawn(move || request_once(&socket, &Request::Sim { app, launches: 1 }))
        })
        .collect();
    let sims: Vec<Vec<Response>> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("request succeeds"))
        .collect();
    assert_eq!(sims[0], sims[1], "identical requests get identical bytes");
    assert!(matches!(sims[0].last(), Some(Response::Done)));
    assert!(
        sims[0]
            .iter()
            .any(|r| matches!(r, Response::Chunk { text } if text.contains("stats digest"))),
        "sim report streamed: {:?}",
        sims[0]
    );

    let err = request_once(
        &socket,
        &Request::Lint {
            app: "no-such-app".to_string(),
        },
    )
    .expect("request completes");
    match err.last() {
        Some(Response::Err { kind, .. }) => assert_eq!(kind, "cli"),
        other => panic!("expected typed error frame, got {other:?}"),
    }

    // Graceful drain: the daemon exits cleanly and removes its socket.
    request_drain();
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    assert!(!socket.exists(), "drained daemon removes its socket");
}
