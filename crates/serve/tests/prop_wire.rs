//! Property tests for the serve wire protocol: arbitrary payloads
//! round-trip bit-exactly, truncation at every byte offset of the
//! final frame is rejected as torn (never a panic, never a partial
//! decode), and payload corruption is caught by the checksum.

use gtpin_obs::frame::frame_record;
use gtpin_serve::wire::{
    decode_messages, decode_payloads, read_message, write_message, Request, Response, WireError,
};
use proptest::prelude::*;

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..6)
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..4, any::<u64>(), 0u64..1000).prop_map(|(kind, ident, n)| {
        let app = format!("app-{}", ident % 37);
        match kind {
            0 => Request::Profile {
                app,
                scale: if ident % 2 == 0 { "test" } else { "default" }.to_string(),
            },
            1 => Request::Explore {
                app,
                scale: "test".to_string(),
                threshold_pct: (n as f64) / 10.0,
            },
            2 => Request::Sim { app, launches: n },
            _ => Request::Lint { app },
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..3,
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..120),
    )
        .prop_map(|(kind, ident, bytes)| {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            match kind {
                0 => Response::Chunk { text },
                1 => Response::Done,
                _ => Response::Err {
                    kind: format!("kind-{}", ident % 7),
                    message: text,
                },
            }
        })
}

fn frame_all(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        frame_record(p, &mut out);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_payloads_round_trip(payloads in arb_payloads()) {
        let bytes = frame_all(&payloads);
        let back = decode_payloads(&bytes).expect("intact stream decodes");
        prop_assert_eq!(back, payloads);
    }

    #[test]
    fn requests_and_responses_round_trip(
        requests in prop::collection::vec(arb_request(), 1..5),
        responses in prop::collection::vec(arb_response(), 1..5),
    ) {
        let mut buf = Vec::new();
        for r in &requests {
            write_message(&mut buf, r).expect("encodes");
        }
        let back: Vec<Request> = decode_messages(&buf).expect("decodes");
        prop_assert_eq!(back, requests);

        let mut buf = Vec::new();
        for r in &responses {
            write_message(&mut buf, r).expect("encodes");
        }
        let back: Vec<Response> = decode_messages(&buf).expect("decodes");
        prop_assert_eq!(back, responses);
    }

    #[test]
    fn truncation_at_every_offset_of_the_final_frame_is_torn(
        payloads in arb_payloads(),
    ) {
        let bytes = frame_all(&payloads);
        let intact_prefix = frame_all(&payloads[..payloads.len() - 1]);
        // Every cut strictly inside the final frame: the intact
        // prefix still decodes, the tail is rejected as torn — and
        // nothing panics or partial-decodes the torn frame.
        for cut in intact_prefix.len() + 1..bytes.len() {
            match decode_payloads(&bytes[..cut]) {
                Err(WireError::Torn) => {}
                other => prop_assert!(false, "cut {cut}: expected Torn, got {other:?}"),
            }
        }
        // Cutting exactly at the frame boundary is a clean stream.
        let clean = decode_payloads(&intact_prefix).expect("boundary cut decodes");
        prop_assert_eq!(clean.len(), payloads.len() - 1);
    }

    #[test]
    fn streaming_reader_yields_intact_prefix_then_torn(
        requests in prop::collection::vec(arb_request(), 1..5),
    ) {
        let mut bytes = Vec::new();
        for r in &requests {
            write_message(&mut bytes, r).expect("encodes");
        }
        let mut prefix = Vec::new();
        for r in &requests[..requests.len() - 1] {
            write_message(&mut prefix, r).expect("encodes");
        }
        // At every cut inside the final frame, the streaming reader
        // yields exactly the intact prefix messages, then Torn —
        // never a clean EOF, never a partial decode.
        for cut in prefix.len() + 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            let mut decoded: Vec<Request> = Vec::new();
            let torn = loop {
                match read_message::<_, Request>(&mut cursor) {
                    Ok(Some(msg)) => decoded.push(msg),
                    Ok(None) => break false,
                    Err(WireError::Torn) => break true,
                    Err(other) => {
                        prop_assert!(false, "cut {cut}: unexpected {other:?}");
                        unreachable!()
                    }
                }
            };
            prop_assert!(torn, "cut {cut}: truncated stream read to clean EOF");
            prop_assert_eq!(&decoded[..], &requests[..requests.len() - 1]);
        }
    }

    #[test]
    fn payload_corruption_is_detected(
        request in arb_request(),
        flip in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        write_message(&mut buf, &request).expect("encodes");
        // Flip one bit somewhere in the payload region (past the
        // 12-byte header): the checksum must catch it.
        let header = 12usize;
        if buf.len() > header {
            let at = header + (flip as usize) % (buf.len() - header);
            buf[at] ^= 1 << (flip % 8);
            match decode_messages::<Request>(&buf) {
                Err(WireError::Torn) => {}
                other => prop_assert!(false, "expected Torn after corruption, got {other:?}"),
            }
        }
    }
}
