//! Figure 6 — optimizing selection to minimize error: each
//! application picks its own best interval/feature configuration;
//! the paper reports 0.3% average error and 35× average simulation
//! speedup (6×–6509×), with 20/25 apps choosing memory-based
//! features and only 5/25 kernel-based features.

use bench_suite::drivers::{explore, header, mean, profile_suite};
use subset_select::IntervalScheme;
use workloads::Scale;

fn main() {
    let suite = profile_suite(Scale::Default);

    header("Figure 6: per-application error-minimizing configurations");
    println!(
        "{:28} {:>24} {:>9} {:>10} {:>4}",
        "app", "best config", "error", "speedup", "k"
    );
    let mut errors = Vec::new();
    let mut speedups = Vec::new();
    let mut kernel_based = 0usize;
    let mut block_based = 0usize;
    let mut memory_features = 0usize;
    let mut interval_counts = [0usize; 3];
    for w in &suite {
        let ex = explore(&w.profiled.data);
        let best = ex.min_error().expect("evaluations exist");
        println!(
            "{:28} {:>24} {:>8.3}% {:>9.1}x {:>4}",
            w.spec.name,
            best.config.to_string(),
            best.error_pct,
            best.speedup(),
            best.selection.k,
        );
        errors.push(best.error_pct);
        speedups.push(best.speedup());
        if best.config.features.is_block_based() {
            block_based += 1;
        } else {
            kernel_based += 1;
        }
        if best.config.features.uses_memory() {
            memory_features += 1;
        }
        match best.config.interval {
            IntervalScheme::SyncBounded => interval_counts[0] += 1,
            IntervalScheme::ApproxInstructions(_) => interval_counts[1] += 1,
            IntervalScheme::SingleKernel => interval_counts[2] += 1,
        }
    }
    println!();
    println!(
        "average error {:.3}%   worst {:.3}%   average speedup {:.1}x (range {:.1}x–{:.1}x)",
        mean(&errors),
        errors.iter().cloned().fold(0.0, f64::max),
        mean(&speedups),
        speedups.iter().cloned().fold(f64::INFINITY, f64::min),
        speedups.iter().cloned().fold(0.0, f64::max),
    );
    println!(
        "feature choices: {block_based}/25 block-based, {kernel_based}/25 kernel-based, \
         {memory_features}/25 memory-based"
    );
    println!(
        "interval choices: {} sync-bounded, {} ~target, {} single-kernel",
        interval_counts[0], interval_counts[1], interval_counts[2]
    );
    println!();
    println!("paper: 0.3% average error (worst 2.1%), 35x average speedup (6x–6509x);");
    println!("20/25 memory features, 5/25 kernel features; intervals split 11/11/3");
}
