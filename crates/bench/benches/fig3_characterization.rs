//! Figure 3 — benchmark characterization:
//! (a) OpenCL API-call breakdown (kernel / synchronization / other),
//! (b) GPU program structures (unique kernels, unique basic blocks),
//! (c) dynamic GPU work (kernel, basic-block, instruction counts).

use bench_suite::drivers::{header, mean, pct, profile_suite, thousands};
use gtpin_core::AppCharacterization;
use workloads::Scale;

fn main() {
    let suite = profile_suite(Scale::Default);
    let rows: Vec<AppCharacterization> = suite
        .iter()
        .map(|w| AppCharacterization::new(&w.profiled.cofluent, &w.profiled.profile))
        .collect();

    header("Figure 3a: OpenCL API call breakdown");
    println!(
        "{:28} {:>10} {:>8} {:>8} {:>8}",
        "app", "calls", "kernel", "sync", "other"
    );
    for r in &rows {
        println!(
            "{:28} {:>10} {:>8} {:>8} {:>8}",
            r.app,
            thousands(r.total_api_calls),
            pct(r.kernel_call_fraction),
            pct(r.sync_call_fraction),
            pct(r.other_call_fraction),
        );
    }
    println!(
        "{:28} {:>10} {:>8} {:>8} {:>8}",
        "AVERAGE",
        "",
        pct(mean(
            &rows
                .iter()
                .map(|r| r.kernel_call_fraction)
                .collect::<Vec<_>>()
        )),
        pct(mean(
            &rows
                .iter()
                .map(|r| r.sync_call_fraction)
                .collect::<Vec<_>>()
        )),
        pct(mean(
            &rows
                .iter()
                .map(|r| r.other_call_fraction)
                .collect::<Vec<_>>()
        )),
    );
    println!();
    println!("paper shape: kernel ≈15% typical (bitcoin 4.5%, part-sim-32k 76.5%),");
    println!("             sync avg 6.8% and mostly <3% (juliaset 25.7%)");

    header("Figure 3b: GPU program structures (static)");
    println!("{:28} {:>8} {:>10}", "app", "kernels", "basic blks");
    for r in &rows {
        println!(
            "{:28} {:>8} {:>10}",
            r.app, r.unique_kernels, r.unique_basic_blocks
        );
    }
    let mk = mean(
        &rows
            .iter()
            .map(|r| r.unique_kernels as f64)
            .collect::<Vec<_>>(),
    );
    let mb = mean(
        &rows
            .iter()
            .map(|r| r.unique_basic_blocks as f64)
            .collect::<Vec<_>>(),
    );
    println!("{:28} {:>8.1} {:>10.0}", "AVERAGE", mk, mb);
    println!();
    println!("paper shape: 1–50 kernels (mean 10.2), 7–11500 blocks (mean 1139)");

    header("Figure 3c: dynamic GPU work");
    println!(
        "{:28} {:>10} {:>14} {:>14}",
        "app", "kernels", "basic blks", "instructions"
    );
    for r in &rows {
        println!(
            "{:28} {:>10} {:>14} {:>14}",
            r.app,
            thousands(r.kernel_invocations as u64),
            thousands(r.bb_executions),
            thousands(r.instructions),
        );
    }
    let mi = mean(
        &rows
            .iter()
            .map(|r| r.kernel_invocations as f64)
            .collect::<Vec<_>>(),
    );
    let mbb = mean(
        &rows
            .iter()
            .map(|r| r.bb_executions as f64)
            .collect::<Vec<_>>(),
    );
    let min_ = mean(
        &rows
            .iter()
            .map(|r| r.instructions as f64)
            .collect::<Vec<_>>(),
    );
    println!("{:28} {:>10.0} {:>14.0} {:>14.0}", "AVERAGE", mi, mbb, min_);
    println!();
    println!("paper shape (unscaled): 55–18157 invocations (mean 4764),");
    println!("44M–180B block execs, 3.7B–2.9T instructions (mean 227B);");
    println!("this model runs at ~1e-5 dynamic scale — see DESIGN.md");
}
