//! Figure 7 — co-optimizing simulation time and error: pick the
//! per-application configuration with the smallest selection whose
//! error clears a threshold; sweeping the threshold trades accuracy
//! for monotonically increasing speedup (paper: 3.0% average error
//! and 223× average speedup at the 10% threshold).

use bench_suite::drivers::{explore, header, mean, profile_suite};
use subset_select::{threshold_sweep, Exploration};
use workloads::Scale;

fn main() {
    let suite = profile_suite(Scale::Default);
    let explorations: Vec<Exploration> = suite.iter().map(|w| explore(&w.profiled.data)).collect();

    let thresholds: Vec<Option<f64>> = std::iter::once(None)
        .chain(std::iter::once(Some(0.5)))
        .chain((1..=10).map(|t| Some(t as f64)))
        .collect();
    let points = threshold_sweep(&explorations, &thresholds);

    header("Figure 7: optimizing for both error and selection size");
    println!(
        "{:>12} {:>14} {:>14}",
        "threshold", "avg error", "avg speedup"
    );
    for p in &points {
        let label = match p.threshold_pct {
            None => "min-error".to_string(),
            Some(t) => format!("{t:.1}%"),
        };
        println!(
            "{label:>12} {:>13.3}% {:>13.1}x",
            p.mean_error_pct, p.mean_speedup
        );
    }

    // Sanity: speedups rise monotonically once thresholds relax.
    let speedups: Vec<f64> = points.iter().skip(1).map(|p| p.mean_speedup).collect();
    let monotone = speedups.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    println!();
    println!(
        "speedup monotone with threshold: {}   (errors stay below each threshold on average: {:.3}% at loosest)",
        if monotone { "yes" } else { "NO — investigate" },
        points.last().map(|p| p.mean_error_pct).unwrap_or(0.0),
    );
    let final_err = mean(&[points.last().unwrap().mean_error_pct]);
    println!();
    println!("paper: at 10% threshold, 3.0% average error and 223x average speedup;");
    println!(
        "ours at 10%: {:.2}% error, {:.0}x speedup (shape: error rises, speedup soars)",
        final_err,
        points.last().unwrap().mean_speedup
    );
}
