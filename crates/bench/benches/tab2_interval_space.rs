//! Table II — the program interval space: how many intervals each of
//! the three division schemes produces per program (min/avg/max
//! across the 25 applications).

use bench_suite::drivers::{approx_target, header, mean, profile_suite};
use subset_select::{build_intervals, IntervalScheme};
use workloads::Scale;

fn main() {
    let suite = profile_suite(Scale::Default);

    let mut rows: Vec<(String, Vec<usize>)> = Vec::new();
    let mut counts = [Vec::new(), Vec::new(), Vec::new()];
    for w in &suite {
        let data = &w.profiled.data;
        let schemes = [
            IntervalScheme::SyncBounded,
            IntervalScheme::ApproxInstructions(approx_target(data)),
            IntervalScheme::SingleKernel,
        ];
        let mut per_app = Vec::new();
        for (i, &scheme) in schemes.iter().enumerate() {
            let n = build_intervals(data, scheme).len();
            per_app.push(n);
            counts[i].push(n as f64);
        }
        rows.push((w.spec.name.to_string(), per_app));
    }

    header("Table II: the program interval space (intervals per program)");
    println!(
        "{:28} {:>10} {:>12} {:>14}",
        "app", "sync", "~target", "single-kernel"
    );
    for (name, per_app) in &rows {
        println!(
            "{:28} {:>10} {:>12} {:>14}",
            name, per_app[0], per_app[1], per_app[2]
        );
    }
    println!();
    println!(
        "{:18} {:>10} {:>12} {:>14}",
        "summary", "sync", "~target", "single-kernel"
    );
    let stat = |v: &[f64], f: fn(&[f64]) -> f64| f(v);
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    println!(
        "{:18} {:>10.0} {:>12.0} {:>14.0}",
        "min",
        stat(&counts[0], min),
        stat(&counts[1], min),
        stat(&counts[2], min)
    );
    println!(
        "{:18} {:>10.0} {:>12.0} {:>14.0}",
        "avg",
        mean(&counts[0]),
        mean(&counts[1]),
        mean(&counts[2])
    );
    println!(
        "{:18} {:>10.0} {:>12.0} {:>14.0}",
        "max",
        stat(&counts[0], max),
        stat(&counts[1], max),
        stat(&counts[2], max)
    );
    println!();
    println!("paper (unscaled): sync 56/545/2115, ~100M 55/916/3121,");
    println!("single-kernel 55/4749/18157 (min/avg/max); the ordering");
    println!("large → medium → small must hold per app and on average");
}
