//! Figure 4 — GPU work:
//! (a) dynamic instruction mixes (moves/logic/control/computation/sends),
//! (b) SIMD width distribution,
//! (c) GPU memory activity (bytes read and written).

use bench_suite::drivers::{header, mean, pct, profile_suite, thousands};
use gen_isa::{ExecSize, OpcodeCategory};
use gtpin_core::AppCharacterization;
use workloads::Scale;

fn main() {
    let suite = profile_suite(Scale::Default);
    let rows: Vec<AppCharacterization> = suite
        .iter()
        .map(|w| AppCharacterization::new(&w.profiled.cofluent, &w.profiled.profile))
        .collect();

    header("Figure 4a: dynamic instruction mixes");
    println!(
        "{:28} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app", "moves", "logic", "control", "comp", "sends"
    );
    for r in &rows {
        println!(
            "{:28} {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.app,
            pct(r.category_fraction(OpcodeCategory::Move)),
            pct(r.category_fraction(OpcodeCategory::Logic)),
            pct(r.category_fraction(OpcodeCategory::Control)),
            pct(r.category_fraction(OpcodeCategory::Computation)),
            pct(r.category_fraction(OpcodeCategory::Send)),
        );
    }
    for (label, cat) in [
        ("moves", OpcodeCategory::Move),
        ("logic", OpcodeCategory::Logic),
        ("control", OpcodeCategory::Control),
        ("comp", OpcodeCategory::Computation),
        ("sends", OpcodeCategory::Send),
    ] {
        let m = mean(
            &rows
                .iter()
                .map(|r| r.category_fraction(cat))
                .collect::<Vec<_>>(),
        );
        print!("AVG {label} {}  ", pct(m));
    }
    println!();
    println!();
    println!("paper shape: control avg 7.3%, computation 36.2%, sends 5.1%;");
    println!("proc-gpu stands out with ~91% computation");

    header("Figure 4b: SIMD widths");
    println!(
        "{:28} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app", "w16", "w8", "w4", "w2", "w1"
    );
    for r in &rows {
        println!(
            "{:28} {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.app,
            pct(r.width_fraction(ExecSize::S16)),
            pct(r.width_fraction(ExecSize::S8)),
            pct(r.width_fraction(ExecSize::S4)),
            pct(r.width_fraction(ExecSize::S2)),
            pct(r.width_fraction(ExecSize::S1)),
        );
    }
    for (label, w) in [
        ("w16", ExecSize::S16),
        ("w8", ExecSize::S8),
        ("w4", ExecSize::S4),
        ("w2", ExecSize::S2),
        ("w1", ExecSize::S1),
    ] {
        let m = mean(&rows.iter().map(|r| r.width_fraction(w)).collect::<Vec<_>>());
        print!("AVG {label} {}  ", pct(m));
    }
    println!();
    println!();
    println!("paper shape: 16-wide 52%, 8-wide 45%, 1-wide 4%, 4-wide <0.1%, 2-wide never");

    header("Figure 4c: GPU memory activity");
    println!(
        "{:28} {:>16} {:>16} {:>8}",
        "app", "bytes read", "bytes written", "R/W"
    );
    for r in &rows {
        let ratio = if r.bytes_written > 0 {
            format!("{:.1}", r.bytes_read as f64 / r.bytes_written as f64)
        } else {
            "inf".to_string()
        };
        println!(
            "{:28} {:>16} {:>16} {:>8}",
            r.app,
            thousands(r.bytes_read),
            thousands(r.bytes_written),
            ratio
        );
    }
    let tr = mean(&rows.iter().map(|r| r.bytes_read as f64).collect::<Vec<_>>());
    let tw = mean(
        &rows
            .iter()
            .map(|r| r.bytes_written as f64)
            .collect::<Vec<_>>(),
    );
    println!("{:28} {:>16.0} {:>16.0}", "AVERAGE", tr, tw);
    println!();
    println!("paper shape: crypto apps read the most; the Sony apps write far more");
    println!("than they read (up to 525× for proj-r5); on average reads ≫ writes");
}
