//! SimPoint clustering throughput: the selection step itself must be
//! cheap (the paper stresses that evaluating all 30 configurations
//! requires no simulation and negligible post-processing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simpoint::{select, FeatureVector, SimpointConfig};

fn synthetic_vectors(n: usize, phases: usize) -> (Vec<FeatureVector>, Vec<u64>) {
    let mut vectors = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for i in 0..n {
        let p = i % phases;
        let mut v = FeatureVector::new();
        for j in 0..20u64 {
            v.add(p as u64 * 1000 + j, 1.0 + ((i * 7 + j as usize) % 5) as f64);
        }
        vectors.push(v);
        weights.push(1_000 + (i as u64 % 13) * 100);
    }
    (vectors, weights)
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("simpoint_select");
    for &n in &[100usize, 1000, 5000] {
        let (vectors, weights) = synthetic_vectors(n, 6);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| select(&vectors, &weights, &SimpointConfig::default()).expect("selects"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
