//! Figure 8 — timed validation: one trial's selections predict whole
//! program performance across (top) new trials on the same machine,
//! (middle) lower GPU frequencies, and (bottom) a newer architecture
//! generation (Haswell HD 4600 vs Ivy Bridge HD 4000, with a
//! LuxMark-style score comparing raw performance).

use bench_suite::drivers::{explore, header, mean, profile_suite};
use gpu_device::GpuConfig;
use subset_select::{cross_error_pct, replay_timings};
use workloads::{luxmark_score, Scale};

fn main() {
    let suite = profile_suite(Scale::Default);

    // One set of selections per application, from trial 1.
    let selections: Vec<_> = suite
        .iter()
        .map(|w| {
            let ex = explore(&w.profiled.data);
            ex.min_error().expect("evaluations exist").clone()
        })
        .collect();

    // --- Top: cross-trial -----------------------------------------
    header("Figure 8 (top): error using trial-1 selections on trials 2-10");
    println!("{:28} {:>10} {:>10} {:>10}", "app", "min", "mean", "max");
    let mut all_trial_errors = Vec::new();
    for (w, sel) in suite.iter().zip(&selections) {
        let mut errors = Vec::new();
        for trial in 2..=10u64 {
            let timing = replay_timings(
                &w.profiled.recording,
                GpuConfig::hd4000().with_trial_seed(trial),
            )
            .expect("replay runs");
            let new_data = w.profiled.data.with_timings(&timing).expect("same order");
            errors.push(cross_error_pct(sel, &new_data));
        }
        all_trial_errors.extend(errors.iter().copied());
        println!(
            "{:28} {:>9.3}% {:>9.3}% {:>9.3}%",
            w.spec.name,
            errors.iter().cloned().fold(f64::INFINITY, f64::min),
            mean(&errors),
            errors.iter().cloned().fold(0.0, f64::max),
        );
    }
    summarize(&all_trial_errors);

    // --- Middle: cross-frequency ----------------------------------
    header("Figure 8 (middle): error using 1150MHz selections at lower frequencies");
    let freqs = [1000.0e6, 850.0e6, 700.0e6, 550.0e6, 350.0e6];
    print!("{:28}", "app");
    for f in freqs {
        print!(" {:>9}", format!("{:.0}MHz", f / 1e6));
    }
    println!();
    let mut all_freq_errors = Vec::new();
    for (w, sel) in suite.iter().zip(&selections) {
        print!("{:28}", w.spec.name);
        for f in freqs {
            let timing = replay_timings(
                &w.profiled.recording,
                GpuConfig::hd4000().with_trial_seed(2).with_frequency_hz(f),
            )
            .expect("replay runs");
            let new_data = w.profiled.data.with_timings(&timing).expect("same order");
            let err = cross_error_pct(sel, &new_data);
            all_freq_errors.push(err);
            print!(" {:>8.3}%", err);
        }
        println!();
    }
    summarize(&all_freq_errors);

    // --- Bottom: cross-generation ---------------------------------
    header("Figure 8 (bottom): error using Ivy Bridge selections on Haswell");
    let lux_ivy = luxmark_score(GpuConfig::hd4000());
    let lux_hsw = luxmark_score(GpuConfig::hd4600());
    println!(
        "LuxMark-style scores: HD4000 {:.0}, HD4600 {:.0} (paper: 269 vs 351)",
        lux_ivy, lux_hsw
    );
    println!();
    println!("{:28} {:>10}", "app", "Haswell");
    let mut all_gen_errors = Vec::new();
    let mut worst = ("", 0.0f64);
    for (w, sel) in suite.iter().zip(&selections) {
        let timing = replay_timings(
            &w.profiled.recording,
            GpuConfig::hd4600().with_trial_seed(3),
        )
        .expect("replay runs");
        let new_data = w.profiled.data.with_timings(&timing).expect("same order");
        let err = cross_error_pct(sel, &new_data);
        all_gen_errors.push(err);
        if err > worst.1 {
            worst = (w.spec.name, err);
        }
        println!("{:28} {:>9.3}%", w.spec.name, err);
    }
    summarize(&all_gen_errors);
    println!(
        "worst app: {} at {:.2}% (paper's worst was gaussian-image at ~11%)",
        worst.0, worst.1
    );
    println!();
    println!("paper shape: most errors below 3% in all three validations");
}

fn summarize(errors: &[f64]) {
    let below3 = errors.iter().filter(|&&e| e < 3.0).count();
    println!(
        "summary: mean {:.3}%, max {:.3}%, {}/{} below 3%",
        mean(errors),
        errors.iter().cloned().fold(0.0, f64::max),
        below3,
        errors.len()
    );
}
