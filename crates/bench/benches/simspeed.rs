//! Section I / V — the cost gap that motivates subset selection:
//! detailed cycle-level simulation is orders of magnitude slower
//! than native execution (the paper cites up to 2,000,000× for real
//! simulators). This bench measures our functional engine versus the
//! detailed simulator on identical launches, and the implied
//! full-program simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use gen_isa::ExecSize;
use gpu_device::detailed::{DetailedConfig, DetailedSimulator};
use gpu_device::{Cache, CacheConfig, ExecConfig, Executor, GpuGeneration, TraceBuffer};
use ocl_runtime::api::ArgValue;
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

fn kernel() -> gen_isa::DecodedKernel {
    let mut ir = KernelIr::new("simspeed", 2);
    ir.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Arg(0),
        },
        IrOp::Compute {
            ops: 24,
            width: ExecSize::S16,
        },
        IrOp::MathCompute {
            ops: 4,
            width: ExecSize::S8,
        },
        IrOp::Load {
            arg: 1,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        },
        IrOp::LoopEnd,
    ];
    gpu_device::jit::compile_kernel(&ir)
        .expect("compiles")
        .flatten()
}

fn bench_simspeed(c: &mut Criterion) {
    let k = kernel();
    let args = [ArgValue::Scalar(50), ArgValue::Buffer(0)];
    let gws = 1024;

    let mut group = c.benchmark_group("simulation_speed");
    group.sample_size(10);

    group.bench_function("functional_native_model", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::default());
            let mut trace = TraceBuffer::new();
            Executor {
                cache: &mut cache,
                trace: &mut trace,
                config: ExecConfig::default(),
            }
            .execute_launch(&k, &args, gws)
            .expect("runs")
        })
    });

    group.bench_function("detailed_cycle_simulator", |b| {
        b.iter(|| {
            let mut sim = DetailedSimulator::new(
                GpuGeneration::IvyBridgeHd4000.topology(),
                1.15e9,
                DetailedConfig::default(),
            );
            sim.simulate_launch(&k, &args, gws).expect("runs")
        })
    });
    group.finish();

    // Report the measured ratio once.
    let t0 = std::time::Instant::now();
    {
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&k, &args, gws)
        .expect("runs");
    }
    let functional = t0.elapsed();
    let t1 = std::time::Instant::now();
    let result = {
        let mut sim = DetailedSimulator::new(
            GpuGeneration::IvyBridgeHd4000.topology(),
            1.15e9,
            DetailedConfig::default(),
        );
        sim.simulate_launch(&k, &args, gws).expect("runs")
    };
    let detailed = t1.elapsed();
    println!(
        "\ndetailed/functional wall-clock ratio: {:.1}x",
        detailed.as_secs_f64() / functional.as_secs_f64().max(1e-12)
    );
    // The paper's headline gap compares simulation against *silicon*:
    // simulating one GPU-second of work costs this many host-seconds.
    println!(
        "detailed-simulation slowdown vs modelled hardware: {:.0}x \
         (paper cites up to 2,000,000x for production simulators; \
         subset selection divides the simulated instruction count)",
        detailed.as_secs_f64() / result.seconds.max(1e-12)
    );
}

criterion_group!(benches, bench_simspeed);
criterion_main!(benches);
