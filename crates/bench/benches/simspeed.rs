//! Section I / V — the cost gap that motivates subset selection:
//! detailed cycle-level simulation is orders of magnitude slower
//! than native execution (the paper cites up to 2,000,000× for real
//! simulators). This bench measures our functional engine versus the
//! detailed simulator on identical launches, and the implied
//! full-program simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gen_isa::ExecSize;
use gpu_device::detailed::{DetailedConfig, DetailedSimulator};
use gpu_device::{Cache, CacheConfig, ExecConfig, Executor, GpuGeneration, TraceBuffer};
use ocl_runtime::api::ArgValue;
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use serde::Serialize;

fn kernel() -> gen_isa::DecodedKernel {
    let mut ir = KernelIr::new("simspeed", 2);
    ir.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Arg(0),
        },
        IrOp::Compute {
            ops: 24,
            width: ExecSize::S16,
        },
        IrOp::MathCompute {
            ops: 4,
            width: ExecSize::S8,
        },
        IrOp::Load {
            arg: 1,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        },
        IrOp::LoopEnd,
    ];
    gpu_device::jit::compile_kernel(&ir)
        .expect("compiles")
        .flatten()
}

/// A launch big enough that epoch phase A (per-EU cycle advancement)
/// dominates the barrier/reconciliation overhead: 512 hardware
/// threads spread over 16 EUs, each looping a compute+math+load body.
const SHARD_GWS: u64 = 8192;
const SHARD_ARGS: [ArgValue; 2] = [ArgValue::Scalar(160), ArgValue::Buffer(0)];
const SHARD_WORKERS: [usize; 4] = [1, 2, 4, 8];

fn simulate_sharded(
    k: &gen_isa::DecodedKernel,
    workers: usize,
) -> gpu_device::detailed::DetailedResult {
    let mut sim = DetailedSimulator::new(
        GpuGeneration::IvyBridgeHd4000.topology(),
        1.15e9,
        DetailedConfig::default(),
    )
    .with_workers(workers);
    sim.simulate_launch(k, &SHARD_ARGS, SHARD_GWS)
        .expect("runs")
}

fn time<R>(f: impl Fn() -> R) -> (f64, R) {
    // One warm-up, then the min of 3 timed runs (damps scheduler
    // noise on shared hosts).
    f();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("ran at least once"))
}

#[derive(Serialize)]
struct ShardPoint {
    workers: usize,
    secs: f64,
    cycles_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct ShardSummary {
    host_cores: usize,
    global_work_size: u64,
    simulated_cycles: u64,
    epoch_cycles: u64,
    bit_identical: bool,
    points: Vec<ShardPoint>,
}

fn bench_simspeed(c: &mut Criterion) {
    let k = kernel();
    let args = [ArgValue::Scalar(50), ArgValue::Buffer(0)];
    let gws = 1024;

    let mut group = c.benchmark_group("simulation_speed");
    group.sample_size(10);

    group.bench_function("functional_native_model", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::default());
            let mut trace = TraceBuffer::new();
            Executor {
                cache: &mut cache,
                trace: &mut trace,
                config: ExecConfig::default(),
            }
            .execute_launch(&k, &args, gws)
            .expect("runs")
        })
    });

    group.bench_function("detailed_cycle_simulator", |b| {
        b.iter(|| {
            let mut sim = DetailedSimulator::new(
                GpuGeneration::IvyBridgeHd4000.topology(),
                1.15e9,
                DetailedConfig::default(),
            );
            sim.simulate_launch(&k, &args, gws).expect("runs")
        })
    });
    for workers in SHARD_WORKERS {
        group.bench_with_input(
            BenchmarkId::new("sharded_detailed", workers),
            &workers,
            |b, &w| b.iter(|| simulate_sharded(&k, w)),
        );
    }
    group.finish();

    // Sharded-simulator summary artifact (`BENCH_simspeed.json` at the
    // repo root): serial vs sharded cycles/sec at 1/2/4/8 workers,
    // plus the bit-identity verdict the speedups are conditional on.
    let serial = simulate_sharded(&k, 1);
    let mut identical = true;
    let points: Vec<ShardPoint> = SHARD_WORKERS
        .iter()
        .map(|&w| {
            let (secs, r) = time(|| simulate_sharded(&k, w));
            identical &= r == serial && r.seconds.to_bits() == serial.seconds.to_bits();
            ShardPoint {
                workers: w,
                secs,
                cycles_per_sec: serial.cycles as f64 / secs.max(1e-12),
                speedup_vs_serial: 0.0, // filled below from point[0]
            }
        })
        .collect();
    let serial_secs = points[0].secs;
    let points: Vec<ShardPoint> = points
        .into_iter()
        .map(|p| ShardPoint {
            speedup_vs_serial: serial_secs / p.secs.max(1e-12),
            ..p
        })
        .collect();
    let summary = ShardSummary {
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        global_work_size: SHARD_GWS,
        simulated_cycles: serial.cycles,
        epoch_cycles: DetailedConfig::default().epoch_cycles,
        bit_identical: identical,
        points,
    };
    assert!(
        summary.bit_identical,
        "sharded detailed simulation diverged from serial"
    );
    let json = serde_json::to_string_pretty(&summary).expect("render summary");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simspeed.json");
    std::fs::write(path, &json).expect("write summary artifact");
    println!("\nsharded simspeed summary ({path}):\n{json}");

    // Report the measured ratio once.
    let t0 = std::time::Instant::now();
    {
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&k, &args, gws)
        .expect("runs");
    }
    let functional = t0.elapsed();
    let t1 = std::time::Instant::now();
    let result = {
        let mut sim = DetailedSimulator::new(
            GpuGeneration::IvyBridgeHd4000.topology(),
            1.15e9,
            DetailedConfig::default(),
        );
        sim.simulate_launch(&k, &args, gws).expect("runs")
    };
    let detailed = t1.elapsed();
    println!(
        "\ndetailed/functional wall-clock ratio: {:.1}x",
        detailed.as_secs_f64() / functional.as_secs_f64().max(1e-12)
    );
    // The paper's headline gap compares simulation against *silicon*:
    // simulating one GPU-second of work costs this many host-seconds.
    println!(
        "detailed-simulation slowdown vs modelled hardware: {:.0}x \
         (paper cites up to 2,000,000x for production simulators; \
         subset selection divides the simulated instruction count)",
        detailed.as_secs_f64() / result.seconds.max(1e-12)
    );
}

criterion_group!(benches, bench_simspeed);
criterion_main!(benches);
