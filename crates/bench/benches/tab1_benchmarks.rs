//! Table I — the 25 benchmark applications by suite — plus the
//! Figure 2 system description.

use bench_suite::drivers::header;
use gpu_device::GpuGeneration;
use workloads::{all_specs, Suite};

fn main() {
    header("Table I: Benchmarks used in this study");
    for suite in [
        Suite::CompuBenchDesktop,
        Suite::CompuBenchMobile,
        Suite::Sandra,
        Suite::SonyVegas,
    ] {
        let apps: Vec<&str> = all_specs()
            .into_iter()
            .filter(|s| s.suite == suite)
            .map(|s| s.name)
            .collect();
        println!("{:28} | {}", suite.label(), apps.join(", "));
    }

    header("Figure 2: Processor architecture of the test system");
    for generation in [GpuGeneration::IvyBridgeHd4000, GpuGeneration::HaswellHd4600] {
        let t = generation.topology();
        println!(
            "{:28} | {} EUs in {} subslices ({} EUs/subslice), {} HW threads/EU \
             ({} total), max {:.0} MHz, LLC slice {} KiB",
            t.name,
            t.execution_units,
            t.subslices,
            t.eus_per_subslice(),
            t.threads_per_eu,
            t.total_hw_threads(),
            t.max_frequency_hz / 1e6,
            t.llc_slice_kib,
        );
    }
    println!();
    println!("paper: HD4000 = 16 EUs, 2 subslices, 8 threads/EU, 128 HW threads, 1150 MHz");
}
