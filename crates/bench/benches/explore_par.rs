//! Parallel-engine benchmark: serial vs fanned-out 30-configuration
//! exploration, and serial vs sharded-trace-buffer kernel execution.
//!
//! Beyond the timings, this bench *verifies* the engine's contract —
//! parallel results bitwise identical to serial — and writes a JSON
//! summary artifact (`target/explore_par.json`) with the measured
//! speedups so CI and the README numbers come from one place.
//!
//! Wall-clock speedup needs physical cores; on a single-core host the
//! parallel paths degenerate gracefully (same results, thread
//! overhead included in the artifact's numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gen_isa::ExecSize;
use gpu_device::{Cache, CacheConfig, ExecConfig, Executor, TraceBuffer};
use ocl_runtime::api::ArgValue;
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use serde::Serialize;
use simpoint::SimpointConfig;
use subset_select::{AppData, Exploration};
use workloads::{build_program, spec_by_name, Scale};

const PAR_THREADS: usize = 4;

fn profiled_data() -> AppData {
    let spec = spec_by_name("cb-gaussian-image").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let mut gpu = gpu_device::GpuConfig::hd4000();
    gpu.exec.threads = 1;
    subset_select::profile_app(&program, gpu, 1)
        .expect("profiles")
        .data
}

fn trace_kernel() -> gen_isa::DecodedKernel {
    let mut ir = KernelIr::new("explore_par_trace", 1);
    ir.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Const(40),
        },
        IrOp::Compute {
            ops: 12,
            width: ExecSize::S16,
        },
        IrOp::Load {
            arg: 0,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Gather,
        },
        IrOp::LoopEnd,
    ];
    gpu_device::jit::compile_kernel(&ir)
        .expect("compiles")
        .flatten()
}

fn run_traced(
    kernel: &gen_isa::DecodedKernel,
    threads: usize,
) -> (gpu_device::ExecutionStats, TraceBuffer) {
    let mut cache = Cache::new(CacheConfig::default());
    let mut trace = TraceBuffer::new();
    let stats = Executor {
        cache: &mut cache,
        trace: &mut trace,
        config: ExecConfig {
            threads,
            ..Default::default()
        },
    }
    .execute_launch(kernel, &[ArgValue::Buffer(0)], 256 * 16)
    .expect("runs");
    (stats, trace)
}

fn time<R>(f: impl Fn() -> R) -> (f64, R) {
    // One warm-up, then the median-ish of 3 timed runs (min, to damp
    // scheduler noise on shared hosts).
    f();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("ran at least once"))
}

#[derive(Serialize)]
struct Summary {
    host_cores: usize,
    threads: usize,
    explore_serial_secs: f64,
    explore_parallel_secs: f64,
    explore_speedup: f64,
    explore_bit_identical: bool,
    trace_serial_secs: f64,
    trace_sharded_secs: f64,
    trace_speedup: f64,
    trace_bit_identical: bool,
}

fn bench_explore_par(c: &mut Criterion) {
    let data = profiled_data();
    let target = subset_select::default_approx_target(&data);
    let sp = SimpointConfig::default();
    let kernel = trace_kernel();

    let mut group = c.benchmark_group("explore_par");
    group.sample_size(10);
    for threads in [1usize, PAR_THREADS] {
        group.bench_with_input(
            BenchmarkId::new("exploration_30cfg", threads),
            &threads,
            |b, &t| b.iter(|| Exploration::run_with_threads(&data, target, &sp, t)),
        );
        group.bench_with_input(
            BenchmarkId::new("traced_execution", threads),
            &threads,
            |b, &t| b.iter(|| run_traced(&kernel, t)),
        );
    }
    group.finish();

    // Summary artifact: measured speedups plus the bit-identity
    // verdicts the speedup claims are conditional on.
    let (es, ex_serial) = time(|| Exploration::run_with_threads(&data, target, &sp, 1));
    let (ep, ex_par) = time(|| Exploration::run_with_threads(&data, target, &sp, PAR_THREADS));
    let explore_identical = ex_serial.evaluations == ex_par.evaluations
        && ex_serial
            .evaluations
            .iter()
            .zip(&ex_par.evaluations)
            .all(|(a, b)| a.error_pct.to_bits() == b.error_pct.to_bits());

    let (ts, (stats_serial, trace_serial)) = time(|| run_traced(&kernel, 1));
    let (tp, (stats_par, trace_par)) = time(|| run_traced(&kernel, PAR_THREADS));
    let trace_identical = stats_serial == stats_par
        && trace_serial.records() == trace_par.records()
        && trace_serial.num_slots() == trace_par.num_slots();

    let summary = Summary {
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        threads: PAR_THREADS,
        explore_serial_secs: es,
        explore_parallel_secs: ep,
        explore_speedup: es / ep.max(1e-12),
        explore_bit_identical: explore_identical,
        trace_serial_secs: ts,
        trace_sharded_secs: tp,
        trace_speedup: ts / tp.max(1e-12),
        trace_bit_identical: trace_identical,
    };
    assert!(
        summary.explore_bit_identical,
        "parallel exploration diverged from serial"
    );
    assert!(
        summary.trace_bit_identical,
        "sharded execution diverged from serial"
    );

    let json = serde_json::to_string_pretty(&summary).expect("render summary");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/explore_par.json");
    std::fs::write(path, &json).expect("write summary artifact");
    println!("\nexplore_par summary ({path}):\n{json}");

    // With GTPIN_OBS=1, drop the telemetry view of the same runs next
    // to the summary artifact: a Perfetto-loadable Chrome trace plus
    // the per-stage rollup on stdout.
    if gtpin_obs::enabled() {
        let trace_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/explore_par_trace.json"
        );
        gtpin_obs::global()
            .write_chrome_trace(std::path::Path::new(trace_path))
            .expect("write telemetry trace");
        println!("telemetry trace: {trace_path}");
        print!("{}", gtpin_obs::global().summary());
    }
}

criterion_group!(benches, bench_explore_par);
criterion_main!(benches);
