//! Telemetry drain cost: the GTOBS01 binary journal (ring-buffered
//! fixed-width records, bulk section writes, one offline conversion
//! pass) versus the legacy direct JSONL writer (a formatted string
//! and a file write per event). The binary path must stay at least
//! 3x faster end-to-end — that margin is what justified demoting the
//! text exporters to converters — and the disabled path must stay a
//! single-branch no-op.

use std::io::Write as _;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use gtpin_obs::{ArgVal, ManualClock, Registry};
use serde::Serialize;

/// Journal lines produced per workload iteration (span exit + instant).
const LINES_PER_ITER: usize = 2;
const ITERS: usize = 8192;

/// The instrumented inner loop both paths run: a span with two args,
/// an instant with one, a counter bump, and a histogram sample.
fn workload(reg: &Registry, clock: &ManualClock, iters: usize) {
    for i in 0..iters {
        {
            let mut span = reg.span("bench.stage");
            span.arg_u64("iter", i as u64);
            span.arg_u64("items", (i as u64 * 7) & 0xFF);
            clock.advance(120);
        }
        reg.instant("bench.tick", vec![("iter", ArgVal::U64(i as u64))]);
        reg.counter_add("bench.ops", 1);
        reg.hist_record("bench.latency_ns", (i as u64 * 37) & 0x3FFF);
        clock.advance(40);
    }
}

/// Legacy shape: record, then stream every event to `journal.jsonl`
/// with one formatted line and one write call per event — what the
/// registry did before the binary journal existed.
fn legacy_jsonl(dir: &std::path::Path, iters: usize) -> std::path::PathBuf {
    let clock = Arc::new(ManualClock::new());
    let reg = Registry::new(true, Box::new(clock.clone()));
    workload(&reg, &clock, iters);
    let snap = reg.snapshot();
    let path = dir.join("legacy.jsonl");
    let mut file = std::fs::File::create(&path).expect("create legacy journal");
    for event in &snap.events {
        let line = gtpin_obs::event_jsonl_line(event);
        file.write_all(line.as_bytes()).expect("write event line");
    }
    file.write_all(gtpin_obs::totals_jsonl(&snap).as_bytes())
        .expect("write totals");
    file.sync_data().expect("sync legacy journal");
    path
}

/// Binary shape: record through the ring-buffered GTOBS01 writer,
/// flush, persist the journal, then convert it to the same JSONL.
fn binary_drain_convert(dir: &std::path::Path, iters: usize) -> std::path::PathBuf {
    let clock = Arc::new(ManualClock::new());
    let (reg, buf) = Registry::with_buffer_sink(true, Box::new(clock.clone()));
    workload(&reg, &clock, iters);
    reg.flush().expect("flush binary journal");
    let bytes = buf.lock().unwrap().clone();
    std::fs::write(dir.join("journal.gtobs"), &bytes).expect("persist binary journal");
    let path = dir.join("converted.jsonl");
    std::fs::write(&path, gtpin_obs::reader::to_jsonl(&bytes)).expect("write converted journal");
    path
}

fn time(f: impl Fn()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[derive(Serialize)]
struct DrainSummary {
    events: usize,
    legacy_jsonl_secs: f64,
    binary_drain_convert_secs: f64,
    speedup: f64,
    jsonl_identical: bool,
    disabled_ns_per_op: f64,
}

fn bench_obsdrain(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("gtpin-obsdrain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let mut group = c.benchmark_group("obs_drain");
    group.sample_size(10);
    group.bench_function("legacy_jsonl", |b| b.iter(|| legacy_jsonl(&dir, ITERS)));
    group.bench_function("binary_drain_convert", |b| {
        b.iter(|| binary_drain_convert(&dir, ITERS))
    });
    group.finish();

    // The converter must reproduce the legacy writer byte-for-byte —
    // the speedup is only meaningful if the outputs are the same.
    let legacy_path = legacy_jsonl(&dir, ITERS);
    let binary_path = binary_drain_convert(&dir, ITERS);
    let identical = std::fs::read(&legacy_path).expect("read legacy")
        == std::fs::read(&binary_path).expect("read converted");

    let legacy_secs = time(|| {
        legacy_jsonl(&dir, ITERS);
    });
    let binary_secs = time(|| {
        binary_drain_convert(&dir, ITERS);
    });

    // Disabled path: every op must reduce to a branch on a cached
    // bool. Measured per op over the same instrumented loop.
    let disabled_ns = {
        let clock = Arc::new(ManualClock::new());
        let reg = Registry::new(false, Box::new(clock.clone()));
        let iters = 200_000usize;
        let secs = time(|| workload(&reg, &clock, iters));
        secs * 1e9 / (iters * 5) as f64 // 5 instrumentation calls per iter
    };

    let summary = DrainSummary {
        events: ITERS * LINES_PER_ITER,
        legacy_jsonl_secs: legacy_secs,
        binary_drain_convert_secs: binary_secs,
        speedup: legacy_secs / binary_secs.max(1e-12),
        jsonl_identical: identical,
        disabled_ns_per_op: disabled_ns,
    };
    assert!(
        summary.jsonl_identical,
        "binary->JSONL conversion diverged from the legacy writer"
    );
    assert!(
        summary.speedup >= 3.0,
        "binary drain+convert must be >=3x the legacy JSONL writer, got {:.2}x",
        summary.speedup
    );
    // A disabled registry must cost a branch per call, nothing more.
    // 50 ns/op is an order of magnitude above the measured cost but
    // far below any path that allocates, locks, or reads a clock.
    assert!(
        summary.disabled_ns_per_op < 50.0,
        "disabled telemetry must be a near-free branch, got {:.1} ns/op",
        summary.disabled_ns_per_op
    );
    let json = serde_json::to_string_pretty(&summary).expect("render summary");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obsdrain.json");
    std::fs::write(path, &json).expect("write summary artifact");
    println!("\nobs drain summary ({path}):\n{json}");

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_obsdrain);
criterion_main!(benches);
