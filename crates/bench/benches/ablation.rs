//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Per-block vs per-instruction counting** (Section III-C): the
//!    paper's per-block counters against the naive one-bump-per-
//!    instruction design — same profile, very different overhead.
//! 2. **Instruction-weighted vs raw-count feature vectors**
//!    (Section V-B): the paper argues entries must be weighted by
//!    instruction count; this measures what the weighting buys in
//!    selection error.

use bench_suite::drivers::{approx_target, header, mean, profile_some, simpoint_config};
use gpu_device::{Gpu, GpuConfig};
use gtpin_core::{GtPin, RewriteConfig};
use ocl_runtime::runtime::{OclRuntime, Schedule};
use subset_select::{all_configs, evaluate_config_weighted, FeatureWeighting};
use workloads::{build_program, spec_by_name, Scale};

fn main() {
    ablation_counting();
    ablation_weighting();
}

/// Per-block vs per-instruction counter insertion.
fn ablation_counting() {
    header("Ablation 1: per-block vs per-instruction counters (Section III-C)");
    println!(
        "{:28} {:>12} {:>12} {:>12}",
        "app", "native", "per-block", "per-instr"
    );
    for name in [
        "cb-gaussian-buffer",
        "cb-vision-facedetect",
        "sandra-proc-gpu",
    ] {
        let spec = spec_by_name(name).expect("known app");
        let program = build_program(&spec, Scale::Test);

        let run = |config: Option<RewriteConfig>| -> (u64, f64) {
            let mut gpu = Gpu::new(GpuConfig::hd4000());
            let gtpin = config.map(|c| {
                let g = GtPin::new(c);
                g.attach(&mut gpu);
                g
            });
            let mut rt = OclRuntime::new(gpu);
            rt.run(&program, Schedule::Replay).expect("runs");
            let _ = gtpin;
            let instrs: u64 = rt
                .device()
                .launches()
                .iter()
                .map(|l| l.stats.instructions)
                .sum();
            let seconds: f64 = rt.device().launches().iter().map(|l| l.seconds).sum();
            (instrs, seconds)
        };

        let (native_i, native_s) = run(None);
        let (block_i, block_s) = run(Some(RewriteConfig::default()));
        let (naive_i, naive_s) = run(Some(RewriteConfig {
            naive_per_instruction_counters: true,
            ..RewriteConfig::default()
        }));
        println!(
            "{:28} {:>12} {:>11.2}x {:>11.2}x   (instructions)",
            name,
            native_i,
            block_i as f64 / native_i as f64,
            naive_i as f64 / native_i as f64,
        );
        println!(
            "{:28} {:>12} {:>11.2}x {:>11.2}x   (modelled time)",
            "",
            "",
            block_s / native_s,
            naive_s / native_s,
        );
    }
    println!();
    println!("paper: per-block counting is what keeps GT-Pin at 2-10x; a per-");
    println!("instruction design pays several times more for the same data");
}

/// Instruction-weighted vs raw-count feature vectors.
fn ablation_weighting() {
    header("Ablation 2: instruction-weighted vs raw-count features (Section V-B)");
    let suite = profile_some(Scale::Default, |n| {
        [
            "cb-physics-ocean-surf",
            "cb-vision-tv-l1-of",
            "sandra-crypt-aes128",
            "sonyvegas-proj-r4",
            "cb-graphics-t-rex",
        ]
        .contains(&n)
    });
    println!(
        "{:28} {:>14} {:>14}",
        "app", "weighted err", "raw-count err"
    );
    let mut weighted_all = Vec::new();
    let mut raw_all = Vec::new();
    for w in &suite {
        let data = &w.profiled.data;
        let target = approx_target(data);
        let best_under = |weighting: FeatureWeighting| -> f64 {
            all_configs(target)
                .into_iter()
                .filter_map(|cfg| {
                    evaluate_config_weighted(data, cfg, &simpoint_config(), weighting).ok()
                })
                .map(|e| e.error_pct)
                .fold(f64::INFINITY, f64::min)
        };
        let weighted = best_under(FeatureWeighting::InstructionWeighted);
        let raw = best_under(FeatureWeighting::RawCounts);
        weighted_all.push(weighted);
        raw_all.push(raw);
        println!("{:28} {:>13.3}% {:>13.3}%", w.spec.name, weighted, raw);
    }
    println!(
        "{:28} {:>13.3}% {:>13.3}%",
        "AVERAGE",
        mean(&weighted_all),
        mean(&raw_all)
    );
    println!();
    println!("paper's argument: a block executed 5 times at 20 instructions must");
    println!("outweigh one executed 10 times at 3 — weighting should not lose");
}
