//! Figure 5 — feature and division space exploration: performance
//! error and selection size for all 30 interval/feature
//! configurations, on the paper's three sample applications.

use bench_suite::drivers::{explore, header, profile_some};
use workloads::{figure5_sample_names, Scale};

fn main() {
    let samples = figure5_sample_names();
    let suite = profile_some(Scale::Default, |name| samples.contains(&name));

    for w in &suite {
        let ex = explore(&w.profiled.data);
        header(&format!("Figure 5: {}", w.spec.name));
        println!(
            "{:14} {:>12} {:>12} {:>12} {:>4}",
            "interval", "features", "error", "sel. size", "k"
        );
        for e in &ex.evaluations {
            println!(
                "{:14} {:>12} {:>11.2}% {:>11.2}% {:>4}",
                e.config.interval.label(),
                e.config.features.label(),
                e.error_pct,
                e.selection_fraction() * 100.0,
                e.selection.k,
            );
        }
        let best = ex.min_error().expect("evaluations exist");
        println!(
            "best: {} with {:.2}% error, {:.2}% of instructions selected",
            best.config,
            best.error_pct,
            best.selection_fraction() * 100.0
        );
    }
    println!();
    println!("paper shape: no single configuration is best across apps; block-based");
    println!("features tend to beat kernel-based ones; memory features usually help;");
    println!("sync-bounded intervals give the smallest errors but largest selections");
}
