//! Section III-C — GT-Pin profiling overhead.
//!
//! The paper reports that profiling runs take 2–10× as long as
//! uninstrumented executions (versus up to 2,000,000× for collecting
//! the same data by simulation). This criterion bench measures the
//! wall-clock cost of a native run versus a GT-Pin-instrumented run
//! of the same recording, plus the dynamic instruction overhead
//! factor.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_device::{Gpu, GpuConfig};
use gtpin_core::{GtPin, RewriteConfig};
use ocl_runtime::runtime::{OclRuntime, Schedule};
use workloads::{build_program, spec_by_name, Scale};

fn bench_overhead(c: &mut Criterion) {
    let spec = spec_by_name("cb-gaussian-buffer").expect("known app");
    let program = build_program(&spec, Scale::Test);

    let mut group = c.benchmark_group("gtpin_overhead");
    group.sample_size(10);

    group.bench_function("native_run", |b| {
        b.iter(|| {
            let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
            rt.run(&program, Schedule::Replay).expect("runs");
        })
    });

    group.bench_function("gtpin_full_instrumentation", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::hd4000());
            let gtpin = GtPin::new(RewriteConfig {
                count_basic_blocks: true,
                time_kernels: true,
                trace_memory: true,
                naive_per_instruction_counters: false,
            });
            gtpin.attach(&mut gpu);
            let mut rt = OclRuntime::new(gpu);
            rt.run(&program, Schedule::Replay).expect("runs");
        })
    });

    group.bench_function("gtpin_bb_counters_only", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::hd4000());
            let gtpin = GtPin::new(RewriteConfig::default());
            gtpin.attach(&mut gpu);
            let mut rt = OclRuntime::new(gpu);
            rt.run(&program, Schedule::Replay).expect("runs");
        })
    });
    group.finish();

    // Also print the dynamic-instruction overhead factor, the model's
    // analogue of the paper's 2–10× band.
    let mut gpu = Gpu::new(GpuConfig::hd4000());
    let gtpin = GtPin::new(RewriteConfig::default());
    gtpin.attach(&mut gpu);
    let mut rt = OclRuntime::new(gpu);
    rt.run(&program, Schedule::Replay).expect("runs");
    let profile = gtpin.profile(spec.name);
    let instrumented: u64 = rt
        .device()
        .launches()
        .iter()
        .map(|l| l.stats.instructions)
        .sum();
    let instrumented_seconds: f64 = rt.device().launches().iter().map(|l| l.seconds).sum();

    let mut native = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    let native_report = native.run(&program, Schedule::Replay).expect("runs");
    let native_seconds = native_report.cofluent.total_kernel_seconds();

    println!(
        "\ninstruction overhead (bb counters): {:.2}x — one counter per block, not per instruction",
        instrumented as f64 / profile.total_instructions() as f64
    );
    println!(
        "modelled run-time overhead: {:.2}x (paper band: 2-10x; trace-buffer atomics dominate)",
        instrumented_seconds / native_seconds
    );
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
