//! Shared experiment drivers for the table/figure benches.
//!
//! Every bench target regenerates one table or figure of the paper;
//! the heavy lifting (profiling all 25 applications, running the
//! 30-configuration exploration) lives here so the benches stay
//! declarative.

use gpu_device::GpuConfig;
use simpoint::SimpointConfig;
use subset_select::{profile_app, AppData, Exploration, ProfiledApp};
use workloads::{all_specs, build_program, Scale, WorkloadSpec};

/// One profiled application.
pub struct ProfiledWorkload {
    /// The spec it was built from.
    pub spec: WorkloadSpec,
    /// Profile, timings, recording.
    pub profiled: ProfiledApp,
}

/// Profile every application in the suite on the paper's HD 4000 at
/// maximum frequency (trial 1).
pub fn profile_suite(scale: Scale) -> Vec<ProfiledWorkload> {
    profile_some(scale, |_| true)
}

/// Profile a subset of the suite by name predicate.
///
/// Applications are independent, so they fan out across
/// `GTPIN_THREADS` workers (each app's device state is private);
/// results come back in suite order regardless of thread count. Each
/// per-app profile runs with device-internal parallelism disabled —
/// across-app fan-out already uses the budget.
pub fn profile_some(scale: Scale, keep: impl Fn(&str) -> bool + Sync) -> Vec<ProfiledWorkload> {
    let specs: Vec<WorkloadSpec> = all_specs().into_iter().filter(|s| keep(s.name)).collect();
    gtpin_par::parallel_map(&specs, gtpin_par::configured_threads(), |_, spec| {
        let program = build_program(spec, scale);
        let mut gpu = GpuConfig::hd4000();
        gpu.exec.threads = 1;
        let profiled = profile_app(&program, gpu, 1).expect("suite programs profile cleanly");
        ProfiledWorkload {
            spec: *spec,
            profiled,
        }
    })
}

/// The medium (~100M-instruction analogue) interval target for an
/// app: roughly two sub-intervals per synchronization epoch, the
/// same sync/approx ratio shape as Table II.
pub fn approx_target(data: &AppData) -> u64 {
    subset_select::default_approx_target(data)
}

/// The SimPoint configuration used by every experiment (max 10
/// clusters, as in all the paper's experiments).
pub fn simpoint_config() -> SimpointConfig {
    SimpointConfig::default()
}

/// Run the 30-configuration exploration for one profiled app.
pub fn explore(data: &AppData) -> Exploration {
    Exploration::run(data, approx_target(data), &simpoint_config())
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a large count with thousands separators.
pub fn thousands(mut n: u64) -> String {
    let mut parts = Vec::new();
    while n >= 1000 {
        parts.push(format!("{:03}", n % 1000));
        n /= 1000;
    }
    parts.push(n.to_string());
    parts.reverse();
    parts.join(",")
}

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1234), "1,234");
        assert_eq!(thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.153), "15.3%");
    }
}
