//! Quick timing probe for the full pipeline at Default scale.
use gpu_device::GpuConfig;
use simpoint::SimpointConfig;
use std::time::Instant;
use subset_select::{profile_app, Exploration};
use workloads::{all_specs, build_program, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only: Option<&str> = args.get(1).map(|s| s.as_str());
    let t_all = Instant::now();
    for spec in all_specs() {
        if let Some(name) = only {
            if spec.name != name {
                continue;
            }
        }
        let t0 = Instant::now();
        let program = build_program(&spec, Scale::Default);
        let t_build = t0.elapsed();
        let t1 = Instant::now();
        let p = profile_app(&program, GpuConfig::hd4000(), 1).unwrap();
        let t_prof = t1.elapsed();
        let t2 = Instant::now();
        let approx = p.data.total_instructions() / 60;
        let ex = Exploration::run(&p.data, approx.max(1000), &SimpointConfig::default());
        let t_ex = t2.elapsed();
        let best = ex.min_error().unwrap();
        println!(
            "{:28} instrs={:>9} inv={:>5} build={:>6.1?} profile={:>6.1?} explore={:>6.1?} bestcfg={} err={:.3}% speedup={:.0}x",
            spec.name, p.data.total_instructions(), p.data.invocations.len(),
            t_build, t_prof, t_ex, best.config, best.error_pct, best.speedup()
        );
    }
    println!("total: {:?}", t_all.elapsed());

    // With GTPIN_OBS=1 the probe doubles as a telemetry report:
    // per-stage span rollups plus the Chrome trace/journal artifacts.
    if gtpin_obs::enabled() {
        println!("\ntelemetry summary:");
        print!("{}", gtpin_obs::global().summary());
        match gtpin_obs::write_artifacts() {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("failed to write telemetry artifacts: {e}"),
        }
    }
}
