//! # bench-suite
//!
//! Experiment drivers and bench targets regenerating every table and
//! figure of the GT-Pin paper. Run `cargo bench -p bench-suite` to
//! produce them all, or a single target, e.g.
//! `cargo bench -p bench-suite --bench fig6_min_error`.
//!
//! | target | reproduces |
//! |---|---|
//! | `tab1_benchmarks` | Table I + Figure 2 (system) |
//! | `fig3_characterization` | Figure 3a/3b/3c |
//! | `fig4_work` | Figure 4a/4b/4c |
//! | `tab2_interval_space` | Table II |
//! | `fig5_explore` | Figure 5 (3 sample apps × 30 configs) |
//! | `fig6_min_error` | Figure 6 (per-app error-minimizing config) |
//! | `fig7_cooptimize` | Figure 7 (threshold sweep) |
//! | `fig8_validation` | Figure 8 (trials / frequencies / generations) |
//! | `overhead` | Section III-C (GT-Pin 2–10× overhead) |
//! | `simspeed` | Section I (detailed simulation ≫ native) |
//! | `kmeans_perf` | SimPoint clustering throughput |

pub mod drivers;
