//! The 25 applications of Table I, with knobs calibrated to the
//! shapes reported in Figures 3 and 4 (at ~1e-5 dynamic scale; see
//! DESIGN.md for the scale note).

use crate::spec::{MixProfile, SimdProfile, Suite, WorkloadSpec};

const MIX_TYPICAL: MixProfile = MixProfile {
    moves: 0.28,
    logic: 0.23,
    control: 0.073,
    compute: 0.365,
    send: 0.052,
};
const MIX_COMPUTE: MixProfile = MixProfile {
    moves: 0.18,
    logic: 0.15,
    control: 0.06,
    compute: 0.56,
    send: 0.05,
};
const MIX_CRYPTO: MixProfile = MixProfile {
    moves: 0.20,
    logic: 0.45,
    control: 0.05,
    compute: 0.22,
    send: 0.08,
};
const MIX_STRESS: MixProfile = MixProfile {
    moves: 0.03,
    logic: 0.02,
    control: 0.02,
    compute: 0.91,
    send: 0.02,
};
const MIX_BRANCHY: MixProfile = MixProfile {
    moves: 0.26,
    logic: 0.25,
    control: 0.11,
    compute: 0.33,
    send: 0.05,
};

const SIMD_TYPICAL: SimdProfile = SimdProfile {
    w16: 0.55,
    w8: 0.42,
    w4: 0.0,
    w1: 0.03,
};
const SIMD_WIDE: SimdProfile = SimdProfile {
    w16: 0.80,
    w8: 0.17,
    w4: 0.0,
    w1: 0.03,
};
const SIMD_NARROW: SimdProfile = SimdProfile {
    w16: 0.30,
    w8: 0.62,
    w4: 0.05,
    w1: 0.03,
};

/// The 25 benchmark specifications, in the paper's x-axis order.
pub fn all_specs() -> Vec<WorkloadSpec> {
    let mut specs = Vec::with_capacity(25);
    let mut push = |s: WorkloadSpec| specs.push(s);

    // --- CompuBench CL 1.2 Desktop -------------------------------
    push(WorkloadSpec {
        name: "cb-graphics-t-rex",
        suite: Suite::CompuBenchDesktop,
        unique_kernels: 24,
        total_bbs: 2000,
        invocations: 1500,
        target_instructions: 6_000_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.02,
        mix: MIX_TYPICAL,
        simd: SIMD_WIDE,
        read_intensity: 4.0,
        write_intensity: 0.8,
        gws: 512,
        phases: 6,
        gather_heavy: false,
        seed: 0xA101,
    });
    push(WorkloadSpec {
        name: "cb-physics-ocean-surf",
        suite: Suite::CompuBenchDesktop,
        unique_kernels: 12,
        total_bbs: 900,
        invocations: 800,
        target_instructions: 5_000_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.03,
        mix: MIX_COMPUTE,
        simd: SIMD_TYPICAL,
        read_intensity: 3.0,
        write_intensity: 0.6,
        gws: 512,
        phases: 5,
        gather_heavy: false,
        seed: 0xA102,
    });
    push(WorkloadSpec {
        name: "cb-physics-part-sim-64k",
        suite: Suite::CompuBenchDesktop,
        unique_kernels: 8,
        total_bbs: 600,
        invocations: 2000,
        target_instructions: 8_000_000,
        kernel_call_frac: 0.20,
        sync_frac: 0.03,
        mix: MIX_COMPUTE,
        simd: SIMD_TYPICAL,
        read_intensity: 2.5,
        write_intensity: 1.0,
        gws: 1024,
        phases: 5,
        gather_heavy: false,
        seed: 0xA103,
    });
    push(WorkloadSpec {
        name: "cb-throughput-bitcoin",
        suite: Suite::CompuBenchDesktop,
        unique_kernels: 3,
        total_bbs: 400,
        invocations: 700,
        target_instructions: 12_000_000,
        kernel_call_frac: 0.045,
        sync_frac: 0.01,
        mix: MIX_CRYPTO,
        simd: SIMD_TYPICAL,
        read_intensity: 1.0,
        write_intensity: 0.1,
        gws: 2048,
        phases: 3,
        gather_heavy: false,
        seed: 0xA104,
    });
    push(WorkloadSpec {
        name: "cb-vision-facedetect",
        suite: Suite::CompuBenchDesktop,
        unique_kernels: 20,
        total_bbs: 1500,
        invocations: 1200,
        target_instructions: 4_000_000,
        kernel_call_frac: 0.12,
        sync_frac: 0.04,
        mix: MIX_BRANCHY,
        simd: SIMD_NARROW,
        read_intensity: 5.0,
        write_intensity: 0.4,
        gws: 256,
        phases: 6,
        gather_heavy: true,
        seed: 0xA105,
    });
    push(WorkloadSpec {
        name: "cb-vision-tv-l1-of",
        suite: Suite::CompuBenchDesktop,
        unique_kernels: 15,
        total_bbs: 1200,
        invocations: 1800,
        target_instructions: 7_000_000,
        kernel_call_frac: 0.14,
        sync_frac: 0.03,
        mix: MIX_TYPICAL,
        simd: SIMD_TYPICAL,
        read_intensity: 6.0,
        write_intensity: 0.8,
        gws: 512,
        phases: 6,
        gather_heavy: true,
        seed: 0xA106,
    });

    // --- CompuBench CL 1.2 Mobile --------------------------------
    push(WorkloadSpec {
        name: "cb-graphics-provence",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 30,
        total_bbs: 2500,
        invocations: 1000,
        target_instructions: 5_000_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.02,
        mix: MIX_TYPICAL,
        simd: SIMD_WIDE,
        read_intensity: 4.5,
        write_intensity: 0.9,
        gws: 512,
        phases: 6,
        gather_heavy: false,
        seed: 0xB201,
    });
    push(WorkloadSpec {
        name: "cb-gaussian-buffer",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 2,
        total_bbs: 30,
        invocations: 250,
        target_instructions: 1_500_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.05,
        mix: MIX_TYPICAL,
        simd: SIMD_TYPICAL,
        read_intensity: 5.5,
        write_intensity: 2.0,
        gws: 512,
        phases: 3,
        gather_heavy: false,
        seed: 0xB202,
    });
    push(WorkloadSpec {
        name: "cb-gaussian-image",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 1,
        total_bbs: 12,
        invocations: 55,
        target_instructions: 600_000,
        kernel_call_frac: 0.12,
        sync_frac: 0.06,
        mix: MIX_TYPICAL,
        simd: SIMD_TYPICAL,
        read_intensity: 5.0,
        write_intensity: 2.2,
        gws: 512,
        phases: 2,
        gather_heavy: false,
        seed: 0xB203,
    });
    push(WorkloadSpec {
        name: "cb-histogram-buffer",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 2,
        total_bbs: 16,
        invocations: 300,
        target_instructions: 1_000_000,
        kernel_call_frac: 0.18,
        sync_frac: 0.05,
        mix: MIX_BRANCHY,
        simd: SIMD_NARROW,
        read_intensity: 6.5,
        write_intensity: 0.3,
        gws: 256,
        phases: 3,
        gather_heavy: true,
        seed: 0xB204,
    });
    push(WorkloadSpec {
        name: "cb-histogram-image",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 1,
        total_bbs: 7,
        invocations: 200,
        target_instructions: 800_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.05,
        mix: MIX_BRANCHY,
        simd: SIMD_NARROW,
        read_intensity: 6.0,
        write_intensity: 0.3,
        gws: 256,
        phases: 3,
        gather_heavy: true,
        seed: 0xB205,
    });
    push(WorkloadSpec {
        name: "cb-physics-part-sim-32k",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 8,
        total_bbs: 600,
        invocations: 2200,
        target_instructions: 6_000_000,
        kernel_call_frac: 0.765,
        sync_frac: 0.02,
        mix: MIX_COMPUTE,
        simd: SIMD_TYPICAL,
        read_intensity: 2.0,
        write_intensity: 0.9,
        gws: 512,
        phases: 5,
        gather_heavy: false,
        seed: 0xB206,
    });
    push(WorkloadSpec {
        name: "cb-throughput-ao",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 4,
        total_bbs: 250,
        invocations: 400,
        target_instructions: 5_000_000,
        kernel_call_frac: 0.20,
        sync_frac: 0.04,
        mix: MIX_COMPUTE,
        simd: SIMD_WIDE,
        read_intensity: 2.0,
        write_intensity: 0.5,
        gws: 1024,
        phases: 4,
        gather_heavy: false,
        seed: 0xB207,
    });
    push(WorkloadSpec {
        name: "cb-throughput-juliaset",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 1,
        total_bbs: 60,
        invocations: 100,
        target_instructions: 3_000_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.257,
        mix: MIX_COMPUTE,
        simd: SIMD_WIDE,
        read_intensity: 0.5,
        write_intensity: 0.4,
        gws: 2048,
        phases: 4,
        gather_heavy: false,
        seed: 0xB208,
    });
    push(WorkloadSpec {
        name: "cb-vision-facedetect-m",
        suite: Suite::CompuBenchMobile,
        unique_kernels: 18,
        total_bbs: 1300,
        invocations: 900,
        target_instructions: 3_000_000,
        kernel_call_frac: 0.13,
        sync_frac: 0.04,
        mix: MIX_BRANCHY,
        simd: SIMD_NARROW,
        read_intensity: 4.5,
        write_intensity: 0.4,
        gws: 256,
        phases: 6,
        gather_heavy: true,
        seed: 0xB209,
    });

    // --- SiSoftware Sandra 2014 ----------------------------------
    push(WorkloadSpec {
        name: "sandra-crypt-aes128",
        suite: Suite::Sandra,
        unique_kernels: 4,
        total_bbs: 5000,
        invocations: 900,
        target_instructions: 10_000_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.02,
        mix: MIX_CRYPTO,
        simd: SIMD_NARROW,
        read_intensity: 8.0,
        write_intensity: 1.0,
        gws: 1024,
        phases: 4,
        gather_heavy: false,
        seed: 0xC301,
    });
    push(WorkloadSpec {
        name: "sandra-crypt-aes256",
        suite: Suite::Sandra,
        unique_kernels: 4,
        total_bbs: 7000,
        invocations: 900,
        target_instructions: 12_000_000,
        kernel_call_frac: 0.15,
        sync_frac: 0.02,
        mix: MIX_CRYPTO,
        simd: SIMD_NARROW,
        read_intensity: 15.0,
        write_intensity: 1.2,
        gws: 1024,
        phases: 4,
        gather_heavy: false,
        seed: 0xC302,
    });
    push(WorkloadSpec {
        name: "sandra-proc-gpu",
        suite: Suite::Sandra,
        unique_kernels: 6,
        total_bbs: 300,
        invocations: 600,
        target_instructions: 15_000_000,
        kernel_call_frac: 0.20,
        sync_frac: 0.02,
        mix: MIX_STRESS,
        simd: SIMD_WIDE,
        read_intensity: 0.3,
        write_intensity: 0.1,
        gws: 1024,
        phases: 3,
        gather_heavy: false,
        seed: 0xC303,
    });

    // --- Sony Vegas Pro 2013 press-project regions ---------------
    let sony = [
        // (region, inv, instr, read, write, phases)
        (1u32, 1200u32, 5_000_000u64, 0.8, 2.0, 6u32),
        (2, 1500, 6_000_000, 0.6, 2.5, 7),
        (3, 1800, 7_000_000, 0.5, 3.0, 7),
        (4, 2000, 8_000_000, 0.7, 2.2, 8),
        (5, 2300, 9_000_000, 0.01, 5.25, 8),
        (6, 1400, 6_000_000, 0.9, 1.8, 6),
        (7, 1600, 7_000_000, 0.4, 2.8, 7),
    ];
    for (r, inv, instr, read, write, phases) in sony {
        push(WorkloadSpec {
            name: match r {
                1 => "sonyvegas-proj-r1",
                2 => "sonyvegas-proj-r2",
                3 => "sonyvegas-proj-r3",
                4 => "sonyvegas-proj-r4",
                5 => "sonyvegas-proj-r5",
                6 => "sonyvegas-proj-r6",
                _ => "sonyvegas-proj-r7",
            },
            suite: Suite::SonyVegas,
            unique_kernels: 10 + r,
            total_bbs: 700 + 60 * r,
            invocations: inv,
            target_instructions: instr,
            kernel_call_frac: 0.15,
            sync_frac: 0.03,
            mix: MIX_TYPICAL,
            simd: SIMD_TYPICAL,
            read_intensity: read,
            write_intensity: write,
            gws: 512,
            phases,
            gather_heavy: false,
            seed: 0xD400 + r as u64,
        });
    }

    specs
}

/// Look up a spec by name.
pub fn spec_by_name(name: &str) -> Option<WorkloadSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// The three sample applications Figure 5 plots in detail.
pub fn figure5_sample_names() -> [&'static str; 3] {
    [
        "cb-physics-ocean-surf",
        "sandra-crypt-aes128",
        "sonyvegas-proj-r3",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_distinct_apps() {
        let specs = all_specs();
        assert_eq!(specs.len(), 25);
        let names: std::collections::HashSet<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn suite_membership_matches_table_i() {
        let specs = all_specs();
        let count = |s: Suite| specs.iter().filter(|w| w.suite == s).count();
        assert_eq!(count(Suite::CompuBenchDesktop), 6);
        assert_eq!(count(Suite::CompuBenchMobile), 9);
        assert_eq!(count(Suite::Sandra), 3);
        assert_eq!(count(Suite::SonyVegas), 7);
    }

    #[test]
    fn figure3b_shape_holds() {
        let specs = all_specs();
        let kernels: Vec<u32> = specs.iter().map(|s| s.unique_kernels).collect();
        assert_eq!(*kernels.iter().min().unwrap(), 1);
        assert!(*kernels.iter().max().unwrap() <= 50);
        let mean = kernels.iter().sum::<u32>() as f64 / 25.0;
        assert!((5.0..20.0).contains(&mean), "paper mean 10.2, ours {mean}");
        let bbs: Vec<u32> = specs.iter().map(|s| s.total_bbs).collect();
        assert!(*bbs.iter().min().unwrap() >= 7);
        let bb_mean = bbs.iter().sum::<u32>() as f64 / 25.0;
        assert!(
            (600.0..2500.0).contains(&bb_mean),
            "paper mean 1139, ours {bb_mean}"
        );
    }

    #[test]
    fn extremes_match_the_paper() {
        let bitcoin = spec_by_name("cb-throughput-bitcoin").unwrap();
        assert!((bitcoin.kernel_call_frac - 0.045).abs() < 1e-9);
        let partsim = spec_by_name("cb-physics-part-sim-32k").unwrap();
        assert!((partsim.kernel_call_frac - 0.765).abs() < 1e-9);
        let julia = spec_by_name("cb-throughput-juliaset").unwrap();
        assert!((julia.sync_frac - 0.257).abs() < 1e-9);
        let procgpu = spec_by_name("sandra-proc-gpu").unwrap();
        assert!(procgpu.mix.compute > 0.9, "proc-gpu stresses computation");
        let r5 = spec_by_name("sonyvegas-proj-r5").unwrap();
        assert!(
            r5.write_intensity / r5.read_intensity > 100.0,
            "proj-r5 writes ≫ reads"
        );
        let gauss = spec_by_name("cb-gaussian-image").unwrap();
        assert_eq!(gauss.invocations, 55, "the shortest app by invocations");
    }

    #[test]
    fn sample_apps_exist() {
        for name in figure5_sample_names() {
            assert!(spec_by_name(name).is_some(), "{name}");
        }
    }
}
