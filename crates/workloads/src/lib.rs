//! # workloads
//!
//! The 25 commercial and benchmark OpenCL applications of the GT-Pin
//! study (Table I), reproduced as calibrated synthetic programs:
//! 15 CompuBench CL 1.2 apps (desktop + mobile), 3 SiSoftware Sandra
//! 2014 apps, and 7 Sony Vegas Pro press-project regions.
//!
//! Each application is generated from a [`WorkloadSpec`] whose knobs
//! are calibrated to the shapes the paper reports: API-call
//! breakdowns (Figure 3a), program structures (3b), dynamic work
//! (3c, scaled to ~1e-5), instruction mixes (4a), SIMD widths (4b),
//! and memory byte intensities (4c). Programs have genuine *phase*
//! structure — per-phase kernel subsets, argument scales, selector
//! branches, and work sizes — which is what simulation subset
//! selection exploits.
//!
//! # Example
//!
//! ```
//! use workloads::{build_program, spec_by_name, Scale};
//!
//! let spec = spec_by_name("cb-throughput-juliaset").expect("known app");
//! let program = build_program(&spec, Scale::Test);
//! assert!(program.num_invocations() > 0);
//! ```

pub mod builder;
pub mod luxmark;
pub mod spec;
pub mod suite;

pub use builder::build_program;
pub use luxmark::luxmark_score;
pub use spec::{MixProfile, Scale, SimdProfile, Suite, WorkloadSpec};
pub use suite::{all_specs, figure5_sample_names, spec_by_name};
