//! Workload specifications: the calibration knobs that shape each of
//! the 25 applications of Table I.
//!
//! Every knob traces to a figure in the paper: API-call fractions to
//! Figure 3a, kernel/block counts to Figure 3b, invocation and
//! instruction counts to Figure 3c (scaled by [`Scale`]),
//! instruction mixes to Figure 4a, SIMD widths to Figure 4b, and
//! byte intensities to Figure 4c.

use serde::{Deserialize, Serialize};

/// Which benchmark suite an application comes from (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// CompuBench CL 1.2 Desktop.
    CompuBenchDesktop,
    /// CompuBench CL 1.2 Mobile.
    CompuBenchMobile,
    /// SiSoftware Sandra 2014.
    Sandra,
    /// Sony Vegas Pro 2013 press-project regions.
    SonyVegas,
}

impl Suite {
    /// Display name as in Table I.
    pub fn label(self) -> &'static str {
        match self {
            Suite::CompuBenchDesktop => "CompuBench CL 1.2 Desktop",
            Suite::CompuBenchMobile => "CompuBench CL 1.2 Mobile",
            Suite::Sandra => "SiSoftware Sandra 2014",
            Suite::SonyVegas => "Sony Vegas Pro 2013",
        }
    }
}

/// Dynamic instruction-mix targets (fractions of Figure 4a; sums to
/// ~1, the generator treats them as proportions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixProfile {
    /// `mov`/`sel` fraction.
    pub moves: f64,
    /// Logic fraction.
    pub logic: f64,
    /// Control fraction.
    pub control: f64,
    /// Computation fraction.
    pub compute: f64,
    /// Send fraction.
    pub send: f64,
}

/// SIMD-width mix targets (fractions of Figure 4b; widths 16/8/4/1 —
/// width 2 is never used, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimdProfile {
    /// 16-wide fraction.
    pub w16: f64,
    /// 8-wide fraction.
    pub w8: f64,
    /// 4-wide fraction.
    pub w4: f64,
    /// Scalar fraction.
    pub w1: f64,
}

/// Execution scale: divides instruction and invocation targets so
/// tests stay fast while benches run the calibrated sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ÷8 on both instructions and invocations (per-invocation size
    /// is preserved) — unit/integration tests.
    Test,
    /// The calibrated size (~1e-5 of the paper's dynamic counts).
    Default,
}

impl Scale {
    /// Divisor applied to the instruction target.
    pub fn instruction_divisor(self) -> u64 {
        match self {
            Scale::Test => 8,
            Scale::Default => 1,
        }
    }

    /// Divisor applied to the invocation count.
    pub fn invocation_divisor(self) -> u32 {
        match self {
            Scale::Test => 8,
            Scale::Default => 1,
        }
    }
}

/// The full knob set for one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Application name (paper's x-axis labels).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Unique kernels (Figure 3b: 1–50, mean 10.2).
    pub unique_kernels: u32,
    /// Approximate unique basic blocks across kernels (Figure 3b:
    /// 7–11500, mean 1139).
    pub total_bbs: u32,
    /// Kernel invocations (Figure 3c, scaled ÷8 from the paper).
    pub invocations: u32,
    /// Total dynamic instruction target (Figure 3c, ~1e-5 of paper).
    pub target_instructions: u64,
    /// Fraction of API calls that are kernel launches (Figure 3a;
    /// bitcoin 4.5%, part-sim-32k 76.5%, typical ~15%).
    pub kernel_call_frac: f64,
    /// Fraction that are synchronization calls (juliaset 25.7%,
    /// average 6.8%, most below 3%).
    pub sync_frac: f64,
    /// Instruction-mix targets.
    pub mix: MixProfile,
    /// SIMD-width targets.
    pub simd: SimdProfile,
    /// Bytes read per dynamic instruction (Figure 4c).
    pub read_intensity: f64,
    /// Bytes written per dynamic instruction.
    pub write_intensity: f64,
    /// Global work size per launch.
    pub gws: u64,
    /// Number of distinct program phases the host script cycles
    /// through (drives the subset-selection structure).
    pub phases: u32,
    /// Whether memory accesses tend to gather (cache-hostile) or
    /// stream.
    pub gather_heavy: bool,
    /// Generator seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Scaled instruction target.
    pub fn instructions_at(&self, scale: Scale) -> u64 {
        (self.target_instructions / scale.instruction_divisor()).max(10_000)
    }

    /// Scaled invocation count.
    pub fn invocations_at(&self, scale: Scale) -> u32 {
        (self.invocations / scale.invocation_divisor()).max(8)
    }
}
