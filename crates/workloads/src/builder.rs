//! Building runnable host programs from workload specifications.
//!
//! Three steps:
//!
//! 1. **Kernel generation** — each kernel's IR is shaped to the
//!    spec's instruction mix, SIMD profile, memory intensities, and
//!    basic-block budget. Kernels carry a *phase-selector* argument
//!    that enables/disables branch regions, so different host phases
//!    execute different block subsets, and a *trip-count* argument
//!    that scales dynamic work.
//! 2. **Calibration** — each compiled kernel is executed twice on a
//!    single hardware thread to fit `instructions(trip) = a + b·trip`
//!    exactly; the base trip count is then solved so the whole
//!    program hits the spec's dynamic instruction target.
//! 3. **Host-script generation** — launches are grouped into phases
//!    with per-phase kernel subsets, argument scales and work sizes;
//!    synchronization calls and filler API calls are interleaved to
//!    hit the spec's Figure 3a call fractions.

use gen_isa::ExecSize;
use gpu_device::{Cache, CacheConfig, ExecConfig, Executor, TraceBuffer};
use ocl_runtime::api::{ArgValue, KernelId, SyncCall};
use ocl_runtime::host::{HostProgram, HostScriptBuilder, ProgramSource};
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Scale, WorkloadSpec};

/// Argument layout every generated kernel uses.
pub const ARG_TRIP: u8 = 0;
/// Source buffer argument index.
pub const ARG_SRC: u8 = 1;
/// Destination buffer argument index.
pub const ARG_DST: u8 = 2;
/// Phase-selector argument index.
pub const ARG_SELECTOR: u8 = 3;

/// Build the runnable host program for a spec at a given scale.
///
/// # Panics
///
/// Panics only on internal generator bugs (every generated program
/// passes `HostProgram::check`).
pub fn build_program(spec: &WorkloadSpec, scale: Scale) -> HostProgram {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let kernels: Vec<KernelIr> = (0..spec.unique_kernels)
        .map(|k| gen_kernel(spec, k, &mut rng))
        .collect();
    let fits = calibrate(&kernels);
    gen_host(spec, scale, kernels, &fits)
}

fn widths(profile: crate::spec::SimdProfile) -> Vec<(ExecSize, f64)> {
    let total = (profile.w16 + profile.w8 + profile.w4).max(1e-9);
    vec![
        (ExecSize::S16, profile.w16 / total),
        (ExecSize::S8, profile.w8 / total),
        (ExecSize::S4, profile.w4 / total),
    ]
}

/// Emit `ops` of one IR statement kind, split across SIMD widths.
fn emit_mixed(
    body: &mut Vec<IrOp>,
    ops: usize,
    profile: &[(ExecSize, f64)],
    make: impl Fn(u16, ExecSize) -> IrOp,
) {
    let mut remaining = ops;
    for (i, &(w, frac)) in profile.iter().enumerate() {
        let n = if i + 1 == profile.len() {
            remaining
        } else {
            ((ops as f64 * frac).round() as usize).min(remaining)
        };
        if n > 0 {
            body.push(make(n as u16, w));
            remaining -= n;
        }
    }
}

fn gen_kernel(spec: &WorkloadSpec, index: u32, rng: &mut StdRng) -> KernelIr {
    let mut ir = KernelIr::new(format!("{}_k{}", spec.name, index), 4);
    let profile = widths(spec.simd);

    // Per-iteration instruction budget from the control-fraction
    // target: each loop iteration costs one `brc`, and each inner if
    // costs another. The 1.4 factor compensates for the branches in
    // the per-thread preamble (selector regions), which otherwise
    // push the dynamic control fraction past the target (the
    // preamble adds roughly one branch per generated branch).
    let n_if_inner = if spec.mix.control > 0.09 { 2usize } else { 1 };
    let t = (2.1 * ((1 + n_if_inner) as f64) / spec.mix.control.max(0.01)).round() as usize;
    let t = t.clamp(8, 400);

    // Memory allocation within the iteration: when both directions
    // are used, both get at least one send site, split by intensity.
    let rw_total = spec.read_intensity + spec.write_intensity;
    let both = spec.read_intensity > 0.0 && spec.write_intensity > 0.0;
    let send_ops = ((t as f64 * spec.mix.send).round() as usize).max(if both { 2 } else { 1 });
    let loads = if spec.read_intensity <= 0.0 {
        0
    } else if spec.write_intensity <= 0.0 {
        send_ops
    } else {
        ((send_ops as f64 * spec.read_intensity / rw_total.max(1e-9)).round() as usize)
            .clamp(1, send_ops - 1)
    };
    let stores = send_ops - loads;
    let bytes_per_load = if loads > 0 {
        ((spec.read_intensity * t as f64 / loads as f64 / 4.0).round() as u32 * 4).clamp(4, 16384)
    } else {
        0
    };
    let bytes_per_store = if stores > 0 {
        ((spec.write_intensity * t as f64 / stores as f64 / 4.0).round() as u32 * 4).clamp(4, 16384)
    } else {
        0
    };

    // ALU allocation (address math is emitted by the JIT per send,
    // roughly two ops each, so discount it from compute).
    let moves = ((t as f64 * spec.mix.moves).round() as usize).max(1);
    let logic = ((t as f64 * spec.mix.logic).round() as usize)
        .saturating_sub(1)
        .max(1);
    let addr_overhead = send_ops * 2 + if spec.gather_heavy { loads * 3 } else { 0 };
    let compute = ((t as f64 * spec.mix.compute).round() as usize)
        .saturating_sub(1 + addr_overhead)
        .max(1);
    let math = (compute / 8).min(40);
    let compute = compute - math;

    // Static basic-block budget: a handful of *active* selector
    // regions outside the loop, plus a cold region holding the rest
    // (large applications carry large amounts of rarely-executed
    // code, which is exactly how the paper's apps reach thousands of
    // static blocks).
    let bb_target = {
        let base = (spec.total_bbs / spec.unique_kernels).max(4);
        let jitter = rng.gen_range(0.7..1.3);
        ((base as f64 * jitter) as u32).max(4)
    };
    let n_regions = (bb_target.saturating_sub(4) / 2) as usize;
    let active_regions = n_regions.min(3);
    let cold_regions = n_regions - active_regions;

    for j in 0..active_regions {
        ir.body.push(IrOp::IfArgLt {
            arg: ARG_SELECTOR,
            value: ((j * 89 + 17) % 100) as u32,
        });
        ir.body.push(IrOp::Move {
            ops: 2,
            width: ExecSize::S8,
        });
        ir.body.push(IrOp::EndIf);
    }
    if cold_regions > 0 {
        // `arg3 < 0` is never true for unsigned selectors: the whole
        // region is statically present but dynamically skipped.
        ir.body.push(IrOp::IfArgLt {
            arg: ARG_SELECTOR,
            value: 0,
        });
        for _ in 0..cold_regions {
            ir.body.push(IrOp::IfArgLt {
                arg: ARG_SELECTOR,
                value: 1,
            });
            ir.body.push(IrOp::Compute {
                ops: 2,
                width: ExecSize::S8,
            });
            ir.body.push(IrOp::EndIf);
        }
        ir.body.push(IrOp::EndIf);
    }

    // The hot loop.
    ir.body.push(IrOp::LoopBegin {
        trip: TripCount::Arg(ARG_TRIP),
    });
    for j in 0..n_if_inner {
        ir.body.push(IrOp::IfArgLt {
            arg: ARG_SELECTOR,
            value: ((j * 53 + 29) % 100) as u32,
        });
        ir.body.push(IrOp::Compute {
            ops: 2,
            width: ExecSize::S16,
        });
        ir.body.push(IrOp::EndIf);
    }
    emit_mixed(&mut ir.body, moves, &profile, |ops, width| IrOp::Move {
        ops,
        width,
    });
    emit_mixed(&mut ir.body, logic, &profile, |ops, width| IrOp::Logic {
        ops,
        width,
    });
    emit_mixed(&mut ir.body, compute, &profile, |ops, width| {
        IrOp::Compute { ops, width }
    });
    if math > 0 {
        ir.body.push(IrOp::MathCompute {
            ops: math as u16,
            width: ExecSize::S8,
        });
    }
    let pattern = if spec.gather_heavy {
        AccessPattern::Gather
    } else if index % 3 == 2 {
        AccessPattern::Strided(256)
    } else {
        AccessPattern::Linear
    };
    for _ in 0..loads {
        ir.body.push(IrOp::Load {
            arg: ARG_SRC,
            bytes: bytes_per_load,
            width: ExecSize::S16,
            pattern,
        });
    }
    for _ in 0..stores {
        ir.body.push(IrOp::Store {
            arg: ARG_DST,
            bytes: bytes_per_store,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        });
    }
    ir.body.push(IrOp::LoopEnd);
    debug_assert!(ir.check().is_ok(), "generated IR must be well-formed");
    ir
}

/// Linear fit of per-thread dynamic instructions against the trip
/// argument: `instructions(trip) = a + b·trip`.
#[derive(Debug, Clone, Copy)]
pub struct TripFit {
    /// Fixed per-thread cost.
    pub a: f64,
    /// Per-iteration cost.
    pub b: f64,
}

/// Fit every kernel by executing it twice on one hardware thread.
fn calibrate(kernels: &[KernelIr]) -> Vec<TripFit> {
    kernels
        .iter()
        .map(|ir| {
            // Transient (injected) build failures are retried like the
            // driver retries them; only persistent failures panic —
            // generated IR is well-formed by construction. The retry
            // bound only matters at injection rates near 1.0.
            let mut attempts = 0u32;
            let bin = loop {
                match gpu_device::jit::compile_kernel(ir) {
                    Ok(k) => break k,
                    Err(e) if e.is_transient() && attempts < 32 => {
                        attempts += 1;
                        gtpin_faults::note("recovered.calibrate_retry", 1);
                    }
                    Err(e) => panic!("generated IR compiles: {e}"),
                }
            }
            .flatten();
            let run = |trip: u64| -> f64 {
                let mut cache = Cache::new(CacheConfig::default());
                let mut trace = TraceBuffer::new();
                let args = [
                    ArgValue::Scalar(trip),
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Scalar(50),
                ];
                Executor {
                    cache: &mut cache,
                    trace: &mut trace,
                    config: ExecConfig::default(),
                }
                .execute_launch(&bin, &args, 16)
                .expect("calibration run succeeds")
                .instructions as f64
            };
            let i2 = run(2);
            let i6 = run(6);
            let b = (i6 - i2) / 4.0;
            TripFit {
                a: i2 - 2.0 * b,
                b: b.max(1.0),
            }
        })
        .collect()
}

fn gen_host(
    spec: &WorkloadSpec,
    scale: Scale,
    kernels: Vec<KernelIr>,
    fits: &[TripFit],
) -> HostProgram {
    let uk = kernels.len();
    let invocations = spec.invocations_at(scale) as usize;
    let target = spec.instructions_at(scale) as f64;
    let phases = spec.phases.max(1) as usize;

    // Phase parameters (deterministic from the seed).
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x505);
    let phase_trip_mult: Vec<f64> = (0..phases).map(|_| rng.gen_range(0.5..2.2)).collect();
    let phase_gws_mult: Vec<u64> = (0..phases)
        .map(|p| if p % 3 == 2 { 2 } else { 1 })
        .collect();
    let phase_selector: Vec<u64> = (0..phases).map(|p| ((p * 37 + 11) % 100) as u64).collect();
    let subset = |p: usize, i: usize| -> usize {
        let span = uk.clamp(1, 4);
        (p * 7 + (i % span) * 3 + i % span) % uk
    };
    // Per-launch argument jitter: real hosts pass slightly different
    // sizes/iteration counts every frame. The diversity also matters
    // methodologically — argument-keyed feature vectors (KN-ARGS)
    // fragment under it, while instruction-weighted block features
    // stay smooth, which is why the paper finds BB features win for
    // most applications.
    let jitter = [0.7, 0.85, 1.0, 1.1, 1.25, 1.4, 0.95];

    // Solve the base trip count against the instruction target.
    let mut fixed = 0.0;
    let mut slope = 0.0;
    for i in 0..invocations {
        let p = i * phases / invocations;
        let k = subset(p, i);
        let threads = (spec.gws * phase_gws_mult[p]).div_ceil(16) as f64;
        fixed += threads * fits[k].a;
        slope += threads * fits[k].b * phase_trip_mult[p] * jitter[i % 3];
    }
    let base_trip = (((target - fixed) / slope.max(1.0)).round() as i64).max(1) as f64;

    // Script skeleton.
    let source = ProgramSource { kernels };
    let mut b = HostScriptBuilder::new(spec.name, source);
    for k in 0..uk as u32 {
        b.create_buffer(2 * k, 1 << 20);
        b.create_buffer(2 * k + 1, 1 << 20);
        b.set_arg(KernelId(k), ARG_SRC, ArgValue::Buffer(2 * k));
        b.set_arg(KernelId(k), ARG_DST, ArgValue::Buffer(2 * k + 1));
        b.call(ocl_runtime::api::ApiCall::EnqueueWriteBuffer {
            buffer: 2 * k,
            bytes: 1 << 20,
        });
    }

    // Call-fraction bookkeeping: decide whether scalar args are set
    // per launch or per phase, and how many filler calls are needed.
    let n_sync =
        ((invocations as f64 * spec.sync_frac / spec.kernel_call_frac).round() as usize).max(1);
    let args_per_phase = spec.kernel_call_frac > 0.3;
    let sync_kinds = [
        SyncCall::Finish,
        SyncCall::Flush,
        SyncCall::EnqueueReadBuffer,
        SyncCall::Finish,
        SyncCall::EnqueueCopyBuffer,
        SyncCall::Finish,
        SyncCall::WaitForEvents,
        SyncCall::EnqueueReadImage,
        SyncCall::Finish,
        SyncCall::EnqueueCopyImageToBuffer,
    ];

    // Estimate the call budget for filler "other" calls.
    let arg_calls = if args_per_phase {
        2 * phases * uk.min(4)
    } else {
        2 * invocations
    };
    let skeleton = 6 + uk * 6 + 2 + arg_calls + invocations + n_sync.min(4 * invocations);
    let total_target = (invocations as f64 / spec.kernel_call_frac) as usize;
    let filler = total_target.saturating_sub(skeleton);

    let sync_every = invocations.div_ceil(n_sync.max(1)).max(1);
    let extra_syncs_per_point = n_sync / invocations.max(1); // when syncs outnumber launches
    let filler_every = if filler > 0 {
        invocations.div_ceil(filler).max(1)
    } else {
        usize::MAX
    };
    let mut filler_left = filler;
    let mut sync_cursor = 0usize;

    let mut last_phase = usize::MAX;
    for i in 0..invocations {
        let p = i * phases / invocations;
        let k = subset(p, i);
        let kid = KernelId(k as u32);
        let trip = (base_trip * phase_trip_mult[p] * jitter[i % 3])
            .round()
            .max(1.0) as u64;

        if args_per_phase {
            if p != last_phase {
                // New phase: bind scalar args for the phase's subset.
                for j in 0..uk.min(4) {
                    let kk = KernelId(subset(p, j) as u32);
                    b.set_arg(kk, ARG_TRIP, ArgValue::Scalar(trip));
                    b.set_arg(kk, ARG_SELECTOR, ArgValue::Scalar(phase_selector[p]));
                }
                last_phase = p;
            }
        } else {
            b.set_arg(kid, ARG_TRIP, ArgValue::Scalar(trip));
            b.set_arg(kid, ARG_SELECTOR, ArgValue::Scalar(phase_selector[p]));
        }
        b.launch(kid, spec.gws * phase_gws_mult[p]);

        if filler_left > 0 && i % filler_every == filler_every - 1 {
            let n = (filler / invocations.div_ceil(filler_every).max(1)).clamp(1, 8);
            for j in 0..n.min(filler_left) {
                b.call(ocl_runtime::api::ApiCall::EnqueueWriteBuffer {
                    buffer: ((i + j) % (2 * uk)) as u32,
                    bytes: 4096,
                });
            }
            filler_left = filler_left.saturating_sub(n);
        }

        if i % sync_every == sync_every - 1 {
            b.sync(sync_kinds[sync_cursor % sync_kinds.len()]);
            sync_cursor += 1;
            for _ in 0..extra_syncs_per_point {
                b.sync(sync_kinds[sync_cursor % sync_kinds.len()]);
                sync_cursor += 1;
            }
        }
    }
    b.sync(SyncCall::Finish);

    b.finish().expect("generated host programs are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{all_specs, spec_by_name};

    #[test]
    fn every_spec_builds_a_valid_program_at_test_scale() {
        for spec in all_specs() {
            let p = build_program(&spec, Scale::Test);
            assert!(p.check().is_ok(), "{}", spec.name);
            assert!(p.num_invocations() >= 8, "{}", spec.name);
            assert!(p.num_sync_calls() >= 1, "{}", spec.name);
            assert_eq!(p.source.kernels.len(), spec.unique_kernels as usize);
        }
    }

    #[test]
    fn api_call_fractions_track_the_spec() {
        for name in [
            "cb-throughput-bitcoin",
            "cb-physics-part-sim-32k",
            "cb-graphics-t-rex",
        ] {
            let spec = spec_by_name(name).unwrap();
            let p = build_program(&spec, Scale::Test);
            let total = p.calls.len() as f64;
            let kfrac = p.num_invocations() as f64 / total;
            assert!(
                (kfrac - spec.kernel_call_frac).abs() < 0.12,
                "{name}: kernel fraction {kfrac:.3} vs spec {:.3}",
                spec.kernel_call_frac
            );
        }
    }

    #[test]
    fn juliaset_is_sync_dominated() {
        let spec = spec_by_name("cb-throughput-juliaset").unwrap();
        let p = build_program(&spec, Scale::Test);
        let sfrac = p.num_sync_calls() as f64 / p.calls.len() as f64;
        assert!(
            sfrac > 0.12,
            "juliaset sync fraction {sfrac:.3} should be high"
        );
    }

    #[test]
    fn build_is_deterministic() {
        let spec = spec_by_name("cb-gaussian-buffer").unwrap();
        let a = build_program(&spec, Scale::Test);
        let b = build_program(&spec, Scale::Test);
        assert_eq!(a, b);
    }

    #[test]
    fn phases_vary_arguments() {
        let spec = spec_by_name("cb-physics-ocean-surf").unwrap();
        let p = build_program(&spec, Scale::Test);
        let trips: std::collections::HashSet<u64> = p
            .calls
            .iter()
            .filter_map(|c| match c {
                ocl_runtime::api::ApiCall::SetKernelArg {
                    index: ARG_TRIP,
                    value: ArgValue::Scalar(v),
                    ..
                } => Some(*v),
                _ => None,
            })
            .collect();
        assert!(
            trips.len() >= 3,
            "phases produce distinct trip counts: {trips:?}"
        );
    }
}
