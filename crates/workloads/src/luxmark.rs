//! A LuxMark-style raw-throughput score, used in Section V-E of the
//! paper to compare generations: the HD 4000 scored 269 and the
//! HD 4600 scored 351 (higher is better).

use gen_isa::ExecSize;
use gpu_device::{Gpu, GpuConfig};
use ocl_runtime::api::{ArgValue, KernelId, SyncCall};
use ocl_runtime::host::{HostScriptBuilder, ProgramSource};
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use ocl_runtime::runtime::{OclRuntime, Schedule};

/// Run the render-like scoring workload on `config` and return the
/// score (work per second, scaled to LuxMark-like magnitudes).
///
/// # Panics
///
/// Panics if the fixed internal workload fails to run — that would
/// be a bug in the device model.
pub fn luxmark_score(config: GpuConfig) -> f64 {
    let mut trace = KernelIr::new("trace_rays", 2);
    trace.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Arg(0),
        },
        IrOp::Compute {
            ops: 30,
            width: ExecSize::S16,
        },
        IrOp::MathCompute {
            ops: 6,
            width: ExecSize::S8,
        },
        IrOp::Load {
            arg: 1,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        },
        IrOp::LoopEnd,
    ];
    let mut shade = KernelIr::new("shade", 2);
    shade.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Arg(0),
        },
        IrOp::Compute {
            ops: 20,
            width: ExecSize::S16,
        },
        IrOp::Store {
            arg: 1,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        },
        IrOp::LoopEnd,
    ];
    let source = ProgramSource {
        kernels: vec![trace, shade],
    };
    let mut b = HostScriptBuilder::new("luxmark", source);
    b.create_buffer(0, 1 << 20);
    for scene in 0..6u64 {
        for _ in 0..4 {
            for k in 0..2u32 {
                b.set_arg(KernelId(k), 0, ArgValue::Scalar(20 + scene * 4));
                b.set_arg(KernelId(k), 1, ArgValue::Buffer(0));
                b.launch(KernelId(k), 2048);
            }
        }
        b.sync(SyncCall::Finish);
    }
    let program = b.finish().expect("luxmark program is well-formed");

    let mut rt = OclRuntime::new(Gpu::new(GpuConfig {
        noise: 0.0,
        ..config
    }));
    let report = rt.run(&program, Schedule::Replay).expect("luxmark runs");
    let gpu = rt.into_device();
    let work: u64 = gpu.total_stats().instructions;
    let seconds = report.cofluent.total_kernel_seconds();
    // Scaled so the HD 4000 lands near its published score of 269.
    work as f64 / seconds / 3.1e7
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::GpuConfig;

    #[test]
    fn haswell_beats_ivy_bridge_as_in_the_paper() {
        let ivy = luxmark_score(GpuConfig::hd4000());
        let hsw = luxmark_score(GpuConfig::hd4600());
        assert!(
            hsw > ivy,
            "HD4600 ({hsw:.0}) must outscore HD4000 ({ivy:.0}), as 351 vs 269 in the paper"
        );
        let ratio = hsw / ivy;
        assert!(
            (1.05..1.8).contains(&ratio),
            "speedup ratio {ratio:.2} should be modest, like 351/269 ≈ 1.30"
        );
    }

    #[test]
    fn score_is_deterministic() {
        assert_eq!(
            luxmark_score(GpuConfig::hd4000()),
            luxmark_score(GpuConfig::hd4000())
        );
    }
}
