//! Property tests for the binary rewriter: across randomly generated
//! kernels, instrumentation must (a) preserve application-visible
//! behaviour exactly and (b) produce counters that reconstruct the
//! native instruction counts.

use gen_isa::ExecSize;
use gpu_device::driver::decode_flat;
use gpu_device::{Cache, CacheConfig, ExecConfig, ExecutionStats, Executor, TraceBuffer};
use gtpin_core::rewriter::{rewrite_binary, RewriteConfig};
use ocl_runtime::api::ArgValue;
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = ExecSize> {
    prop::sample::select(vec![
        ExecSize::S1,
        ExecSize::S4,
        ExecSize::S8,
        ExecSize::S16,
    ])
}

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Linear),
        (16u32..512).prop_map(AccessPattern::Strided),
        Just(AccessPattern::Gather),
    ]
}

/// A random straight-line-with-one-loop kernel body.
fn arb_body() -> impl Strategy<Value = Vec<IrOp>> {
    let inner_op = prop_oneof![
        ((1u16..12), arb_width()).prop_map(|(ops, width)| IrOp::Compute { ops, width }),
        ((1u16..8), arb_width()).prop_map(|(ops, width)| IrOp::Logic { ops, width }),
        ((1u16..8), arb_width()).prop_map(|(ops, width)| IrOp::Move { ops, width }),
        ((1u16..4), arb_width()).prop_map(|(ops, width)| IrOp::MathCompute { ops, width }),
        ((4u32..256), arb_width(), arb_pattern()).prop_map(|(bytes, width, pattern)| {
            IrOp::Load {
                arg: 1,
                bytes: bytes * 4,
                width,
                pattern,
            }
        }),
        ((4u32..128), arb_width()).prop_map(|(bytes, width)| IrOp::Store {
            arg: 2,
            bytes: bytes * 4,
            width,
            pattern: AccessPattern::Linear,
        }),
    ];
    (
        prop::collection::vec(inner_op, 1..6),
        1u32..8,
        prop::option::of(0u32..100),
    )
        .prop_map(|(inner, trip, if_thresh)| {
            let mut body = Vec::new();
            if let Some(t) = if_thresh {
                body.push(IrOp::IfArgLt { arg: 3, value: t });
                body.push(IrOp::Move {
                    ops: 2,
                    width: ExecSize::S8,
                });
                body.push(IrOp::EndIf);
            }
            body.push(IrOp::LoopBegin {
                trip: TripCount::Const(trip),
            });
            body.extend(inner);
            body.push(IrOp::LoopEnd);
            body
        })
}

fn execute(bytes: &[u8], args: &[ArgValue], gws: u64) -> (ExecutionStats, TraceBuffer) {
    let flat = decode_flat(bytes).expect("decodes");
    let mut cache = Cache::new(CacheConfig::default());
    let mut trace = TraceBuffer::new();
    let stats = Executor {
        cache: &mut cache,
        trace: &mut trace,
        config: ExecConfig::default(),
    }
    .execute_launch(&flat, args, gws)
    .expect("executes");
    (stats, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn instrumentation_preserves_app_behaviour(body in arb_body(), selector in 0u64..100) {
        let mut ir = KernelIr::new("prop", 4);
        ir.body = body;
        let bytes = gpu_device::jit::compile_kernel(&ir).expect("compiles").encode();
        let args = [
            ArgValue::Scalar(3),
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Scalar(selector),
        ];
        let cfg = RewriteConfig {
            count_basic_blocks: true,
            time_kernels: true,
            trace_memory: true,
            naive_per_instruction_counters: false,
        };
        let rw = rewrite_binary(&bytes, &cfg, 0, 0).expect("rewrites");

        let (native, _) = execute(&bytes, &args, 64);
        let (inst, trace) = execute(&rw.bytes, &args, 64);

        // (a) App-visible behaviour unperturbed.
        prop_assert_eq!(inst.bytes_read, native.bytes_read);
        prop_assert_eq!(inst.bytes_written, native.bytes_written);
        prop_assert_eq!(inst.global_sends, native.global_sends);

        // (b) Per-block counters reconstruct native instruction
        // counts exactly.
        let reconstructed: u64 = (0..rw.layout.num_block_slots)
            .map(|bb| {
                trace.slot(rw.layout.block_slot(bb as usize) as usize)
                    * rw.static_info.blocks[bb as usize].instructions
            })
            .sum();
        prop_assert_eq!(reconstructed, native.instructions);

        // (c) Memory tracing catches every global send.
        prop_assert_eq!(trace.records().len() as u64, native.global_sends);
    }

    #[test]
    fn rewriting_is_idempotent_on_layout(body in arb_body()) {
        let mut ir = KernelIr::new("prop", 4);
        ir.body = body;
        let bytes = gpu_device::jit::compile_kernel(&ir).expect("compiles").encode();
        let a = rewrite_binary(&bytes, &RewriteConfig::default(), 10, 5).expect("rewrites");
        let b = rewrite_binary(&bytes, &RewriteConfig::default(), 10, 5).expect("rewrites");
        prop_assert_eq!(a.bytes, b.bytes);
        prop_assert_eq!(a.layout, b.layout);
    }
}
