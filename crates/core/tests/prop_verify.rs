//! Property tests for the instrumentation-safety verifier: across
//! randomly generated kernels and tool mixes, every rewrite the
//! rewriter produces must verify safe — and a deliberately tampered
//! probe that clobbers a live application register must be rejected.

use gen_isa::encode::{decode_stream, encode_stream};
use gen_isa::{ExecSize, Instruction, Opcode, Reg, Src, FIRST_INSTRUMENTATION_REG};
use gtpin_analyze::{is_probe, verify_rewrite, Cfg, Liveness, VerifyError, Violation};
use gtpin_core::rewriter::{rewrite_binary, RewriteConfig};
use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = ExecSize> {
    prop::sample::select(vec![
        ExecSize::S1,
        ExecSize::S4,
        ExecSize::S8,
        ExecSize::S16,
    ])
}

/// A random kernel body: optional branch, one loop, mixed compute and
/// memory traffic — the same shape the rewriter property tests use.
fn arb_body() -> impl Strategy<Value = Vec<IrOp>> {
    let inner_op = prop_oneof![
        ((1u16..12), arb_width()).prop_map(|(ops, width)| IrOp::Compute { ops, width }),
        ((1u16..8), arb_width()).prop_map(|(ops, width)| IrOp::Logic { ops, width }),
        ((1u16..8), arb_width()).prop_map(|(ops, width)| IrOp::Move { ops, width }),
        ((4u32..256), arb_width()).prop_map(|(bytes, width)| IrOp::Load {
            arg: 1,
            bytes: bytes * 4,
            width,
            pattern: AccessPattern::Linear,
        }),
        ((4u32..128), arb_width()).prop_map(|(bytes, width)| IrOp::Store {
            arg: 2,
            bytes: bytes * 4,
            width,
            pattern: AccessPattern::Linear,
        }),
    ];
    (
        prop::collection::vec(inner_op, 1..6),
        1u32..8,
        prop::option::of(0u32..100),
    )
        .prop_map(|(inner, trip, if_thresh)| {
            let mut body = Vec::new();
            if let Some(t) = if_thresh {
                body.push(IrOp::IfArgLt { arg: 3, value: t });
                body.push(IrOp::Move {
                    ops: 2,
                    width: ExecSize::S8,
                });
                body.push(IrOp::EndIf);
            }
            body.push(IrOp::LoopBegin {
                trip: TripCount::Const(trip),
            });
            body.extend(inner);
            body.push(IrOp::LoopEnd);
            body
        })
}

fn arb_config() -> impl Strategy<Value = RewriteConfig> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(bb, t, m, naive)| RewriteConfig {
            count_basic_blocks: bb,
            time_kernels: t,
            trace_memory: m,
            naive_per_instruction_counters: naive,
        })
}

fn compile(body: Vec<IrOp>) -> Vec<u8> {
    let mut ir = KernelIr::new("prop", 4);
    ir.body = body;
    gpu_device::jit::compile_kernel(&ir)
        .expect("compiles")
        .encode()
}

/// Find a probe in the rewritten stream whose owner (the next original
/// instruction) has a live non-reserved register, and tamper the probe
/// into `add r_live, r121, 1` — still classified as a probe (it reads
/// a reserved register) but now clobbering application state.
fn tamper_clobbering_probe(original: &[u8], rewritten: &[u8]) -> Option<(Vec<u8>, Reg)> {
    let orig = decode_stream(original).expect("original decodes");
    let cfg = Cfg::from_instrs(&orig.instrs).expect("cfg builds");
    let live = Liveness::compute(&cfg);
    let rw = decode_stream(rewritten).expect("rewritten decodes");

    let mut owner = 0usize; // index of the next original instruction
    for (p, instr) in rw.instrs.iter().enumerate() {
        if !is_probe(instr) {
            owner += 1;
            continue;
        }
        let Some(live_in) = live.live_in.get(owner) else {
            continue;
        };
        let Some(reg) = live_in
            .iter_regs()
            .find(|r| r.0 < FIRST_INSTRUMENTATION_REG)
        else {
            continue;
        };
        let mut tampered = rw.instrs.clone();
        let mut clobber = Instruction::new(Opcode::Add, ExecSize::S1);
        clobber.dst = Some(reg);
        clobber.srcs = [
            Src::Reg(Reg(FIRST_INSTRUMENTATION_REG + 1)),
            Src::Imm(1),
            Src::Null,
        ];
        tampered[p] = clobber;
        return Some((encode_stream(&rw.name, &rw.metadata, &tampered), reg));
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance: everything the rewriter emits proves safe, for
    /// every tool mix.
    #[test]
    fn rewriter_output_always_verifies(body in arb_body(), config in arb_config()) {
        let bytes = compile(body);
        let rw = rewrite_binary(&bytes, &config, 0, 0).expect("rewrites");
        let report = verify_rewrite(&bytes, &rw.bytes).expect("verifies");
        prop_assert!(report.is_safe());
        prop_assert!(report.violations.is_empty());
    }

    /// Rejection: flip one injected probe into a write of a register
    /// that is live in the application at the injection point — the
    /// verifier must name the clobbered register.
    #[test]
    fn clobbering_probe_is_rejected(body in arb_body()) {
        let bytes = compile(body);
        let config = RewriteConfig {
            count_basic_blocks: true,
            time_kernels: true,
            trace_memory: true,
            naive_per_instruction_counters: false,
        };
        let rw = rewrite_binary(&bytes, &config, 0, 0).expect("rewrites");
        // Every generated kernel loops, so a counter register is live
        // at the loop-head block counter probe; a miss would mean the
        // tamper helper regressed, not the verifier.
        let (tampered, reg) =
            tamper_clobbering_probe(&bytes, &rw.bytes).expect("a live register exists at a probe");
        match verify_rewrite(&bytes, &tampered) {
            Err(VerifyError::Unsafe(report)) => {
                prop_assert!(report.violations.iter().any(|v| matches!(
                    v,
                    Violation::ProbeClobbersLiveRegister { reg: r, .. } if *r == reg
                )));
            }
            other => prop_assert!(false, "expected Unsafe, got {other:?}"),
        }
    }
}
