//! A minimal custom tool: dynamic opcode-category histogram.
//!
//! This is the "hello world" of GT-Pin tools (see
//! `examples/custom_tool.rs`): it derives per-category dynamic
//! instruction counts from the engine-provided per-invocation
//! profiles.

use gen_isa::OpcodeCategory;

use crate::profile::InvocationProfile;
use crate::tool::{Tool, ToolContext};

/// Accumulates a dynamic instruction histogram per opcode category.
#[derive(Debug, Default)]
pub struct OpcodeHistogramTool {
    totals: [u64; 5],
    invocations: u64,
}

impl OpcodeHistogramTool {
    /// An empty histogram.
    pub fn new() -> OpcodeHistogramTool {
        OpcodeHistogramTool::default()
    }

    /// Dynamic instruction count in `category`.
    pub fn count(&self, category: OpcodeCategory) -> u64 {
        let idx = OpcodeCategory::ALL
            .iter()
            .position(|&c| c == category)
            .expect("category in ALL");
        self.totals[idx]
    }

    /// Total dynamic instructions observed.
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Invocations observed.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

impl Tool for OpcodeHistogramTool {
    fn name(&self) -> &str {
        "opcode-histogram"
    }

    fn on_kernel_complete(&mut self, profile: &InvocationProfile, _ctx: &ToolContext<'_>) {
        for (t, v) in self.totals.iter_mut().zip(profile.per_category) {
            *t += v;
        }
        self.invocations += 1;
    }

    fn report(&self) -> String {
        let total = self.total().max(1);
        let mut parts = Vec::new();
        for (i, cat) in OpcodeCategory::ALL.iter().enumerate() {
            parts.push(format!(
                "{} {:.1}%",
                cat.label(),
                self.totals[i] as f64 / total as f64 * 100.0
            ));
        }
        format!(
            "opcode-histogram over {} invocations: {}",
            self.invocations,
            parts.join(", ")
        )
    }
}
