//! Per-site memory latency estimation (Section III-B: "latency for
//! memory instructions per thread").
//!
//! Replays traced addresses through a cache model and converts
//! hit/miss outcomes into estimated latencies per send site, using
//! the same latency parameters as the detailed simulator.

use std::collections::HashMap;

use gpu_device::cache::{Cache, CacheConfig};

use crate::profile::InvocationProfile;
use crate::tool::{Tool, ToolContext};

/// Estimated latency accounting for one send site.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteLatency {
    /// Accesses observed.
    pub accesses: u64,
    /// Total estimated cycles.
    pub total_cycles: u64,
}

impl SiteLatency {
    /// Mean estimated latency in cycles.
    pub fn mean_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.accesses as f64
        }
    }
}

/// The latency-estimation tool.
pub struct LatencyTool {
    cache: Cache,
    hit_cycles: u64,
    miss_cycles: u64,
    per_site: HashMap<u32, SiteLatency>,
}

impl LatencyTool {
    /// A tool with the given cache geometry and latency parameters.
    pub fn new(config: CacheConfig, hit_cycles: u64, miss_cycles: u64) -> LatencyTool {
        LatencyTool {
            cache: Cache::new(config),
            hit_cycles,
            miss_cycles,
            per_site: HashMap::new(),
        }
    }

    /// Per-site latency estimates, keyed by send-site tag.
    pub fn per_site(&self) -> &HashMap<u32, SiteLatency> {
        &self.per_site
    }

    /// Mean latency across all sites.
    pub fn mean_cycles(&self) -> f64 {
        let (acc, cyc) = self.per_site.values().fold((0u64, 0u64), |(a, c), s| {
            (a + s.accesses, c + s.total_cycles)
        });
        if acc == 0 {
            0.0
        } else {
            cyc as f64 / acc as f64
        }
    }
}

impl Tool for LatencyTool {
    fn name(&self) -> &str {
        "memory-latency"
    }

    fn on_kernel_complete(&mut self, profile: &InvocationProfile, ctx: &ToolContext<'_>) {
        for &(tag, addr) in &profile.mem_trace {
            let bytes = ctx.send_sites.get(&tag).map(|s| s.bytes).unwrap_or(4);
            let (h, m) = self.cache.access(addr, bytes);
            let site = self.per_site.entry(tag).or_default();
            site.accesses += 1;
            site.total_cycles += h as u64 * self.hit_cycles + m as u64 * self.miss_cycles;
        }
    }

    fn report(&self) -> String {
        format!(
            "memory-latency: {:.1} mean cycles across {} sites",
            self.mean_cycles(),
            self.per_site.len()
        )
    }
}
