//! Stock GT-Pin tools built on the custom-tool API.

pub mod cachesim;
pub mod histogram;
pub mod latency;
pub mod simd_util;

pub use cachesim::CacheSimTool;
pub use histogram::OpcodeHistogramTool;
pub use latency::LatencyTool;
pub use simd_util::SimdUtilizationTool;
