//! SIMD channel utilization (Section III-B: "utilization rates of
//! per execution unit SIMD channels").
//!
//! Each EU executes instructions over 16 SIMD channels; an 8-wide
//! instruction leaves half of them idle. This tool folds the
//! per-width histograms GT-Pin reconstructs into a utilization rate
//! per kernel and overall.

use std::collections::HashMap;

use gen_isa::{ExecSize, NUM_LANES};

use crate::profile::InvocationProfile;
use crate::tool::{Tool, ToolContext};

/// Lane-occupancy accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Utilization {
    /// Σ instructions × active lanes.
    pub active_lanes: u64,
    /// Σ instructions × machine width (16).
    pub possible_lanes: u64,
}

impl Utilization {
    /// Utilization rate in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.possible_lanes == 0 {
            0.0
        } else {
            self.active_lanes as f64 / self.possible_lanes as f64
        }
    }

    fn absorb(&mut self, per_width: &[u64; 5]) {
        for (i, &w) in ExecSize::ALL.iter().enumerate() {
            self.active_lanes += per_width[i] * w.lanes() as u64;
            self.possible_lanes += per_width[i] * NUM_LANES as u64;
        }
    }
}

/// The SIMD-utilization tool.
#[derive(Debug, Default)]
pub struct SimdUtilizationTool {
    overall: Utilization,
    per_kernel: HashMap<String, Utilization>,
}

impl SimdUtilizationTool {
    /// An empty accumulator.
    pub fn new() -> SimdUtilizationTool {
        SimdUtilizationTool::default()
    }

    /// Overall utilization across all invocations.
    pub fn overall(&self) -> Utilization {
        self.overall
    }

    /// Utilization for one kernel by name.
    pub fn kernel(&self, name: &str) -> Option<Utilization> {
        self.per_kernel.get(name).copied()
    }
}

impl Tool for SimdUtilizationTool {
    fn name(&self) -> &str {
        "simd-utilization"
    }

    fn on_kernel_complete(&mut self, profile: &InvocationProfile, _ctx: &ToolContext<'_>) {
        self.overall.absorb(&profile.per_width);
        self.per_kernel
            .entry(profile.kernel_name.clone())
            .or_default()
            .absorb(&profile.per_width);
    }

    fn report(&self) -> String {
        let mut rows: Vec<(&String, &Utilization)> = self.per_kernel.iter().collect();
        rows.sort_by(|a, b| b.1.rate().partial_cmp(&a.1.rate()).expect("finite rates"));
        let mut out = format!(
            "simd-utilization: {:.1}% of SIMD channels active overall\n",
            self.overall.rate() * 100.0
        );
        for (name, u) in rows.into_iter().take(8) {
            out.push_str(&format!("  {:40} {:>5.1}%\n", name, u.rate() * 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::InvocationProfile;
    use std::collections::HashMap;

    fn invocation(name: &str, per_width: [u64; 5]) -> InvocationProfile {
        InvocationProfile {
            launch_index: 0,
            kernel_index: 0,
            kernel_name: name.into(),
            global_work_size: 64,
            args_digest: 0,
            bb_counts: vec![],
            instructions: per_width.iter().sum(),
            per_category: [0; 5],
            per_width,
            bytes_read: 0,
            bytes_written: 0,
            thread_cycles: None,
            mem_trace: vec![],
            dropped_records: 0,
            quarantined_records: 0,
        }
    }

    fn ctx_fixture() -> (
        Vec<&'static crate::static_info::StaticKernelInfo>,
        HashMap<u32, crate::rewriter::SendSite>,
    ) {
        (Vec::new(), HashMap::new())
    }

    #[test]
    fn all_simd16_is_full_utilization() {
        let mut t = SimdUtilizationTool::new();
        let (kernels, sites) = ctx_fixture();
        let ctx = ToolContext {
            kernels: &kernels,
            send_sites: &sites,
        };
        // per_width indexed per ExecSize::ALL = [1, 2, 4, 8, 16]
        t.on_kernel_complete(&invocation("k", [0, 0, 0, 0, 100]), &ctx);
        assert!((t.overall().rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_code_wastes_fifteen_sixteenths() {
        let mut t = SimdUtilizationTool::new();
        let (kernels, sites) = ctx_fixture();
        let ctx = ToolContext {
            kernels: &kernels,
            send_sites: &sites,
        };
        t.on_kernel_complete(&invocation("k", [16, 0, 0, 0, 0]), &ctx);
        assert!((t.overall().rate() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_widths_average_correctly_per_kernel() {
        let mut t = SimdUtilizationTool::new();
        let (kernels, sites) = ctx_fixture();
        let ctx = ToolContext {
            kernels: &kernels,
            send_sites: &sites,
        };
        t.on_kernel_complete(&invocation("a", [0, 0, 0, 100, 0]), &ctx); // all 8-wide
        t.on_kernel_complete(&invocation("b", [0, 0, 0, 0, 100]), &ctx); // all 16-wide
        assert!((t.kernel("a").unwrap().rate() - 0.5).abs() < 1e-12);
        assert!((t.kernel("b").unwrap().rate() - 1.0).abs() < 1e-12);
        assert!((t.overall().rate() - 0.75).abs() < 1e-12);
        assert!(t.report().contains("simd-utilization"));
    }
}
