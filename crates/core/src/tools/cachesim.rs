//! Trace-driven cache simulation (Section III-B: "cache simulation
//! through the use of memory traces").
//!
//! Requires memory tracing to be enabled in the
//! [`RewriteConfig`](crate::RewriteConfig); the tool replays each
//! invocation's address records through a configurable cache model
//! and reports hit rates, overall and per send site.

use std::collections::HashMap;

use gpu_device::cache::{Cache, CacheConfig, CacheStats};

use crate::profile::InvocationProfile;
use crate::tool::{Tool, ToolContext};

/// Per-site accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteStats {
    /// Accesses replayed.
    pub accesses: u64,
    /// Line hits.
    pub hits: u64,
    /// Line misses.
    pub misses: u64,
}

/// The cache-simulation tool.
pub struct CacheSimTool {
    cache: Cache,
    per_site: HashMap<u32, SiteStats>,
}

impl CacheSimTool {
    /// A tool simulating the given cache geometry.
    pub fn new(config: CacheConfig) -> CacheSimTool {
        CacheSimTool {
            cache: Cache::new(config),
            per_site: HashMap::new(),
        }
    }

    /// Overall hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-site accounting, keyed by send-site tag.
    pub fn per_site(&self) -> &HashMap<u32, SiteStats> {
        &self.per_site
    }
}

impl Tool for CacheSimTool {
    fn name(&self) -> &str {
        "cachesim"
    }

    fn on_kernel_complete(&mut self, profile: &InvocationProfile, ctx: &ToolContext<'_>) {
        for &(tag, addr) in &profile.mem_trace {
            let bytes = match ctx.send_sites.get(&tag) {
                Some(s) => s.bytes,
                None => {
                    gtpin_obs::warn!(
                        "cachesim: trace record with unknown send-site tag {tag} in launch {}; assuming 4-byte access",
                        profile.launch_index
                    );
                    4
                }
            };
            let (h, m) = self.cache.access(addr, bytes);
            let site = self.per_site.entry(tag).or_default();
            site.accesses += 1;
            site.hits += h as u64;
            site.misses += m as u64;
        }
    }

    fn report(&self) -> String {
        let s = self.cache.stats();
        format!(
            "cachesim: {} accesses, {:.1}% hit rate, {} sites",
            s.accesses(),
            s.hit_rate() * 100.0,
            self.per_site.len()
        )
    }
}
