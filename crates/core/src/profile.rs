//! Profiling data structures: what GT-Pin's post-processing produces
//! from the trace buffer, and what characterization and subset
//! selection consume.

use gen_isa::{ExecSize, OpcodeCategory};
use serde::{Deserialize, Serialize};

use crate::static_info::StaticKernelInfo;

/// Everything GT-Pin learned about one kernel invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationProfile {
    /// Launch order position (matches
    /// [`ocl_runtime::cofluent::InvocationTiming::index`]).
    pub launch_index: u32,
    /// Index of the kernel in the program.
    pub kernel_index: u32,
    /// Kernel name.
    pub kernel_name: String,
    /// Global work size of the launch.
    pub global_work_size: u64,
    /// Digest of the bound argument values.
    pub args_digest: u64,
    /// Dynamic execution count per static basic block (from the
    /// injected per-block counters).
    pub bb_counts: Vec<u64>,
    /// Application dynamic instructions, reconstructed as
    /// Σ block-count × static block size.
    pub instructions: u64,
    /// Dynamic instructions per opcode category.
    pub per_category: [u64; 5],
    /// Dynamic instructions per SIMD width.
    pub per_width: [u64; 5],
    /// Application bytes read, reconstructed statically.
    pub bytes_read: u64,
    /// Application bytes written.
    pub bytes_written: u64,
    /// Accumulated per-thread kernel cycles, when the timer tool ran.
    pub thread_cycles: Option<u64>,
    /// `(site tag, address)` pairs, when memory tracing ran.
    pub mem_trace: Vec<(u32, u64)>,
    /// Trace records dropped at capacity during this launch. Zero in
    /// healthy runs; non-zero marks this invocation's trace as
    /// incomplete for downstream consumers.
    pub dropped_records: u64,
    /// Corrupted trace records quarantined during this launch. Zero
    /// in healthy runs; non-zero marks the interval for exclusion
    /// from subset selection.
    pub quarantined_records: u64,
}

impl InvocationProfile {
    /// Whether this invocation's trace lost or quarantined records —
    /// selection skips degraded intervals and renormalizes weights.
    pub fn is_degraded(&self) -> bool {
        self.dropped_records > 0 || self.quarantined_records > 0
    }
}

impl InvocationProfile {
    /// Total dynamic basic-block executions.
    pub fn bb_executions(&self) -> u64 {
        self.bb_counts.iter().sum()
    }
}

/// Instrumentation overhead accounting for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelOverhead {
    /// Static instructions before rewriting.
    pub original_static: u64,
    /// Static instructions after rewriting.
    pub instrumented_static: u64,
}

/// The full profile of one program execution under GT-Pin.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramProfile {
    /// Application name (filled by the caller; the device does not
    /// know it).
    pub app: String,
    /// Static tables per kernel, in program order.
    pub kernels: Vec<StaticKernelInfo>,
    /// Per-kernel overhead accounting.
    pub overheads: Vec<KernelOverhead>,
    /// One record per kernel invocation, in launch order.
    pub invocations: Vec<InvocationProfile>,
}

impl ProgramProfile {
    /// Unique kernels in the program (Figure 3b).
    pub fn unique_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Unique static basic blocks across kernels (Figure 3b).
    pub fn unique_basic_blocks(&self) -> usize {
        self.kernels.iter().map(StaticKernelInfo::num_blocks).sum()
    }

    /// Kernel invocation count (Figure 3c).
    pub fn num_invocations(&self) -> usize {
        self.invocations.len()
    }

    /// Total dynamic basic-block executions (Figure 3c).
    pub fn total_bb_executions(&self) -> u64 {
        self.invocations
            .iter()
            .map(InvocationProfile::bb_executions)
            .sum()
    }

    /// Total dynamic application instructions (Figure 3c).
    pub fn total_instructions(&self) -> u64 {
        self.invocations.iter().map(|i| i.instructions).sum()
    }

    /// Total application bytes read (Figure 4c).
    pub fn total_bytes_read(&self) -> u64 {
        self.invocations.iter().map(|i| i.bytes_read).sum()
    }

    /// Total application bytes written (Figure 4c).
    pub fn total_bytes_written(&self) -> u64 {
        self.invocations.iter().map(|i| i.bytes_written).sum()
    }

    /// Dynamic fraction of instructions in `category` (Figure 4a).
    pub fn category_fraction(&self, category: OpcodeCategory) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            return 0.0;
        }
        let idx = OpcodeCategory::ALL
            .iter()
            .position(|&c| c == category)
            .expect("in ALL");
        let n: u64 = self.invocations.iter().map(|i| i.per_category[idx]).sum();
        n as f64 / total as f64
    }

    /// Dynamic fraction of instructions at `width` (Figure 4b).
    pub fn width_fraction(&self, width: ExecSize) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            return 0.0;
        }
        let idx = ExecSize::ALL
            .iter()
            .position(|&w| w == width)
            .expect("in ALL");
        let n: u64 = self.invocations.iter().map(|i| i.per_width[idx]).sum();
        n as f64 / total as f64
    }

    /// Aggregate static→dynamic instrumentation overhead estimate:
    /// instrumented dynamic instructions ÷ original dynamic
    /// instructions, weighted by block execution counts.
    pub fn dynamic_overhead_factor(&self) -> f64 {
        let app = self.total_instructions();
        if app == 0 {
            if !self.invocations.is_empty() {
                gtpin_obs::warn!(
                    "profile `{}` recorded {} invocations but zero dynamic instructions; overhead factor defaults to 1.0",
                    self.app,
                    self.invocations.len()
                );
            }
            return 1.0;
        }
        // Each basic-block entry costs 3 extra instructions.
        let injected: u64 = self.total_bb_executions() * 3;
        (app + injected) as f64 / app as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_info::BlockStaticInfo;

    fn profile() -> ProgramProfile {
        let block = |instrs: u64| BlockStaticInfo {
            instructions: instrs,
            per_category: [instrs, 0, 0, 0, 0],
            per_width: [0, 0, 0, 0, instrs],
            bytes_read: 8,
            bytes_written: 0,
            global_sends: 1,
        };
        ProgramProfile {
            app: "t".into(),
            kernels: vec![StaticKernelInfo {
                name: "k".into(),
                static_instructions: 7,
                blocks: vec![block(3), block(4)],
            }],
            overheads: vec![KernelOverhead {
                original_static: 7,
                instrumented_static: 13,
            }],
            invocations: vec![InvocationProfile {
                launch_index: 0,
                kernel_index: 0,
                kernel_name: "k".into(),
                global_work_size: 64,
                args_digest: 1,
                bb_counts: vec![10, 5],
                instructions: 10 * 3 + 5 * 4,
                per_category: [50, 0, 0, 0, 0],
                per_width: [0, 0, 0, 0, 50],
                bytes_read: 10 * 8 + 5 * 8,
                bytes_written: 0,
                thread_cycles: None,
                mem_trace: Vec::new(),
                dropped_records: 0,
                quarantined_records: 0,
            }],
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        let p = profile();
        assert_eq!(p.unique_kernels(), 1);
        assert_eq!(p.unique_basic_blocks(), 2);
        assert_eq!(p.num_invocations(), 1);
        assert_eq!(p.total_bb_executions(), 15);
        assert_eq!(p.total_instructions(), 50);
        assert_eq!(p.total_bytes_read(), 120);
        assert!((p.category_fraction(OpcodeCategory::Move) - 1.0).abs() < 1e-12);
        assert!((p.width_fraction(ExecSize::S16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_factor_counts_three_per_block_entry() {
        let p = profile();
        // 50 app instrs + 15 block entries × 3 = 95 → 1.9×.
        assert!((p.dynamic_overhead_factor() - 1.9).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_benign() {
        let p = ProgramProfile::default();
        assert_eq!(p.total_instructions(), 0);
        assert_eq!(p.category_fraction(OpcodeCategory::Send), 0.0);
        assert_eq!(p.dynamic_overhead_factor(), 1.0);
    }
}
