//! The custom-tool API.
//!
//! Like Pin, GT-Pin lets users write custom profiling tools and pay
//! only for the data they collect (Section III-B: "users may collect
//! only the desired subset of these statistics by writing custom
//! profiling tools"). A [`Tool`] registered with
//! [`GtPin::add_tool`](crate::GtPin::add_tool) observes kernel builds
//! (static info) and kernel completions (dynamic per-invocation
//! profiles plus the raw memory-trace records).

use std::collections::HashMap;

use crate::profile::InvocationProfile;
use crate::rewriter::SendSite;
use crate::static_info::StaticKernelInfo;

/// Read-only context handed to tools on each kernel completion.
pub struct ToolContext<'a> {
    /// Static tables of every built kernel, in program order.
    pub kernels: &'a [&'a StaticKernelInfo],
    /// Instrumented send sites by tag (populated when memory tracing
    /// is enabled).
    pub send_sites: &'a HashMap<u32, SendSite>,
}

/// A custom GT-Pin analysis tool.
pub trait Tool {
    /// Tool name for reports.
    fn name(&self) -> &str;

    /// Called when a kernel is built (and instrumented).
    fn on_kernel_build(&mut self, kernel_index: usize, static_info: &StaticKernelInfo) {
        let _ = (kernel_index, static_info);
    }

    /// Called after each kernel invocation with the post-processed
    /// profile.
    fn on_kernel_complete(&mut self, profile: &InvocationProfile, ctx: &ToolContext<'_>);

    /// Human-readable report of what the tool gathered.
    fn report(&self) -> String {
        format!("{}: no report", self.name())
    }
}
